"""Well-formedness checks for IR functions and programs.

The verifier enforces the structural invariants the rest of the system
relies on: every block terminated, branch targets resolvable, operation
ids unique, and no use of the value-prediction opcodes in front-end code
(those are introduced only by the speculation pass).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.program import Program


class VerificationError(ValueError):
    """Raised when an IR object violates a structural invariant."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def check_function(function: Function) -> List[str]:
    """Return a list of problems (empty when the function is well formed)."""
    problems: List[str] = []
    if not len(function):
        return [f"function {function.name!r} has no blocks"]
    if not function.has_block(function.entry_label):
        problems.append(
            f"function {function.name!r}: entry block "
            f"{function.entry_label!r} does not exist"
        )

    seen_ids: set[int] = set()
    labels = {blk.label for blk in function}
    for block in function:
        term = block.terminator
        if term is None:
            problems.append(f"block {block.label!r} lacks a terminator")
        for target in block.successor_labels():
            if target not in labels:
                problems.append(
                    f"block {block.label!r} branches to unknown label {target!r}"
                )
        for op in block:
            if op.op_id in seen_ids:
                problems.append(f"duplicate operation id {op.op_id} in {block.label!r}")
            seen_ids.add(op.op_id)
            if op.opcode in (Opcode.LDPRED, Opcode.CHKPRED):
                problems.append(
                    f"block {block.label!r}: {op.opcode.value} may only be "
                    "introduced by the speculation pass"
                )
    return problems


def verify_function(function: Function) -> Function:
    problems = check_function(function)
    if problems:
        raise VerificationError(problems)
    return function


def verify_program(program: Program) -> Program:
    problems: List[str] = []
    for function in program:
        problems.extend(check_function(function))
    try:
        program.main
    except KeyError:
        problems.append(f"program {program.name!r} lacks a main function")
    if problems:
        raise VerificationError(problems)
    return program
