"""Opcode definitions for the VLIW intermediate representation.

The opcode set is modelled on the HPL-PD ("Playdoh") instruction set that
the paper's Trimaran infrastructure targets: simple integer and floating
point ALU operations, explicit loads and stores, compares and branches.
Each opcode carries the functional-unit class it executes on; operation
latencies are a property of the machine description, not of the opcode
(see :mod:`repro.machine.description`).
"""

from __future__ import annotations

import enum
import operator as _op
from typing import Callable


class FUClass(enum.Enum):
    """Functional-unit classes of the HPL-PD-like machine model."""

    IALU = "ialu"
    FALU = "falu"
    MEM = "mem"
    BRANCH = "branch"


class Opcode(enum.Enum):
    """Operation codes understood by the IR, interpreter and scheduler."""

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    NOT = "not"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    MOV = "mov"
    # Comparisons (produce 0/1 in an integer register).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Floating point ALU.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FSQRT = "fsqrt"
    # Memory.
    LOAD = "load"
    STORE = "store"
    # Control.
    BR = "br"
    BRCOND = "brcond"
    HALT = "halt"
    # Value-prediction ISA extension (paper section 2.1).  These only ever
    # appear in *transformed* code produced by repro.core.speculation; the
    # front end never emits them.
    LDPRED = "ldpred"
    CHKPRED = "chkpred"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


#: Opcodes that transfer control.  They terminate basic blocks.
BRANCH_OPCODES = frozenset({Opcode.BR, Opcode.BRCOND, Opcode.HALT})

#: Opcodes that read or write memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes with two register/immediate sources and one destination.
_BINARY_INT = {
    Opcode.ADD: _op.add,
    Opcode.SUB: _op.sub,
    Opcode.MUL: _op.mul,
    Opcode.AND: lambda a, b: int(a) & int(b),
    Opcode.OR: lambda a, b: int(a) | int(b),
    Opcode.XOR: lambda a, b: int(a) ^ int(b),
    # Shift amounts are masked to six bits, as shifter hardware does —
    # and as speculative re-execution with a mispredicted (possibly
    # negative) operand requires to avoid crashing the simulator.
    Opcode.SHL: lambda a, b: int(a) << (int(b) & 63),
    Opcode.SHR: lambda a, b: int(a) >> (int(b) & 63),
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPGT: lambda a, b: int(a > b),
    Opcode.CMPGE: lambda a, b: int(a >= b),
    Opcode.FADD: _op.add,
    Opcode.FSUB: _op.sub,
    Opcode.FMUL: _op.mul,
}

_UNARY = {
    Opcode.MOV: lambda a: a,
    Opcode.NEG: lambda a: -a,
    Opcode.NOT: lambda a: ~int(a),
    Opcode.ABS: abs,
    Opcode.FNEG: lambda a: -a,
    Opcode.FABS: abs,
    Opcode.FSQRT: lambda a: abs(a) ** 0.5,
}


def _int_div(a, b):
    """C-style truncating division; division by zero yields zero.

    Real hardware traps; our synthetic workloads never divide by zero on
    purpose, but value *speculation* can re-execute an operation with a
    predicted (wrong) operand, and that re-execution must not crash the
    simulator.  Returning zero mirrors the "defer the exception until the
    value is verified" semantics of speculative execution in HPL-PD.
    """
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b):
    if b == 0:
        return 0
    return a - b * _int_div(a, b)


def _float_div(a, b):
    if b == 0:
        return 0.0
    return a / b


_SPECIAL_BINARY = {
    Opcode.DIV: _int_div,
    Opcode.MOD: _int_mod,
    Opcode.FDIV: _float_div,
}


def evaluator(opcode: Opcode) -> Callable:
    """Return the pure-value evaluator for an ALU/compare opcode.

    Raises :class:`KeyError` for opcodes without a value semantics
    (memory, control, prediction forms) — those are interpreted by the
    execution engines directly.
    """
    if opcode in _BINARY_INT:
        return _BINARY_INT[opcode]
    if opcode in _SPECIAL_BINARY:
        return _SPECIAL_BINARY[opcode]
    return _UNARY[opcode]


def arity(opcode: Opcode) -> int:
    """Number of value sources an ALU/compare opcode consumes."""
    if opcode in _BINARY_INT or opcode in _SPECIAL_BINARY:
        return 2
    if opcode in _UNARY:
        return 1
    raise ValueError(f"{opcode} has no fixed ALU arity")


def is_alu(opcode: Opcode) -> bool:
    """True if the opcode computes a register value from register values."""
    return opcode in _BINARY_INT or opcode in _SPECIAL_BINARY or opcode in _UNARY


_FLOAT_OPCODES = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FNEG,
        Opcode.FABS,
        Opcode.FSQRT,
    }
)


def _classify_fu(opcode: Opcode) -> FUClass:
    if opcode in _FLOAT_OPCODES:
        return FUClass.FALU
    if opcode in MEMORY_OPCODES or opcode is Opcode.CHKPRED:
        return FUClass.MEM
    if opcode in BRANCH_OPCODES:
        return FUClass.BRANCH
    return FUClass.IALU


#: opcode -> unit class, precomputed once — the list scheduler asks per
#: heap pop, which makes this one of the hottest lookups in a sweep.
_FU_CLASS: dict = {op: _classify_fu(op) for op in Opcode}


def fu_class(opcode: Opcode) -> FUClass:
    """Functional-unit class an opcode executes on.

    ``LdPred`` executes on an integer unit (it behaves like a move whose
    source is the value predictor) and the check-prediction form executes
    on a memory unit with compare semantics, exactly as the paper argues
    in section 3 to avoid adding functional units.
    """
    return _FU_CLASS[opcode]
