"""Programs: a set of functions plus an initial memory image.

A :class:`Program` is what the workload generators produce, the profiler
executes and the compiler (speculation pass + scheduler) transforms.  A
program in this reproduction is single-function — the paper's evaluation
is entirely block-level, so inter-procedural structure adds nothing — but
the container keeps the name/function indirection so multi-function
workloads remain possible.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

from repro.ir.function import Function

Number = Union[int, float]


class Program:
    """A named program: functions, a main entry and an initial memory image.

    The memory image maps integer addresses to values; the interpreter
    copies it at the start of each run so repeated profiling/simulation
    runs observe identical initial state.
    """

    def __init__(self, name: str, main: str = "main"):
        self.name = name
        self.main_name = main
        self._functions: Dict[str, Function] = {}
        self.initial_memory: Dict[int, Number] = {}
        self.initial_registers: Dict[str, Number] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self._functions[function.name] = function
        return function

    def function(self, name: Optional[str] = None) -> Function:
        key = self.main_name if name is None else name
        try:
            return self._functions[key]
        except KeyError:
            raise KeyError(f"program {self.name!r} has no function {key!r}") from None

    @property
    def main(self) -> Function:
        return self.function()

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    def __len__(self) -> int:
        return len(self._functions)

    # -- memory image helpers ---------------------------------------------

    def poke(self, address: int, value: Number) -> None:
        """Set one word of the initial memory image."""
        self.initial_memory[int(address)] = value

    def poke_array(self, base: int, values) -> None:
        """Lay out a sequence of values at consecutive word addresses."""
        for i, value in enumerate(values):
            self.initial_memory[int(base) + i] = value

    def set_register(self, name: str, value: Number) -> None:
        """Set an initial register value (simulates function arguments)."""
        self.initial_registers[name] = value

    def __repr__(self) -> str:
        return (
            f"<Program {self.name} ({len(self)} functions, "
            f"{len(self.initial_memory)} memory words)>"
        )
