"""Fluent construction of IR functions and programs.

The builder is the authoring surface for the synthetic workloads: register
operands are plain strings, immediates are plain numbers, and blocks are
opened with :meth:`FunctionBuilder.block`.

Example::

    fb = FunctionBuilder("main")
    fb.block("entry")
    fb.mov("r1", 0)
    fb.br("loop")
    fb.block("loop")
    fb.load("r2", "r1", offset=100)
    fb.add("r1", "r1", 1)
    fb.cmplt("r3", "r1", 64)
    fb.brcond("r3", "loop", "exit")
    fb.block("exit")
    fb.halt()
    function = fb.build()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Operand, Operation, Reg
from repro.ir.program import Program

SrcLike = Union[str, int, float, Reg, Imm]


def as_operand(value: SrcLike) -> Operand:
    """Coerce a string/number into a register/immediate operand."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, str):
        return Reg(value)
    if isinstance(value, (int, float)):
        return Imm(value)
    raise TypeError(f"cannot convert {value!r} to an operand")


def as_reg(value: Union[str, Reg]) -> Reg:
    if isinstance(value, Reg):
        return value
    if isinstance(value, str):
        return Reg(value)
    raise TypeError(f"cannot convert {value!r} to a register")


class FunctionBuilder:
    """Builds a :class:`Function` block by block."""

    def __init__(self, name: str, entry_label: str = "entry"):
        self._function = Function(name, entry_label=entry_label)
        self._current: Optional[BasicBlock] = None

    # -- blocks ------------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        """Open a new basic block; subsequent emits go to it."""
        blk = BasicBlock(label)
        self._function.add_block(blk)
        self._current = blk
        return blk

    def _emit(self, op: Operation) -> Operation:
        if self._current is None:
            raise RuntimeError("open a block before emitting operations")
        return self._current.append(op)

    # -- generic emitters ----------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        dest: Optional[Union[str, Reg]] = None,
        *srcs: SrcLike,
        offset: int = 0,
        targets: tuple[str, ...] = (),
    ) -> Operation:
        return self._emit(
            Operation(
                opcode=opcode,
                dest=as_reg(dest) if dest is not None else None,
                srcs=tuple(as_operand(s) for s in srcs),
                offset=offset,
                targets=targets,
            )
        )

    def binary(self, opcode: Opcode, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.emit(opcode, dest, a, b)

    def unary(self, opcode: Opcode, dest: str, a: SrcLike) -> Operation:
        return self.emit(opcode, dest, a)

    # -- integer ALU ---------------------------------------------------------

    def add(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.ADD, dest, a, b)

    def sub(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.SUB, dest, a, b)

    def mul(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.MUL, dest, a, b)

    def div(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.DIV, dest, a, b)

    def mod(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.MOD, dest, a, b)

    def and_(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.AND, dest, a, b)

    def or_(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.OR, dest, a, b)

    def xor(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.XOR, dest, a, b)

    def shl(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.SHL, dest, a, b)

    def shr(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.SHR, dest, a, b)

    def min_(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.MIN, dest, a, b)

    def max_(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.MAX, dest, a, b)

    def mov(self, dest: str, a: SrcLike) -> Operation:
        return self.unary(Opcode.MOV, dest, a)

    def neg(self, dest: str, a: SrcLike) -> Operation:
        return self.unary(Opcode.NEG, dest, a)

    def not_(self, dest: str, a: SrcLike) -> Operation:
        return self.unary(Opcode.NOT, dest, a)

    def abs_(self, dest: str, a: SrcLike) -> Operation:
        return self.unary(Opcode.ABS, dest, a)

    # -- comparisons -----------------------------------------------------------

    def cmpeq(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPEQ, dest, a, b)

    def cmpne(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPNE, dest, a, b)

    def cmplt(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPLT, dest, a, b)

    def cmple(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPLE, dest, a, b)

    def cmpgt(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPGT, dest, a, b)

    def cmpge(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.CMPGE, dest, a, b)

    # -- floating point ---------------------------------------------------------

    def fadd(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.FADD, dest, a, b)

    def fsub(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.FSUB, dest, a, b)

    def fmul(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.FMUL, dest, a, b)

    def fdiv(self, dest: str, a: SrcLike, b: SrcLike) -> Operation:
        return self.binary(Opcode.FDIV, dest, a, b)

    def fsqrt(self, dest: str, a: SrcLike) -> Operation:
        return self.unary(Opcode.FSQRT, dest, a)

    # -- memory ------------------------------------------------------------------

    def load(self, dest: str, base: Union[str, Reg], offset: int = 0) -> Operation:
        return self.emit(Opcode.LOAD, dest, base, offset=offset)

    def store(
        self, value: SrcLike, base: Union[str, Reg], offset: int = 0
    ) -> Operation:
        return self.emit(Opcode.STORE, None, value, base, offset=offset)

    # -- control -------------------------------------------------------------------

    def br(self, target: str) -> Operation:
        return self.emit(Opcode.BR, targets=(target,))

    def brcond(self, cond: Union[str, Reg], then_label: str, else_label: str) -> Operation:
        return self.emit(Opcode.BRCOND, None, cond, targets=(then_label, else_label))

    def halt(self) -> Operation:
        return self.emit(Opcode.HALT)

    # -- finish ---------------------------------------------------------------------

    def build(self) -> Function:
        from repro.ir.verifier import verify_function

        verify_function(self._function)
        return self._function


class ProgramBuilder:
    """Builds a :class:`Program` containing one or more functions."""

    def __init__(self, name: str, main: str = "main"):
        self._program = Program(name, main=main)

    def function(self, name: Optional[str] = None, entry_label: str = "entry") -> FunctionBuilder:
        return FunctionBuilder(name or self._program.main_name, entry_label=entry_label)

    def add(self, function: Function) -> "ProgramBuilder":
        self._program.add_function(function)
        return self

    def memory(self, base: int, values) -> "ProgramBuilder":
        self._program.poke_array(base, values)
        return self

    def register(self, name: str, value) -> "ProgramBuilder":
        self._program.set_register(name, value)
        return self

    def build(self) -> Program:
        if not len(self._program):
            raise ValueError("program has no functions")
        return self._program
