"""Textual assembly for the IR: a writer and a parser that round-trip.

The format is a small, human-writable assembly so test programs and
experiments can live as text::

    program demo
    memory 1000: 1 2 3 5 8
    reg r_arg = 7

    function main entry=start
    start:
        mov   r1, #0
        br    loop
    loop:
        add   r2, r1, #1000
        load  r3, [r2+4]
        fadd  f1, f1, f2
        store r3, [r2+8]
        add   r1, r1, #1
        cmplt r4, r1, #10
        brcond r4, loop, done
    done:
        halt

Conventions:

* operands: ``rN``/names are registers, ``#k`` immediates (ints or
  floats);
* memory operands: ``[base]`` or ``[base+offset]`` / ``[base-offset]``;
* ``load dest, [base+off]`` and ``store value, [base+off]``;
* branches name their target labels directly;
* ``;`` starts a comment; blank lines are ignored;
* the prediction forms (``ldpred``/``chkpred``) are intentionally not
  parseable — they only exist in compiler-transformed code.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode, arity, is_alu
from repro.ir.operation import Imm, Operand, Operation, Reg
from repro.ir.program import Program
from repro.ir.verifier import verify_function, verify_program


class AsmSyntaxError(ValueError):
    """A line of assembly could not be parsed."""

    def __init__(self, line_no: int, line: str, reason: str):
        self.line_no = line_no
        self.line = line
        self.reason = reason
        super().__init__(f"line {line_no}: {reason}: {line.strip()!r}")


_MEM_RE = re.compile(r"^\[(?P<base>[A-Za-z_]\w*)(?:(?P<sign>[+-])(?P<off>\d+))?\]$")
_NUMBER_RE = re.compile(r"^#(?P<value>-?\d+(?:\.\d+)?)$")

#: Opcodes addressable by mnemonic in source text.
_MNEMONICS: Dict[str, Opcode] = {
    op.value: op
    for op in Opcode
    if op not in (Opcode.LDPRED, Opcode.CHKPRED)
}


# ---------------------------------------------------------------------------
# writing


def _format_operand(operand: Operand) -> str:
    if isinstance(operand, Imm):
        return f"#{operand.value}"
    return operand.name


def _format_mem(base: Operand, offset: int) -> str:
    name = _format_operand(base)
    if offset == 0:
        return f"[{name}]"
    sign = "+" if offset > 0 else "-"
    return f"[{name}{sign}{abs(offset)}]"


def format_operation_asm(op: Operation) -> str:
    """One operation in assembly syntax.

    Output for every front-end opcode parses back; the prediction forms
    (``ldpred``/``chkpred``) format readably for schedule/timeline dumps
    but are deliberately rejected by the parser.
    """
    mnemonic = op.opcode.value
    if op.opcode in (Opcode.LOAD, Opcode.CHKPRED):
        return f"{mnemonic} {op.dest.name}, {_format_mem(op.srcs[0], op.offset)}"
    if op.opcode is Opcode.STORE:
        value, base = op.srcs
        return f"{mnemonic} {_format_operand(value)}, {_format_mem(base, op.offset)}"
    if op.opcode is Opcode.BR:
        return f"{mnemonic} {op.targets[0]}"
    if op.opcode is Opcode.BRCOND:
        return f"{mnemonic} {_format_operand(op.srcs[0])}, {op.targets[0]}, {op.targets[1]}"
    if op.opcode is Opcode.HALT:
        return mnemonic
    parts = []
    if op.dest is not None:
        parts.append(op.dest.name)
    parts.extend(_format_operand(s) for s in op.srcs)
    return f"{mnemonic} {', '.join(parts)}"


def format_function_asm(function: Function) -> str:
    lines = [f"function {function.name} entry={function.entry_label}"]
    for block in function:
        lines.append(f"{block.label}:")
        for op in block:
            lines.append(f"    {format_operation_asm(op)}")
    return "\n".join(lines)


def format_program_asm(program: Program) -> str:
    lines = [f"program {program.name}"]
    # Compact consecutive addresses into one directive per run.
    addresses = sorted(program.initial_memory)
    run_start: Optional[int] = None
    run_values: List = []
    for address in addresses:
        if run_start is not None and address == run_start + len(run_values):
            run_values.append(program.initial_memory[address])
            continue
        if run_start is not None:
            lines.append(
                f"memory {run_start}: " + " ".join(str(v) for v in run_values)
            )
        run_start = address
        run_values = [program.initial_memory[address]]
    if run_start is not None:
        lines.append(f"memory {run_start}: " + " ".join(str(v) for v in run_values))
    for name in sorted(program.initial_registers):
        lines.append(f"reg {name} = {program.initial_registers[name]}")
    lines.append("")
    for function in program:
        lines.append(format_function_asm(function))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ---------------------------------------------------------------------------
# parsing


def _parse_number(text: str) -> float | int:
    return float(text) if "." in text else int(text)


def _parse_operand(token: str, line_no: int, line: str) -> Operand:
    match = _NUMBER_RE.match(token)
    if match:
        return Imm(_parse_number(match.group("value")))
    if re.match(r"^[A-Za-z_]\w*$", token):
        return Reg(token)
    raise AsmSyntaxError(line_no, line, f"bad operand {token!r}")


def _parse_mem(token: str, line_no: int, line: str) -> Tuple[Reg, int]:
    match = _MEM_RE.match(token)
    if not match:
        raise AsmSyntaxError(line_no, line, f"bad memory operand {token!r}")
    offset = int(match.group("off") or 0)
    if match.group("sign") == "-":
        offset = -offset
    return Reg(match.group("base")), offset


def _split_operands(rest: str) -> List[str]:
    return [token.strip() for token in rest.split(",") if token.strip()]


def parse_operation(line: str, line_no: int = 0) -> Operation:
    """Parse one assembly operation."""
    text = line.split(";", 1)[0].strip()
    if not text:
        raise AsmSyntaxError(line_no, line, "empty operation")
    head, _, rest = text.partition(" ")
    mnemonic = head.strip().lower()
    opcode = _MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AsmSyntaxError(line_no, line, f"unknown mnemonic {mnemonic!r}")
    tokens = _split_operands(rest)

    if opcode is Opcode.LOAD:
        if len(tokens) != 2:
            raise AsmSyntaxError(line_no, line, "load takes dest, [base+off]")
        base, offset = _parse_mem(tokens[1], line_no, line)
        return Operation(opcode=opcode, dest=Reg(tokens[0]), srcs=(base,), offset=offset)
    if opcode is Opcode.STORE:
        if len(tokens) != 2:
            raise AsmSyntaxError(line_no, line, "store takes value, [base+off]")
        value = _parse_operand(tokens[0], line_no, line)
        base, offset = _parse_mem(tokens[1], line_no, line)
        return Operation(opcode=opcode, srcs=(value, base), offset=offset)
    if opcode is Opcode.BR:
        if len(tokens) != 1:
            raise AsmSyntaxError(line_no, line, "br takes one target label")
        return Operation(opcode=opcode, targets=(tokens[0],))
    if opcode is Opcode.BRCOND:
        if len(tokens) != 3:
            raise AsmSyntaxError(line_no, line, "brcond takes cond, then, else")
        cond = _parse_operand(tokens[0], line_no, line)
        return Operation(opcode=opcode, srcs=(cond,), targets=(tokens[1], tokens[2]))
    if opcode is Opcode.HALT:
        if tokens:
            raise AsmSyntaxError(line_no, line, "halt takes no operands")
        return Operation(opcode=opcode)

    # ALU / compare forms: dest, src [, src]
    if not is_alu(opcode):
        raise AsmSyntaxError(line_no, line, f"unsupported opcode {mnemonic!r}")
    expected = 1 + arity(opcode)
    if len(tokens) != expected:
        raise AsmSyntaxError(
            line_no, line, f"{mnemonic} takes {expected} operands, got {len(tokens)}"
        )
    dest = Reg(tokens[0])
    srcs = tuple(_parse_operand(t, line_no, line) for t in tokens[1:])
    return Operation(opcode=opcode, dest=dest, srcs=srcs)


_FUNCTION_RE = re.compile(
    r"^function\s+(?P<name>\w+)(?:\s+entry=(?P<entry>\w+))?$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_]\w*):$")
_MEMORY_RE = re.compile(r"^memory\s+(?P<addr>\d+)\s*:\s*(?P<values>.+)$")
_REG_RE = re.compile(r"^reg\s+(?P<name>\w+)\s*=\s*(?P<value>-?\d+(?:\.\d+)?)$")
_PROGRAM_RE = re.compile(r"^program\s+(?P<name>\w+)$")


def parse_function(text: str, start_line: int = 1) -> Function:
    """Parse one function definition (no program directives)."""
    function: Optional[Function] = None
    block: Optional[BasicBlock] = None
    for offset, raw in enumerate(text.splitlines()):
        line_no = start_line + offset
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        header = _FUNCTION_RE.match(line)
        if header:
            if function is not None:
                raise AsmSyntaxError(line_no, raw, "nested function definition")
            function = Function(
                header.group("name"), entry_label=header.group("entry") or "entry"
            )
            continue
        if function is None:
            raise AsmSyntaxError(line_no, raw, "expected 'function NAME'")
        label = _LABEL_RE.match(line)
        if label:
            block = BasicBlock(label.group("label"))
            function.add_block(block)
            continue
        if block is None:
            raise AsmSyntaxError(line_no, raw, "operation outside any block")
        block.append(parse_operation(line, line_no))
    if function is None:
        raise AsmSyntaxError(start_line, text[:40], "no function found")
    return verify_function(function)


def parse_program(text: str) -> Program:
    """Parse a whole program: directives plus one or more functions."""
    program: Optional[Program] = None
    pending_memory: List[Tuple[int, List]] = []
    pending_regs: List[Tuple[str, float | int]] = []
    function_chunks: List[Tuple[int, List[str]]] = []
    current_chunk: Optional[List[str]] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        prog_match = _PROGRAM_RE.match(line)
        if prog_match:
            if program is not None:
                raise AsmSyntaxError(line_no, raw, "duplicate program directive")
            program = Program(prog_match.group("name"))
            continue
        mem_match = _MEMORY_RE.match(line)
        if mem_match and current_chunk is None:
            values = [_parse_number(v) for v in mem_match.group("values").split()]
            pending_memory.append((int(mem_match.group("addr")), values))
            continue
        reg_match = _REG_RE.match(line)
        if reg_match and current_chunk is None:
            pending_regs.append(
                (reg_match.group("name"), _parse_number(reg_match.group("value")))
            )
            continue
        if _FUNCTION_RE.match(line):
            current_chunk = [raw]
            function_chunks.append((line_no, current_chunk))
            continue
        if current_chunk is None:
            raise AsmSyntaxError(line_no, raw, "unexpected line outside a function")
        current_chunk.append(raw)

    if program is None:
        raise AsmSyntaxError(1, text[:40], "missing 'program NAME' directive")
    for start, chunk in function_chunks:
        program.add_function(parse_function("\n".join(chunk), start_line=start))
    for address, values in pending_memory:
        program.poke_array(address, values)
    for name, value in pending_regs:
        program.set_register(name, value)
    return verify_program(program)
