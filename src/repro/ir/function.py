"""Functions: ordered collections of basic blocks with a CFG."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.ir.block import BasicBlock


class Function:
    """A function is an entry block plus a control-flow graph of blocks.

    Block order is preserved (the order of insertion) because fall-through
    is not allowed: every block must end in an explicit branch or halt,
    which keeps the interpreter and the schedulers simple and mirrors the
    fully-resolved control flow Trimaran's Elcor IR presents to its
    back-end phases.
    """

    def __init__(self, name: str, entry_label: str = "entry"):
        self.name = name
        self.entry_label = entry_label
        self._blocks: Dict[str, BasicBlock] = {}
        self._order: List[str] = []

    # -- construction ----------------------------------------------------

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self._blocks[block.label] = block
        self._order.append(block.label)
        return block

    # -- access ----------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        return self.block(self.entry_label)

    def block(self, label: str) -> BasicBlock:
        try:
            return self._blocks[label]
        except KeyError:
            raise KeyError(f"function {self.name!r} has no block {label!r}") from None

    def has_block(self, label: str) -> bool:
        return label in self._blocks

    @property
    def blocks(self) -> List[BasicBlock]:
        return [self._blocks[label] for label in self._order]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self._order)

    # -- CFG -------------------------------------------------------------

    def successors(self, label: str) -> List[BasicBlock]:
        return [self.block(t) for t in self.block(label).successor_labels()]

    def predecessors(self, label: str) -> List[BasicBlock]:
        return [
            blk for blk in self.blocks if label in blk.successor_labels()
        ]

    def reachable_labels(self) -> set[str]:
        """Labels reachable from the entry block."""
        seen: set[str] = set()
        stack = [self.entry_label]
        while stack:
            label = stack.pop()
            if label in seen or label not in self._blocks:
                continue
            seen.add(label)
            stack.extend(self.block(label).successor_labels())
        return seen

    # -- cosmetics -------------------------------------------------------

    def __str__(self) -> str:
        header = f"function {self.name} (entry={self.entry_label})"
        return "\n".join([header] + [str(b) for b in self.blocks])

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self)} blocks)>"


def find_block_of_operation(function: Function, op_id: int) -> Optional[BasicBlock]:
    """Locate the block containing the operation with the given id."""
    for block in function:
        for op in block:
            if op.op_id == op_id:
                return block
    return None
