"""Backward liveness analysis over a function's CFG.

The speculation pass needs per-block live-out register sets: a value that
is live out of its block must eventually be written to the architectural
register file with its *correct* value, so the operation computing it is
a prime candidate for the non-speculative form (paper section 2.1: the
example keeps operations 10 and 11, which produce the block's results,
non-speculative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.ir.function import Function
from repro.ir.operation import Reg


@dataclass(frozen=True)
class LivenessInfo:
    """Per-block live-in/live-out register sets."""

    live_in: Dict[str, FrozenSet[Reg]]
    live_out: Dict[str, FrozenSet[Reg]]


def compute_liveness(function: Function) -> LivenessInfo:
    """Standard iterative backward dataflow over the CFG.

    ``live_in(B) = use(B) | (live_out(B) - def(B))``
    ``live_out(B) = union of live_in(S) over successors S``
    """
    use: Dict[str, set[Reg]] = {}
    defs: Dict[str, set[Reg]] = {}
    for block in function:
        use[block.label] = block.upward_exposed_uses()
        defs[block.label] = block.regs_defined()

    live_in: Dict[str, set[Reg]] = {b.label: set() for b in function}
    live_out: Dict[str, set[Reg]] = {b.label: set() for b in function}

    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            label = block.label
            out: set[Reg] = set()
            for succ in block.successor_labels():
                out.update(live_in[succ])
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return LivenessInfo(
        live_in={k: frozenset(v) for k, v in live_in.items()},
        live_out={k: frozenset(v) for k, v in live_out.items()},
    )
