"""Textual rendering of IR objects (for debugging, examples and docs)."""

from __future__ import annotations

from typing import Iterable

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.program import Program


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    lines = [f"{block.label}:"]
    lines.extend(f"{indent}{op}" for op in block)
    return "\n".join(lines)


def format_function(function: Function) -> str:
    parts = [f"function {function.name} (entry={function.entry_label})"]
    parts.extend(format_block(b) for b in function)
    return "\n".join(parts)


def format_program(program: Program) -> str:
    parts = [f"program {program.name}"]
    if program.initial_registers:
        regs = ", ".join(
            f"{name}={value}" for name, value in sorted(program.initial_registers.items())
        )
        parts.append(f"  init-regs: {regs}")
    if program.initial_memory:
        parts.append(f"  memory image: {len(program.initial_memory)} words")
    parts.extend(format_function(f) for f in program)
    return "\n".join(parts)


def format_table(headers: Iterable[str], rows: Iterable[Iterable[object]]) -> str:
    """Render an ASCII table (used by the evaluation report writers)."""
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(headers), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
