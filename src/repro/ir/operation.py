"""Operands and operations of the VLIW IR.

An :class:`Operation` is a single HPL-PD-style operation (one slot of a
VLIW instruction).  Operands are virtual registers (:class:`Reg`) or
immediates (:class:`Imm`).  Memory operations address memory as
``base_register + offset``; branches name their target blocks by label.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple, Union

from repro.ir.opcodes import (
    BRANCH_OPCODES,
    Opcode,
    arity,
    is_alu,
)


@dataclass(frozen=True, slots=True)
class Reg:
    """A virtual register, identified by name (e.g. ``r4`` or ``f2``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate (literal) operand."""

    value: Union[int, float]

    def __str__(self) -> str:
        return f"#{self.value}"


Operand = Union[Reg, Imm]

_op_counter = itertools.count(1)


def reset_operation_ids() -> None:
    """Restart the global operation-id counter (used by test fixtures)."""
    global _op_counter
    _op_counter = itertools.count(1)


def ensure_operation_ids_above(min_id: int) -> None:
    """Advance the id counter so new operations get ids above ``min_id``.

    Required before an op-creating pass (speculation, unrolling) runs
    over a program whose operations were numbered by a *different*
    counter state — unpickled from the result cache or shipped from
    another process.  Without it a freshly created operation can collide
    with an existing id and corrupt every id-keyed structure (dependence
    graphs, schedules, value profiles).
    """
    global _op_counter
    current = next(_op_counter)
    _op_counter = itertools.count(max(current, min_id + 1))


@dataclass(eq=False, slots=True)
class Operation:
    """One IR operation.

    Attributes:
        opcode: the operation code.
        dest: destination register, or ``None`` for stores/branches.
        srcs: source operands in positional order.  For ``LOAD`` the single
            source is the base address register; for ``STORE`` the sources
            are ``(value, base)``; for ``BRCOND`` the single source is the
            condition register.
        offset: byte offset added to the base register of a memory op.
        targets: branch target labels — ``(then, else)`` for ``BRCOND``,
            ``(target,)`` for ``BR``, empty otherwise.
        op_id: unique id assigned at construction; stable identity for
            dependence graphs, schedules and the speculation pass.
    """

    opcode: Opcode
    dest: Optional[Reg] = None
    srcs: Tuple[Operand, ...] = ()
    offset: int = 0
    targets: Tuple[str, ...] = ()
    op_id: int = field(default_factory=lambda: next(_op_counter))

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        op = self.opcode
        if is_alu(op):
            if self.dest is None:
                raise ValueError(f"{op.value} requires a destination register")
            if len(self.srcs) != arity(op):
                raise ValueError(
                    f"{op.value} takes {arity(op)} sources, got {len(self.srcs)}"
                )
        elif op is Opcode.LOAD:
            if self.dest is None or len(self.srcs) != 1:
                raise ValueError("load requires a destination and a base register")
        elif op is Opcode.STORE:
            if self.dest is not None or len(self.srcs) != 2:
                raise ValueError("store takes (value, base) sources and no dest")
        elif op is Opcode.BR:
            if len(self.targets) != 1:
                raise ValueError("br requires exactly one target label")
        elif op is Opcode.BRCOND:
            if len(self.srcs) != 1 or len(self.targets) != 2:
                raise ValueError("brcond requires a condition and two targets")
        elif op is Opcode.HALT:
            if self.srcs or self.dest is not None:
                raise ValueError("halt takes no operands")
        elif op is Opcode.LDPRED:
            # LdPred reads the value predictor, not registers.
            if self.dest is None or self.srcs:
                raise ValueError("ldpred takes a destination register only")
        elif op is Opcode.CHKPRED:
            # The check-prediction form of a load: re-executes the load and
            # compares against the LdPred predicted value.
            if self.dest is None or len(self.srcs) != 1:
                raise ValueError("chkpred requires a destination and a base register")

    # -- dataflow queries ------------------------------------------------

    def uses(self) -> Iterator[Reg]:
        """Registers read by this operation (in positional order)."""
        for src in self.srcs:
            if isinstance(src, Reg):
                yield src

    def defs(self) -> Iterator[Reg]:
        """Registers written by this operation."""
        if self.dest is not None:
            yield self.dest

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPCODES

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    @property
    def has_side_effect(self) -> bool:
        """True for operations that must not be value-speculated.

        Stores change memory and branches change control flow; neither can
        be undone by the Compensation Code Engine, so the speculation pass
        always keeps them in non-speculative form.
        """
        return self.is_store or self.is_branch

    # -- cosmetics -------------------------------------------------------

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.dest is not None:
            parts.append(str(self.dest))
        parts.extend(str(s) for s in self.srcs)
        if self.opcode in (Opcode.LOAD, Opcode.STORE):
            parts.append(f"[{self.offset}]")
        parts.extend(self.targets)
        return f"op{self.op_id}: " + " ".join(parts)

    def __repr__(self) -> str:
        return f"<{self}>"

    def __hash__(self) -> int:
        return hash(self.op_id)
