"""VLIW intermediate representation: operations, blocks, functions, programs.

This package replaces the Trimaran Elcor IR the paper builds on.  The
public surface is re-exported here:

* :class:`Opcode`, :class:`FUClass` — operation codes and FU classes.
* :class:`Reg`, :class:`Imm`, :class:`Operation` — operands/operations.
* :class:`BasicBlock`, :class:`Function`, :class:`Program` — containers.
* :class:`FunctionBuilder`, :class:`ProgramBuilder` — fluent construction.
* :func:`verify_function`, :func:`verify_program` — invariant checks.
* :func:`compute_liveness` — per-block live-in/live-out sets.
"""

from repro.ir.asm import (
    AsmSyntaxError,
    format_function_asm,
    format_operation_asm,
    format_program_asm,
    parse_function,
    parse_operation,
    parse_program,
)
from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder, ProgramBuilder, as_operand, as_reg
from repro.ir.function import Function
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.opcodes import (
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    FUClass,
    Opcode,
    arity,
    evaluator,
    fu_class,
    is_alu,
)
from repro.ir.operation import Imm, Operand, Operation, Reg, reset_operation_ids
from repro.ir.printer import format_block, format_function, format_program, format_table
from repro.ir.program import Program
from repro.ir.verifier import VerificationError, check_function, verify_function, verify_program

__all__ = [
    "AsmSyntaxError",
    "BRANCH_OPCODES",
    "MEMORY_OPCODES",
    "BasicBlock",
    "FUClass",
    "Function",
    "FunctionBuilder",
    "Imm",
    "LivenessInfo",
    "Opcode",
    "Operand",
    "Operation",
    "Program",
    "ProgramBuilder",
    "Reg",
    "VerificationError",
    "arity",
    "as_operand",
    "as_reg",
    "check_function",
    "compute_liveness",
    "evaluator",
    "format_block",
    "format_function",
    "format_function_asm",
    "format_operation_asm",
    "format_program_asm",
    "format_program",
    "format_table",
    "fu_class",
    "is_alu",
    "parse_function",
    "parse_operation",
    "parse_program",
    "reset_operation_ids",
    "verify_function",
    "verify_program",
]
