"""Basic blocks of the VLIW IR."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg


class BasicBlock:
    """A straight-line sequence of operations ending in (at most) a branch.

    Blocks are the unit of scheduling and of value speculation in the
    paper: the compiler computes a static schedule per block and the two
    execution engines run each dynamic block instance.
    """

    def __init__(self, label: str, operations: Optional[Iterable[Operation]] = None):
        self.label = label
        self.operations: List[Operation] = list(operations or [])
        self._check_terminator_position()

    def _check_terminator_position(self) -> None:
        for op in self.operations[:-1]:
            if op.is_branch:
                raise ValueError(
                    f"block {self.label!r}: branch {op} is not the last operation"
                )

    # -- structure -------------------------------------------------------

    def append(self, op: Operation) -> Operation:
        if self.operations and self.operations[-1].is_branch:
            raise ValueError(f"block {self.label!r} is already terminated")
        self.operations.append(op)
        return op

    @property
    def terminator(self) -> Optional[Operation]:
        if self.operations and self.operations[-1].is_branch:
            return self.operations[-1]
        return None

    @property
    def body(self) -> List[Operation]:
        """Operations excluding the terminating branch."""
        if self.terminator is not None:
            return self.operations[:-1]
        return list(self.operations)

    def successor_labels(self) -> tuple[str, ...]:
        term = self.terminator
        if term is None or term.opcode is Opcode.HALT:
            return ()
        return term.targets

    # -- dataflow --------------------------------------------------------

    def regs_used(self) -> set[Reg]:
        used: set[Reg] = set()
        for op in self.operations:
            used.update(op.uses())
        return used

    def regs_defined(self) -> set[Reg]:
        defined: set[Reg] = set()
        for op in self.operations:
            defined.update(op.defs())
        return defined

    def upward_exposed_uses(self) -> set[Reg]:
        """Registers read before any write within this block (live-in)."""
        exposed: set[Reg] = set()
        written: set[Reg] = set()
        for op in self.operations:
            for reg in op.uses():
                if reg not in written:
                    exposed.add(reg)
            written.update(op.defs())
        return exposed

    def loads(self) -> List[Operation]:
        return [op for op in self.operations if op.is_load]

    # -- cosmetics -------------------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {op}" for op in self.operations)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.operations)} ops)>"
