"""Value-stream capture and replay.

One architectural run per (program, pipeline fingerprint) is recorded as
a compact trace — the dynamic block sequence plus the result values of
traced operations — and every downstream consumer (block/value
profiling, the dual-engine program simulation, all sweep points of an
ablation) replays that trace instead of re-interpreting the program.
"""

from repro.trace.capture import TraceCaptureObserver, capture_trace
from repro.trace.format import (
    TRACE_SCHEMA_VERSION,
    TRACED_OPCODES,
    TraceError,
    TraceMismatch,
    ValueTrace,
    block_signature,
    program_digest,
)
from repro.trace.replay import replay_trace
from repro.trace.store import (
    NO_TRACE_ENV,
    TraceStore,
    default_store,
    replay_enabled,
    reset_default_store,
)

__all__ = [
    "NO_TRACE_ENV",
    "TRACED_OPCODES",
    "TRACE_SCHEMA_VERSION",
    "TraceCaptureObserver",
    "TraceError",
    "TraceMismatch",
    "TraceStore",
    "ValueTrace",
    "block_signature",
    "capture_trace",
    "default_store",
    "program_digest",
    "replay_enabled",
    "replay_trace",
    "reset_default_store",
]
