"""Capturing a value trace from one architectural run."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.ir.program import Program
from repro.profiling.interpreter import Interpreter
from repro.profiling.memory import Number
from repro.trace.format import (
    TRACED_OPCODES,
    ValueTrace,
    block_signature,
    program_digest,
)


class TraceCaptureObserver:
    """Execution observer recording the block sequence and traced values.

    Rides along any architectural run; the interpreter's fast path keeps
    capture cheap because the per-op tuple building it implies is paid
    once, not once per downstream consumer.
    """

    def __init__(self) -> None:
        self.labels: List[str] = []
        self._label_ids: Dict[str, int] = {}
        self.block_seq: List[int] = []
        self.values: List[Number] = []

    def block_entered(self, block: BasicBlock) -> None:
        label = block.label
        block_id = self._label_ids.get(label)
        if block_id is None:
            block_id = self._label_ids[label] = len(self.labels)
            self.labels.append(label)
        self.block_seq.append(block_id)

    def operation_executed(self, op: Operation, inputs, result) -> None:
        if op.opcode in TRACED_OPCODES:
            self.values.append(result)


def capture_trace(
    program: Program, max_operations: int = 5_000_000
) -> ValueTrace:
    """Interpret ``program`` once and package the run as a trace."""
    observer = TraceCaptureObserver()
    result = Interpreter(max_operations=max_operations).run(
        program, observers=[observer]
    )
    function = program.main
    signatures = tuple(
        block_signature(function.block(label)) for label in observer.labels
    )
    return ValueTrace(
        program_name=program.name,
        program_digest=program_digest(program),
        labels=tuple(observer.labels),
        block_signatures=signatures,
        block_seq=observer.block_seq,
        values=observer.values,
        dynamic_operations=result.dynamic_operations,
        dynamic_blocks=result.dynamic_blocks,
        loads_executed=result.loads_executed,
        stores_executed=result.stores_executed,
        halted=result.halted,
        final_registers=dict(result.registers),
        final_memory=result.memory.snapshot(),
    )
