"""Replaying a captured value trace through execution observers.

Replay walks the recorded dynamic block sequence and, for each block
instance, notifies observers of the block entry and of each *traced*
static operation with its recorded result value.  That is exactly the
subset of execution events the block-frequency profiler, the value
profiler and the dual-engine simulation observer consume — so replay
produces identical profiles and simulation results at a fraction of the
cost of re-interpreting every dynamic operation.

Observers receive ``inputs=()`` during replay: operand values are not
recorded in the trace, and no shipped observer reads them (they key on
``op.op_id`` and ``result``).  Observers that need operand values must
run against the live interpreter instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.program import Program
from repro.profiling.interpreter import (
    ExecutionLimitExceeded,
    ExecutionObserver,
    ExecutionResult,
)
from repro.trace.format import (
    TRACED_OPCODES,
    TraceMismatch,
    ValueTrace,
    block_signature,
    program_digest,
)


def _replay_plan(trace: ValueTrace, program: Program):
    """Resolve trace block ids to this program's blocks and traced ops.

    Raises :class:`TraceMismatch` when the trace does not belong to a
    structurally identical program — wrong digest, unknown label, or a
    block whose opcode sequence changed since capture.
    """
    digest = program_digest(program)
    if digest != trace.program_digest:
        raise TraceMismatch(
            f"trace was captured from a different program: digest "
            f"{trace.program_digest[:12]} != {digest[:12]} "
            f"({trace.program_name!r} vs {program.name!r})"
        )
    function = program.main
    plan = []
    for label, signature in zip(trace.labels, trace.block_signatures):
        try:
            block = function.block(label)
        except KeyError as exc:
            raise TraceMismatch(
                f"trace references block {label!r} missing from "
                f"program {program.name!r}"
            ) from exc
        if block_signature(block) != signature:
            raise TraceMismatch(
                f"block {label!r} of {program.name!r} changed since the "
                "trace was captured"
            )
        traced_ops = tuple(
            op for op in block.operations if op.opcode in TRACED_OPCODES
        )
        plan.append((block, traced_ops))
    return plan


def replay_trace(
    trace: ValueTrace,
    program: Program,
    observers: Optional[Sequence[ExecutionObserver]] = None,
    max_operations: Optional[int] = None,
) -> ExecutionResult:
    """Drive ``observers`` from a captured trace; returns the captured run.

    ``max_operations`` mirrors the interpreter's dynamic-op budget: a
    trace longer than the budget raises :class:`ExecutionLimitExceeded`
    just as live interpretation of the same program would.
    """
    if max_operations is not None and trace.dynamic_operations > max_operations:
        raise ExecutionLimitExceeded(
            f"{trace.program_name}: exceeded {max_operations} operations"
        )
    plan = _replay_plan(trace, program)
    values = trace.values
    n_values = len(values)
    cursor = 0

    if observers:
        observer_list: List[ExecutionObserver] = list(observers)
        if len(observer_list) == 1:
            # The common case (one profiler pair is fused upstream, the
            # simulation observer always rides alone): bind the two
            # notification methods once.
            only = observer_list[0]
            block_entered = only.block_entered
            operation_executed = only.operation_executed
            for block_id in trace.block_seq:
                block, traced_ops = plan[block_id]
                block_entered(block)
                for op in traced_ops:
                    if cursor >= n_values:
                        raise TraceMismatch(
                            f"trace for {trace.program_name!r} ran out of "
                            f"values at op {op.op_id} of block "
                            f"{block.label!r}"
                        )
                    operation_executed(op, (), values[cursor])
                    cursor += 1
        else:
            for block_id in trace.block_seq:
                block, traced_ops = plan[block_id]
                for observer in observer_list:
                    observer.block_entered(block)
                for op in traced_ops:
                    if cursor >= n_values:
                        raise TraceMismatch(
                            f"trace for {trace.program_name!r} ran out of "
                            f"values at op {op.op_id} of block "
                            f"{block.label!r}"
                        )
                    value = values[cursor]
                    cursor += 1
                    for observer in observer_list:
                        observer.operation_executed(op, (), value)
    else:
        # No observers: nothing consumes events, but still validate the
        # stream length below by accounting every instance's values.
        for block_id in trace.block_seq:
            cursor += len(plan[block_id][1])

    if cursor != n_values:
        raise TraceMismatch(
            f"trace for {trace.program_name!r} has {n_values} values but "
            f"the block sequence consumes {cursor}"
        )
    return trace.to_execution_result()
