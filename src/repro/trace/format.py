"""The value-trace format: one architectural run, compactly.

A :class:`ValueTrace` records everything the downstream consumers of an
architectural run actually use — the dynamic block sequence and the
result values of *traced* operations (loads and long-latency ALU ops,
the only opcodes the value profiler and the simulation observer read) —
plus the run's final architectural state, so replay can reconstruct a
byte-identical :class:`~repro.profiling.interpreter.ExecutionResult`
without re-interpreting the program.

Format invariants (see ``docs/INTERNALS.md`` for the full spec):

* **Block ids** — ``labels`` assigns each block label a small integer in
  first-execution order; ``block_seq`` is the dynamic run as a sequence
  of those ids.
* **Value ordering** — ``values`` is a single flat stream.  Each dynamic
  block instance consumes one value per *traced* static operation of
  that block, in static (program) order; instances are concatenated in
  ``block_seq`` order.  Predicted loads are a subset of traced ops, so
  the replay driver can feed the simulation observer without knowing the
  speculation decisions at capture time.
* **Identity** — ``program_digest`` hashes the program *structure*
  (labels, opcode/operand/target sequences, initial state) but not
  operation ids, which are assigned by a process-global counter and
  differ between builds of the same program.  A trace therefore replays
  against any structurally identical program.
* **Versioning** — ``schema_version`` gates compatibility; loaders
  reject other versions rather than misinterpreting the stream.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Tuple, Union

from repro.ir.opcodes import Opcode
from repro.ir.operation import Imm, Reg
from repro.ir.program import Program
from repro.profiling.interpreter import ExecutionResult
from repro.profiling.memory import Memory, Number
from repro.profiling.value_profile import LONG_LATENCY_OPCODES

#: Bump when the trace layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Opcodes whose results are recorded in the value stream.  This is the
#: union of everything the value profiler can track and everything the
#: speculation pass can predict (loads always; long-latency ALU under
#: ``predict_alu``) — so one trace serves every downstream consumer.
TRACED_OPCODES: FrozenSet[Opcode] = frozenset({Opcode.LOAD}) | LONG_LATENCY_OPCODES


class TraceError(RuntimeError):
    """A trace could not be captured, serialized, or loaded."""


class TraceMismatch(TraceError):
    """A trace does not correspond to the program offered for replay."""


def _operand_key(operand: Union[Reg, Imm]):
    if isinstance(operand, Imm):
        return ["imm", operand.value]
    return ["reg", operand.name]


#: id(program) -> (program, digest).  Identity memo: the entry pins the
#: program, so the id cannot be recycled while it lives.  Programs are
#: immutable once built (the pass managers always rebuild), so the
#: digest of a given object never changes.  Cleared alongside the other
#: process-wide memos by ``repro.batchsim.reset_shared_state``.
_DIGESTS: Dict[int, Tuple[Program, str]] = {}


def reset_digest_memo() -> None:
    _DIGESTS.clear()


def program_digest(program: Program) -> str:
    """Structural content hash of a program (memoised per object).

    Covers everything that determines the architectural run — function
    and block structure, opcodes, operands, offsets, branch targets, and
    the initial register/memory image — but deliberately *not* operation
    ids, so two builds of the same workload (whose ids depend on global
    counter state) share one trace.
    """
    from repro.batchsim._compat import sharing_enabled

    if sharing_enabled():
        entry = _DIGESTS.get(id(program))
        if entry is not None and entry[0] is program:
            return entry[1]
    doc = {
        "name": program.name,
        "main": program.main_name,
        "functions": [
            {
                "name": function.name,
                "entry": function.entry_label,
                "blocks": [
                    {
                        "label": block.label,
                        "ops": [
                            [
                                op.opcode.value,
                                op.dest.name if op.dest is not None else None,
                                [_operand_key(s) for s in op.srcs],
                                op.offset,
                                list(op.targets),
                            ]
                            for op in block.operations
                        ],
                    }
                    for block in function.blocks
                ],
            }
            for function in program
        ],
        "registers": sorted(program.initial_registers.items()),
        "memory": sorted(program.initial_memory.items()),
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if sharing_enabled():
        _DIGESTS[id(program)] = (program, digest)
    return digest


def block_signature(block) -> Tuple[str, ...]:
    """The opcode sequence of a block — the per-block validation key."""
    return tuple(op.opcode.value for op in block.operations)


@dataclass
class ValueTrace:
    """One captured architectural run."""

    program_name: str
    program_digest: str
    #: Block labels in first-execution order; index = block id.
    labels: Tuple[str, ...]
    #: Per-label opcode sequences, parallel to ``labels`` (validation).
    block_signatures: Tuple[Tuple[str, ...], ...]
    #: The dynamic run as label indices into ``labels``.
    block_seq: List[int]
    #: Flat traced-op value stream (see module docstring for ordering).
    values: List[Number]
    dynamic_operations: int = 0
    dynamic_blocks: int = 0
    loads_executed: int = 0
    stores_executed: int = 0
    halted: bool = True
    final_registers: Dict[str, Number] = field(default_factory=dict)
    final_memory: Dict[int, Number] = field(default_factory=dict)
    schema_version: int = TRACE_SCHEMA_VERSION

    def to_execution_result(self) -> ExecutionResult:
        """Reconstruct the captured run's :class:`ExecutionResult`.

        The memory's access counters are restored from the capture so a
        replayed run reports the captured ``loads_executed`` /
        ``stores_executed`` instead of zero.
        """
        memory = Memory.with_counts(
            self.final_memory, reads=self.loads_executed, writes=self.stores_executed
        )
        return ExecutionResult(
            program_name=self.program_name,
            dynamic_operations=self.dynamic_operations,
            dynamic_blocks=self.dynamic_blocks,
            registers=dict(self.final_registers),
            memory=memory,
            halted=self.halted,
        )

    @property
    def n_values(self) -> int:
        return len(self.values)

    # -- serialization -----------------------------------------------------

    def to_json_obj(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "program_name": self.program_name,
            "program_digest": self.program_digest,
            "labels": list(self.labels),
            "block_signatures": [list(sig) for sig in self.block_signatures],
            "block_seq": list(self.block_seq),
            "values": list(self.values),
            "dynamic_operations": self.dynamic_operations,
            "dynamic_blocks": self.dynamic_blocks,
            "loads_executed": self.loads_executed,
            "stores_executed": self.stores_executed,
            "halted": self.halted,
            "final_registers": dict(self.final_registers),
            # JSON object keys are strings; load() converts them back.
            "final_memory": {str(k): v for k, v in self.final_memory.items()},
        }

    @classmethod
    def from_json_obj(cls, obj: dict) -> "ValueTrace":
        try:
            version = obj["schema_version"]
            if version != TRACE_SCHEMA_VERSION:
                raise TraceError(
                    f"unsupported trace schema version {version} "
                    f"(this build reads version {TRACE_SCHEMA_VERSION})"
                )
            return cls(
                program_name=obj["program_name"],
                program_digest=obj["program_digest"],
                labels=tuple(obj["labels"]),
                block_signatures=tuple(
                    tuple(sig) for sig in obj["block_signatures"]
                ),
                block_seq=list(obj["block_seq"]),
                values=list(obj["values"]),
                dynamic_operations=obj["dynamic_operations"],
                dynamic_blocks=obj["dynamic_blocks"],
                loads_executed=obj["loads_executed"],
                stores_executed=obj["stores_executed"],
                halted=obj["halted"],
                final_registers=dict(obj["final_registers"]),
                final_memory={
                    int(k): v for k, v in obj["final_memory"].items()
                },
                schema_version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace object: {exc}") from exc

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        payload = json.dumps(self.to_json_obj(), separators=(",", ":"))
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ValueTrace":
        try:
            with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TraceError(f"cannot read trace {path}: {exc}") from exc
        if not isinstance(obj, dict):
            raise TraceError(f"cannot read trace {path}: not a JSON object")
        return cls.from_json_obj(obj)
