"""Process-level trace cache for runner-less evaluation sweeps.

The :class:`~repro.runner.Runner` path disk-caches traces as first-class
jobs; direct :class:`~repro.evaluation.experiment.Evaluation` use (the
table/figure modules, ``repro-bench`` scenarios, tests) has no disk cache
to lean on, so this module provides a small in-process LRU keyed by the
program's structural digest.  A threshold ablation that profiles and
simulates the same built program at N sweep points then pays for one
interpretation and N-1 replays.

``REPRO_NO_TRACE=1`` disables replay everywhere (capture still works if
called explicitly); use it to fall back to live interpretation when
diagnosing a suspected trace bug.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Optional

from repro.ir.program import Program
from repro.trace.capture import capture_trace
from repro.trace.format import ValueTrace, program_digest

#: Environment variable disabling trace replay (forces live interpretation).
NO_TRACE_ENV = "REPRO_NO_TRACE"

#: Traces whose value stream exceeds this many entries are served but not
#: retained, bounding the store's memory footprint at full workload scale.
DEFAULT_MAX_VALUES = 2_000_000


def replay_enabled() -> bool:
    """Whether trace capture/replay is active for implicit fast paths."""
    return os.environ.get(NO_TRACE_ENV) != "1"


class TraceStore:
    """A bounded LRU of captured traces, keyed by program digest."""

    def __init__(self, capacity: int = 16, max_values: int = DEFAULT_MAX_VALUES):
        if capacity < 1:
            raise ValueError("TraceStore capacity must be >= 1")
        self.capacity = capacity
        self.max_values = max_values
        self._traces: "OrderedDict[str, ValueTrace]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.captures = 0

    def __len__(self) -> int:
        return len(self._traces)

    def get(self, program: Program) -> Optional[ValueTrace]:
        digest = program_digest(program)
        trace = self._traces.get(digest)
        if trace is None:
            self.misses += 1
            return None
        self.hits += 1
        self._traces.move_to_end(digest)
        return trace

    def put(self, trace: ValueTrace) -> None:
        if trace.n_values > self.max_values:
            return
        self._traces[trace.program_digest] = trace
        self._traces.move_to_end(trace.program_digest)
        while len(self._traces) > self.capacity:
            self._traces.popitem(last=False)

    def get_or_capture(
        self, program: Program, max_operations: int = 5_000_000
    ) -> ValueTrace:
        """The cached trace for ``program``, capturing it on first use."""
        trace = self.get(program)
        if trace is None:
            trace = capture_trace(program, max_operations=max_operations)
            self.captures += 1
            self.put(trace)
        return trace

    def clear(self) -> None:
        self._traces.clear()


_DEFAULT_STORE: Optional[TraceStore] = None


def default_store() -> TraceStore:
    """The process-wide trace store (created on first use)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = TraceStore()
    return _DEFAULT_STORE


def reset_default_store() -> None:
    """Drop the process-wide store (test isolation)."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None
