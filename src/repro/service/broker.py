"""The sweep broker: a stdlib-HTTP front end over queue + cache.

The broker is deliberately cheap — it schedules and bookkeeps, it never
builds, profiles, compiles or simulates anything.  All state lives in
the :class:`~repro.service.queue.SweepQueue` SQLite file and the shared
:class:`~repro.runner.cache.CacheBackend`, so the broker process itself
is disposable: restart it and workers reconnect, leases time out and
requeue, nothing is lost.

API (JSON unless noted):

==========================================  =================================
``POST /sweeps``                            submit a packed job graph
                                            (:func:`repro.service.wire.pack_graph`)
``GET  /sweeps/<id>``                       sweep status/counts
``GET  /sweeps/<id>/events?since=N``        per-sweep JSONL event stream
``POST /worker/lease``                      ``{"worker": id}`` → one ready job
``POST /worker/complete``                   report a lease outcome
``POST /worker/heartbeat``                  extend held leases
``GET  /cache/<key>``                       raw pickled result bytes | 404
``PUT  /cache/<key>``                       store result bytes
                                            (``X-Repro-Manifest`` header)
``GET  /cache/stats``                       backend stats JSON
``POST /cache/clear?force=1``               wipe the backend (403 w/o force)
``GET  /healthz``                           liveness + queue totals
==========================================  =================================

Run it with ``repro-serve`` (see :mod:`repro.service.__main__`), or
embed it in-process — the loopback tests do — via::

    broker = Broker(queue, cache)
    broker.start()          # daemon thread
    ... ServiceClient(broker.url) ...
    broker.stop()

Trust model: the broker serves a team's sweep traffic on a network you
control.  Job blobs and cached results are pickles; do not expose the
port to untrusted clients (``docs/SERVICE.md``).
"""

from __future__ import annotations

import json
import re
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.runner.cache import CacheBackend
from repro.service.queue import SweepQueue
from repro.service.wire import WireError, check_wire_version

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class Broker:
    """Owns the HTTP server plus the queue and cache it fronts."""

    def __init__(
        self,
        queue: SweepQueue,
        cache: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.queue = queue
        self.cache = cache
        self.verbose = verbose
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "Broker":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="repro-broker", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.queue.close()

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def _make_handler(broker: Broker):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing ----------------------------------------------------------

        #: Reset per request; True once a status line may have hit the
        #: wire, at which point a second response would desync the
        #: keep-alive connection.
        _response_begun = False

        def log_message(self, fmt: str, *args: Any) -> None:
            if broker.verbose:
                sys.stderr.write(
                    f"broker: {self.address_string()} {fmt % args}\n"
                )

        def _json(self, status: int, payload: Dict[str, Any]) -> None:
            body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
            self._response_begun = True
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _bytes(self, status: int, body: bytes, content_type: str) -> None:
            self._response_begun = True
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, exc: Exception) -> None:
            """Report a handler fault without corrupting the connection.

            If a response already started (e.g. a fault mid-write), a
            second status line on the same HTTP/1.1 keep-alive socket
            would desync the client — drop the connection instead.
            """
            if self._response_begun:
                self.close_connection = True
                self.log_message("aborting connection after %r", exc)
                return
            try:
                self._json(500, {"error": repr(exc)})
            except Exception:  # noqa: BLE001 - socket already gone
                self.close_connection = True

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def _read_json(self) -> Dict[str, Any]:
            return json.loads(self._read_body() or b"{}")

        def _route(self) -> Tuple[str, Dict[str, Any]]:
            parsed = urlparse(self.path)
            query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            return parsed.path.rstrip("/") or "/", query

        # -- GET ---------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._response_begun = False
            path, query = self._route()
            try:
                if path == "/healthz":
                    payload = {"ok": True, **broker.queue.counts()}
                    payload["cache"] = broker.cache.describe()
                    return self._json(200, payload)
                if path == "/cache/stats":
                    return self._json(200, broker.cache.stats().as_dict())
                match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
                if match:
                    payload = broker.cache.load_bytes(match.group(1))
                    if payload is None:
                        return self._json(404, {"error": "miss"})
                    return self._bytes(
                        200, payload, "application/octet-stream"
                    )
                match = re.fullmatch(r"/sweeps/([0-9a-f]+)", path)
                if match:
                    status = broker.queue.sweep_status(match.group(1))
                    if status is None:
                        return self._json(404, {"error": "unknown sweep"})
                    return self._json(200, status)
                match = re.fullmatch(r"/sweeps/([0-9a-f]+)/events", path)
                if match:
                    since = int(query.get("since", 0))
                    records = broker.queue.events_since(match.group(1), since)
                    body = "".join(
                        json.dumps(record, default=str) + "\n"
                        for record in records
                    ).encode("utf-8")
                    return self._bytes(200, body, "application/x-ndjson")
                self._json(404, {"error": f"no route {path!r}"})
            except Exception as exc:  # noqa: BLE001 - report, don't kill the thread
                self._fail(exc)

        # -- POST --------------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802
            self._response_begun = False
            path, query = self._route()
            try:
                if path == "/sweeps":
                    payload = self._read_json()
                    try:
                        check_wire_version(payload)
                    except WireError as exc:
                        return self._json(400, {"error": str(exc)})
                    jobs = payload.get("jobs", [])
                    for entry in jobs:
                        key = entry.get("key", "")
                        if not _KEY_RE.fullmatch(str(key)):
                            return self._json(
                                400, {"error": f"malformed job key {key!r}"}
                            )
                    summary = broker.queue.submit(
                        jobs, result_exists=broker.cache.has
                    )
                    return self._json(200, summary)
                if path == "/worker/lease":
                    payload = self._read_json()
                    job = broker.queue.lease(str(payload.get("worker", "?")))
                    return self._json(200, {"job": job})
                if path == "/worker/complete":
                    payload = self._read_json()
                    outcome = broker.queue.complete(
                        worker=str(payload.get("worker", "?")),
                        key=str(payload.get("key", "")),
                        ok=bool(payload.get("ok")),
                        cached=bool(payload.get("cached")),
                        wall_time=float(payload.get("wall_time", 0.0)),
                        error=payload.get("error"),
                    )
                    return self._json(200, outcome)
                if path == "/worker/heartbeat":
                    payload = self._read_json()
                    extended = broker.queue.heartbeat(
                        str(payload.get("worker", "?")),
                        [str(k) for k in payload.get("keys", [])],
                    )
                    return self._json(200, {"extended": extended})
                if path == "/cache/clear":
                    if query.get("force") not in ("1", "true", "yes"):
                        return self._json(
                            403,
                            {
                                "error": (
                                    "refusing to clear a shared cache "
                                    "without force=1"
                                )
                            },
                        )
                    return self._json(200, {"removed": broker.cache.clear()})
                self._json(404, {"error": f"no route {path!r}"})
            except Exception as exc:  # noqa: BLE001
                self._fail(exc)

        # -- PUT / DELETE ------------------------------------------------------

        def do_PUT(self) -> None:  # noqa: N802
            self._response_begun = False
            path, _ = self._route()
            try:
                match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
                if not match:
                    return self._json(404, {"error": f"no route {path!r}"})
                payload = self._read_body()
                manifest: Dict[str, Any] = {}
                header = self.headers.get("X-Repro-Manifest")
                if header:
                    try:
                        manifest = json.loads(header)
                    except json.JSONDecodeError:
                        manifest = {}
                broker.cache.store_bytes(match.group(1), payload, manifest)
                self._json(200, {"stored": len(payload)})
            except Exception as exc:  # noqa: BLE001
                self._fail(exc)

        def do_DELETE(self) -> None:  # noqa: N802
            self._response_begun = False
            path, _ = self._route()
            try:
                match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
                if not match:
                    return self._json(404, {"error": f"no route {path!r}"})
                broker.cache.evict(match.group(1))
                self._json(200, {"evicted": match.group(1)})
            except Exception as exc:  # noqa: BLE001
                self._fail(exc)

    return Handler
