"""The sweep broker: a stdlib-HTTP front end over queue + cache.

The broker is deliberately cheap — it schedules and bookkeeps, it never
builds, profiles, compiles or simulates anything.  All state lives in
the :class:`~repro.service.queue.SweepQueue` SQLite file and the shared
:class:`~repro.runner.cache.CacheBackend`, so the broker process itself
is disposable: restart it and workers reconnect, leases time out and
requeue, nothing is lost.

API (JSON unless noted):

==========================================  =================================
``POST /sweeps``                            submit a packed job graph
                                            (:func:`repro.service.wire.pack_graph`)
``GET  /sweeps/<id>``                       sweep status/counts/timestamps
``GET  /sweeps/<id>/events?since=N``        per-sweep JSONL event stream
``POST /worker/lease``                      ``{"worker": id}`` → one ready job
``POST /worker/complete``                   report a lease outcome
``POST /worker/heartbeat``                  extend held leases; piggybacks the
                                            worker's telemetry snapshot
``GET  /workers``                           fleet view: last-heartbeat age,
                                            jobs done/failed, current lease
``GET  /metrics``                           Prometheus text exposition of the
                                            merged broker + fleet telemetry
``GET  /cache/<key>``                       raw pickled result bytes | 404
``PUT  /cache/<key>``                       store result bytes
                                            (``X-Repro-Manifest`` header)
``GET  /cache/stats``                       backend stats JSON
``POST /cache/clear?force=1``               wipe the backend (403 w/o force)
``GET  /healthz``                           liveness + per-state job counts +
                                            uptime + ready depth
==========================================  =================================

Telemetry: the broker owns a :class:`~repro.obs.metrics.MetricsRegistry`
(shared with its queue unless the queue brought its own) and serves it
at ``GET /metrics`` merged with the latest snapshot each worker pushed
over its heartbeat — one scrape sees queue depth, lease/complete rates
and latency summaries, per-route HTTP latency, per-backend cache byte
counters, and per-worker liveness gauges.  Request handling logs
structured JSON (:mod:`repro.obs.logging`) carrying the correlation IDs
clients propagate in the ``X-Repro-Context`` header.  See
``docs/OBSERVABILITY.md`` for the metric catalog.

Run it with ``repro-serve`` (see :mod:`repro.service.__main__`), or
embed it in-process — the loopback tests do — via::

    broker = Broker(queue, cache)
    broker.start()          # daemon thread
    ... ServiceClient(broker.url) ...
    broker.stop()

Trust model: the broker serves a team's sweep traffic on a network you
control.  Job blobs and cached results are pickles; do not expose the
port to untrusted clients (``docs/SERVICE.md``).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.logging import get_logger, log_context
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, NULL_METRICS
from repro.obs.prometheus import CONTENT_TYPE, encode_exposition
from repro.runner.cache import CacheBackend
from repro.service.queue import SweepQueue
from repro.service.wire import WireError, check_wire_version

_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: ``(method, path regex, route label)`` for per-route HTTP metrics.
_ROUTE_LABELS: Tuple[Tuple[str, re.Pattern, str], ...] = tuple(
    (method, re.compile(pattern), label)
    for method, pattern, label in (
        ("GET", r"/healthz$", "healthz"),
        ("GET", r"/metrics$", "metrics"),
        ("GET", r"/workers$", "workers"),
        ("GET", r"/cache/stats$", "cache_stats"),
        ("GET", r"/cache/[0-9a-f]{64}$", "cache_get"),
        ("PUT", r"/cache/[0-9a-f]{64}$", "cache_put"),
        ("DELETE", r"/cache/[0-9a-f]{64}$", "cache_evict"),
        ("GET", r"/sweeps/[0-9a-f]+/events$", "sweep_events"),
        ("GET", r"/sweeps/[0-9a-f]+$", "sweep_status"),
        ("POST", r"/sweeps$", "sweep_submit"),
        ("POST", r"/worker/lease$", "lease"),
        ("POST", r"/worker/complete$", "complete"),
        ("POST", r"/worker/heartbeat$", "heartbeat"),
        ("POST", r"/cache/clear$", "cache_clear"),
    )
)


def _route_label(method: str, path: str) -> str:
    """Bounded-cardinality route label for HTTP metrics (no raw paths)."""
    for route_method, pattern, label in _ROUTE_LABELS:
        if route_method == method and pattern.match(path):
            return label
    return "unknown"


class Broker:
    """Owns the HTTP server plus the queue, cache, and telemetry it fronts."""

    def __init__(
        self,
        queue: SweepQueue,
        cache: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.queue = queue
        self.cache = cache
        self.verbose = verbose
        # One registry serves the whole process: prefer an explicit one,
        # else adopt the queue's, else create our own — and make sure
        # the queue shares it so lease/complete counters land in the
        # same /metrics scrape.  (NULL_METRICS is the shared disabled
        # default, never mutated — a queue carrying it simply hasn't
        # been given telemetry yet.)
        if metrics is not None:
            self.metrics = metrics
        elif queue.metrics is not NULL_METRICS:
            self.metrics = queue.metrics
        else:
            self.metrics = MetricsRegistry()
        if queue.metrics is NULL_METRICS:
            queue.metrics = self.metrics
        self.log = get_logger("repro.broker")
        self.started = time.time()
        #: Latest heartbeat per worker: {"ts", "keys", "stats"}.
        self._fleet: Dict[str, Dict[str, Any]] = {}
        self._fleet_lock = threading.Lock()
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "Broker":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(
            target=self.server.serve_forever, name="repro-broker", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.server.serve_forever()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.queue.close()

    def __enter__(self) -> "Broker":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- fleet bookkeeping -----------------------------------------------------

    def record_heartbeat(
        self, worker: str, keys: List[str], stats: Optional[Dict[str, Any]]
    ) -> None:
        """Remember the latest heartbeat (and telemetry push) per worker."""
        with self._fleet_lock:
            entry = self._fleet.setdefault(worker, {})
            entry["ts"] = time.time()
            entry["keys"] = list(keys)
            if stats:
                entry["stats"] = stats

    def workers(self) -> List[Dict[str, Any]]:
        """Fleet view for ``GET /workers``, sorted by worker id."""
        now = time.time()
        out = []
        with self._fleet_lock:
            fleet = {w: dict(entry) for w, entry in self._fleet.items()}
        for worker, entry in sorted(fleet.items()):
            stats = entry.get("stats", {})
            out.append(
                {
                    "worker": worker,
                    "last_heartbeat_age_seconds": round(
                        max(0.0, now - entry.get("ts", now)), 3
                    ),
                    "leased_keys": entry.get("keys", []),
                    "current": stats.get("current"),
                    "executed": stats.get("executed", 0),
                    "failed": stats.get("failed", 0),
                    "started": stats.get("started"),
                }
            )
        return out

    # -- telemetry -------------------------------------------------------------

    def telemetry_snapshot(self) -> MetricsSnapshot:
        """Broker registry + live gauges + the fleet's pushed snapshots.

        Counters accumulate in the registry; *current-value* gauges
        (queue depth per state, ready jobs, uptime, fleet size) are
        synthesized fresh per scrape — the registry's max-keeping gauge
        semantics suit simulator peaks, not queue levels.
        """
        snapshot = self.metrics.snapshot()
        counters = dict(snapshot.counters)
        for field, value in self.cache.telemetry().items():
            counters[f"service.cache.{field}{{backend={self.cache.name}}}"] = value
        gauges = dict(snapshot.gauges)
        counts = self.queue.counts()
        for state, count in counts["jobs"].items():
            gauges[f"service.jobs{{state={state}}}"] = count
        gauges["service.sweeps"] = counts["sweeps"]
        gauges["service.pending_ready"] = self.queue.pending_ready()
        gauges["service.uptime_seconds"] = round(time.time() - self.started, 3)
        merged = MetricsSnapshot(
            counters, gauges, {k: v.copy() for k, v in snapshot.histograms.items()}
        )
        now = time.time()
        with self._fleet_lock:
            fleet = {
                w: dict(entry) for w, entry in sorted(self._fleet.items())
            }
        worker_gauges: Dict[str, float] = {}
        for worker, entry in fleet.items():
            worker_gauges[
                f"service.worker.last_heartbeat_age_seconds{{worker={worker}}}"
            ] = round(max(0.0, now - entry.get("ts", now)), 3)
            pushed = (entry.get("stats") or {}).get("metrics")
            if pushed:
                try:
                    merged = merged.merged(MetricsSnapshot.from_dict(pushed))
                except (TypeError, ValueError, AttributeError):
                    self.log.warning(
                        "discarding malformed worker metrics push",
                        worker_id=worker,
                    )
        merged.gauges.update(worker_gauges)
        merged.gauges["service.workers"] = len(fleet)
        return merged


def _make_handler(broker: Broker):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing ----------------------------------------------------------

        #: Reset per request; True once a status line may have hit the
        #: wire, at which point a second response would desync the
        #: keep-alive connection.
        _response_begun = False
        _status_sent = 0

        def log_message(self, fmt: str, *args: Any) -> None:
            if broker.verbose:
                broker.log.debug(
                    "http.server: " + fmt % args, peer=self.address_string()
                )

        def send_response(self, code: int, message: Optional[str] = None) -> None:
            self._status_sent = code
            super().send_response(code, message)

        def _json(self, status: int, payload: Dict[str, Any]) -> None:
            body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
            self._bytes(status, body, "application/json")

        def _bytes(self, status: int, body: bytes, content_type: str) -> None:
            self._response_begun = True
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _fail(self, exc: Exception) -> None:
            """Report a handler fault without corrupting the connection.

            If a response already started (e.g. a fault mid-write), a
            second status line on the same HTTP/1.1 keep-alive socket
            would desync the client — drop the connection instead.
            """
            broker.log.error(
                "handler fault", error=repr(exc), path=self.path,
                **self._correlation(),
            )
            if self._response_begun:
                self.close_connection = True
                self.log_message("aborting connection after %r", exc)
                return
            try:
                self._json(500, {"error": repr(exc)})
            except Exception:  # noqa: BLE001 - socket already gone
                self.close_connection = True

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            return self.rfile.read(length) if length else b""

        def _read_json(self) -> Dict[str, Any]:
            return json.loads(self._read_body() or b"{}")

        def _route(self) -> Tuple[str, Dict[str, Any]]:
            parsed = urlparse(self.path)
            query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
            return parsed.path.rstrip("/") or "/", query

        def _correlation(self) -> Dict[str, Any]:
            """Correlation IDs propagated by the client (bounded, flat)."""
            header = self.headers.get("X-Repro-Context")
            if not header:
                return {}
            try:
                fields = json.loads(header)
            except json.JSONDecodeError:
                return {}
            if not isinstance(fields, dict):
                return {}
            return {
                str(k): v
                for k, v in list(fields.items())[:8]
                if isinstance(v, (str, int, float, bool))
            }

        def _dispatch(self, method: str, handler) -> None:
            """Route one request through timing + structured logging."""
            self._response_begun = False
            self._status_sent = 0
            path, query = self._route()
            label = _route_label(method, path)
            t0 = time.monotonic()
            try:
                with log_context(**self._correlation()):
                    handler(path, query)
            except Exception as exc:  # noqa: BLE001 - report, don't kill the thread
                self._fail(exc)
            finally:
                elapsed = time.monotonic() - t0
                broker.metrics.inc("service.http_requests", label=label)
                broker.metrics.observe(
                    "service.http_seconds", elapsed, label=label
                )
                if self._status_sent >= 500:
                    broker.metrics.inc("service.http_errors", label=label)
                broker.log.debug(
                    "request",
                    method=method,
                    route=label,
                    path=path,
                    status=self._status_sent,
                    seconds=round(elapsed, 6),
                    **self._correlation(),
                )

        # -- GET ---------------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET", self._get)

        def _get(self, path: str, query: Dict[str, Any]) -> None:
            if path == "/healthz":
                counts = broker.queue.counts()
                payload = {
                    "ok": True,
                    **counts,
                    "pending_ready": broker.queue.pending_ready(),
                    "uptime_seconds": round(time.time() - broker.started, 3),
                    "workers": len(broker.workers()),
                }
                payload["cache"] = broker.cache.describe()
                return self._json(200, payload)
            if path == "/metrics":
                body = encode_exposition(broker.telemetry_snapshot()).encode(
                    "utf-8"
                )
                return self._bytes(200, body, CONTENT_TYPE)
            if path == "/workers":
                return self._json(200, {"workers": broker.workers()})
            if path == "/cache/stats":
                return self._json(200, broker.cache.stats().as_dict())
            match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
            if match:
                payload = broker.cache.load_bytes(match.group(1))
                if payload is None:
                    return self._json(404, {"error": "miss"})
                return self._bytes(200, payload, "application/octet-stream")
            match = re.fullmatch(r"/sweeps/([0-9a-f]+)", path)
            if match:
                status = broker.queue.sweep_status(match.group(1))
                if status is None:
                    return self._json(404, {"error": "unknown sweep"})
                return self._json(200, status)
            match = re.fullmatch(r"/sweeps/([0-9a-f]+)/events", path)
            if match:
                since = int(query.get("since", 0))
                records = broker.queue.events_since(match.group(1), since)
                body = "".join(
                    json.dumps(record, default=str) + "\n"
                    for record in records
                ).encode("utf-8")
                return self._bytes(200, body, "application/x-ndjson")
            self._json(404, {"error": f"no route {path!r}"})

        # -- POST --------------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST", self._post)

        def _post(self, path: str, query: Dict[str, Any]) -> None:
            if path == "/sweeps":
                payload = self._read_json()
                try:
                    check_wire_version(payload)
                except WireError as exc:
                    return self._json(400, {"error": str(exc)})
                jobs = payload.get("jobs", [])
                for entry in jobs:
                    key = entry.get("key", "")
                    if not _KEY_RE.fullmatch(str(key)):
                        return self._json(
                            400, {"error": f"malformed job key {key!r}"}
                        )
                summary = broker.queue.submit(
                    jobs, result_exists=broker.cache.has
                )
                broker.log.info(
                    "sweep submitted",
                    sweep_id=summary["sweep_id"],
                    total=summary["total"],
                    new=summary["new"],
                    deduped=summary["deduped"],
                )
                return self._json(200, summary)
            if path == "/worker/lease":
                payload = self._read_json()
                job = broker.queue.lease(str(payload.get("worker", "?")))
                return self._json(200, {"job": job})
            if path == "/worker/complete":
                payload = self._read_json()
                outcome = broker.queue.complete(
                    worker=str(payload.get("worker", "?")),
                    key=str(payload.get("key", "")),
                    ok=bool(payload.get("ok")),
                    cached=bool(payload.get("cached")),
                    wall_time=float(payload.get("wall_time", 0.0)),
                    error=payload.get("error"),
                )
                if not payload.get("ok"):
                    broker.log.warning(
                        "job reported failed",
                        worker_id=str(payload.get("worker", "?")),
                        job_key=str(payload.get("key", "")),
                        state=outcome.get("state"),
                        error=payload.get("error"),
                    )
                return self._json(200, outcome)
            if path == "/worker/heartbeat":
                payload = self._read_json()
                worker = str(payload.get("worker", "?"))
                keys = [str(k) for k in payload.get("keys", [])]
                stats = payload.get("stats")
                broker.record_heartbeat(
                    worker, keys, stats if isinstance(stats, dict) else None
                )
                extended = broker.queue.heartbeat(worker, keys)
                return self._json(200, {"extended": extended})
            if path == "/cache/clear":
                if query.get("force") not in ("1", "true", "yes"):
                    return self._json(
                        403,
                        {
                            "error": (
                                "refusing to clear a shared cache "
                                "without force=1"
                            )
                        },
                    )
                return self._json(200, {"removed": broker.cache.clear()})
            self._json(404, {"error": f"no route {path!r}"})

        # -- PUT / DELETE ------------------------------------------------------

        def do_PUT(self) -> None:  # noqa: N802
            self._dispatch("PUT", self._put)

        def _put(self, path: str, query: Dict[str, Any]) -> None:
            match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
            if not match:
                return self._json(404, {"error": f"no route {path!r}"})
            payload = self._read_body()
            manifest: Dict[str, Any] = {}
            header = self.headers.get("X-Repro-Manifest")
            if header:
                try:
                    manifest = json.loads(header)
                except json.JSONDecodeError:
                    manifest = {}
            broker.cache.store_bytes(match.group(1), payload, manifest)
            broker.metrics.inc("service.cache.http_put_bytes", len(payload))
            self._json(200, {"stored": len(payload)})

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE", self._delete)

        def _delete(self, path: str, query: Dict[str, Any]) -> None:
            match = re.fullmatch(r"/cache/([0-9a-f]{64})", path)
            if not match:
                return self._json(404, {"error": f"no route {path!r}"})
            broker.cache.evict(match.group(1))
            self._json(200, {"evicted": match.group(1)})

    return Handler
