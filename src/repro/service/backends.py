"""Pluggable cache backends for the sweep service.

The executor caches stage results through the
:class:`repro.runner.cache.CacheBackend` interface; this module adds the
*shared* implementations that make multi-worker and multi-host sweeps
hit one deduplicated store:

``SQLiteCache``
    A single WAL-mode SQLite file.  Safe for many concurrent readers and
    writers (processes or threads) on one host or a shared filesystem —
    the broker's default, and the backend two loopback workers share in
    the end-to-end tests.

``HTTPCache``
    A thin client for a broker's object-store endpoints
    (``GET/PUT /cache/<key>``, ``GET /cache/stats``,
    ``POST /cache/clear``).  This is how a worker on another host shares
    the broker's cache without a shared filesystem.  Network faults
    degrade to cache misses; sweeps slow down, they do not fail.

:func:`make_cache` resolves a backend *spec string* — the value of
``--cache-backend`` or ``$REPRO_CACHE_URL``::

    disk                      DiskCache in the default location
    disk:/path                DiskCache rooted at /path
    sqlite                    SQLiteCache at <default cache dir>/cache.db
    sqlite:/path/file.db      SQLiteCache at that file
    /path/file.db             ditto (by suffix)
    http://host:port[/cache]  HTTPCache against a broker
    /some/dir                 DiskCache rooted there
"""

from __future__ import annotations

import json
import sqlite3
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.runner.cache import (
    CacheBackend,
    CacheStats,
    DiskCache,
    FORMAT_VERSION,
    default_cache_dir,
)

#: Suffixes that make a bare path mean "SQLite file", not "directory".
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class SQLiteCache(CacheBackend):
    """Content-addressed store in one SQLite file, safe for concurrency.

    WAL journaling lets readers proceed under a writer; a generous busy
    timeout plus per-thread connections make concurrent workers
    hammering the same key serialize instead of erroring.  Writes are
    ``INSERT OR REPLACE`` — last writer wins, which is correct because
    two writers of the same content-hash key are by construction writing
    the same result.
    """

    name = "sqlite"
    shared = True

    def __init__(self, path: Union[str, Path, None] = None, enabled: bool = True):
        super().__init__(enabled=enabled)
        self.path = (
            Path(path).expanduser()
            if path is not None
            else default_cache_dir() / "cache.db"
        )
        self._local = threading.local()

    def describe(self) -> str:
        return f"sqlite ({self.path})"

    # -- connection management ----------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                f"""CREATE TABLE IF NOT EXISTS entries_v{FORMAT_VERSION} (
                    key TEXT PRIMARY KEY,
                    payload BLOB NOT NULL,
                    manifest TEXT NOT NULL,
                    stage TEXT,
                    created REAL,
                    size INTEGER
                )"""
            )
            self._local.conn = conn
        return conn

    @property
    def _table(self) -> str:
        return f"entries_v{FORMAT_VERSION}"

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- byte-level primitives ----------------------------------------------

    def load_bytes(self, key: str) -> Optional[bytes]:
        try:
            row = self._conn().execute(
                f"SELECT payload FROM {self._table} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            return None
        return bytes(row[0]) if row is not None else None

    def has(self, key: str) -> bool:
        try:
            row = self._conn().execute(
                f"SELECT 1 FROM {self._table} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            return False
        return row is not None

    def store_bytes(self, key: str, payload: bytes, manifest: Dict[str, Any]) -> None:
        self._conn().execute(
            f"INSERT OR REPLACE INTO {self._table} "
            "(key, payload, manifest, stage, created, size) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                key,
                sqlite3.Binary(payload),
                json.dumps(manifest, sort_keys=True),
                str(manifest.get("stage", "unknown")),
                float(manifest.get("created", 0.0)),
                len(payload),
            ),
        )

    def evict(self, key: str) -> None:
        try:
            self._conn().execute(
                f"DELETE FROM {self._table} WHERE key = ?", (key,)
            )
        except sqlite3.Error:
            pass

    def stats(self) -> CacheStats:
        stats = CacheStats(
            root=str(self.path),
            hits=self.hits,
            misses=self.misses,
            backend=self.name,
        )
        try:
            rows = self._conn().execute(
                f"SELECT stage, COUNT(*), SUM(size) FROM {self._table} "
                "GROUP BY stage"
            ).fetchall()
        except sqlite3.Error:
            return stats
        for stage, count, size in rows:
            stage = stage or "unknown"
            stats.entries += count
            stats.total_bytes += size or 0
            stats.by_stage[stage] = count
            stats.bytes_by_stage[stage] = size or 0
        return stats

    def clear(self) -> int:
        try:
            conn = self._conn()
            (count,) = conn.execute(
                f"SELECT COUNT(*) FROM {self._table}"
            ).fetchone()
            conn.execute(f"DELETE FROM {self._table}")
            return count
        except sqlite3.Error:
            return 0


class HTTPCache(CacheBackend):
    """Client for a remote object store speaking the broker's cache API.

    Endpoints, relative to the base URL (``http://host:port/cache``)::

        GET  <base>/<key>       200 pickled payload | 404 miss
        PUT  <base>/<key>       body = payload, X-Repro-Manifest = JSON
        GET  <base>/stats       CacheStats JSON
        POST <base>/clear?force=1

    All network trouble is swallowed into a miss (get) or a dropped
    write (put): a flaky broker makes a sweep slower, never wrong.
    """

    name = "http"
    shared = True

    def __init__(self, url: str, enabled: bool = True, timeout: float = 30.0):
        super().__init__(enabled=enabled)
        url = url.rstrip("/")
        if not url.endswith("/cache"):
            url += "/cache"
        self.url = url
        self.timeout = timeout

    def describe(self) -> str:
        return f"http ({self.url})"

    def _request(
        self,
        method: str,
        path: str,
        data: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Optional[bytes]:
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, method=method,
            headers=headers or {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except (urllib.error.URLError, OSError, ValueError):
            return None

    # -- byte-level primitives ----------------------------------------------

    def load_bytes(self, key: str) -> Optional[bytes]:
        return self._request("GET", f"/{key}")

    def store_bytes(self, key: str, payload: bytes, manifest: Dict[str, Any]) -> None:
        self._request(
            "PUT",
            f"/{key}",
            data=payload,
            headers={
                "Content-Type": "application/octet-stream",
                "X-Repro-Manifest": json.dumps(manifest, sort_keys=True),
            },
        )

    def evict(self, key: str) -> None:
        self._request("DELETE", f"/{key}")

    def stats(self) -> CacheStats:
        payload = self._request("GET", "/stats")
        stats = CacheStats(
            root=self.url, hits=self.hits, misses=self.misses, backend=self.name
        )
        if payload is None:
            return stats
        try:
            remote = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return stats
        stats.entries = int(remote.get("entries", 0))
        stats.total_bytes = int(remote.get("total_bytes", 0))
        stats.by_stage = dict(remote.get("by_stage", {}))
        stats.bytes_by_stage = dict(remote.get("bytes_by_stage", {}))
        return stats

    def clear(self) -> int:
        payload = self._request("POST", "/clear?force=1")
        if payload is None:
            return 0
        try:
            return int(json.loads(payload).get("removed", 0))
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
            return 0


def make_cache(
    spec: Optional[str] = None,
    enabled: bool = True,
    default_root: Optional[Path] = None,
) -> CacheBackend:
    """Resolve a ``--cache-backend`` / ``$REPRO_CACHE_URL`` spec string.

    ``None`` falls back to the environment variable, then to the local
    disk backend — so existing callers and the default CLI behaviour are
    unchanged.  ``default_root`` (the ``--cache-dir`` flag) roots the
    disk backend and the default SQLite file when the spec names no
    explicit path.
    """
    import os

    if spec is None:
        spec = os.environ.get("REPRO_CACHE_URL") or ""
    spec = spec.strip()
    if not spec or spec == "disk":
        return DiskCache(root=default_root, enabled=enabled)
    if spec.startswith(("http://", "https://")):
        return HTTPCache(spec, enabled=enabled)
    scheme, _, rest = spec.partition(":")
    if scheme == "sqlite":
        if rest:
            return SQLiteCache(rest, enabled=enabled)
        root = Path(default_root) if default_root else default_cache_dir()
        return SQLiteCache(root / "cache.db", enabled=enabled)
    if scheme == "disk":
        return DiskCache(root=Path(rest) if rest else default_root, enabled=enabled)
    if spec.endswith(_SQLITE_SUFFIXES):
        return SQLiteCache(spec, enabled=enabled)
    return DiskCache(root=Path(spec), enabled=enabled)
