"""Client side of the sweep service: raw HTTP + a Runner-shaped adapter.

:class:`ServiceClient` speaks the broker's JSON API with a shared
:class:`~repro.runner.retry.RetryPolicy` reconnect loop — a broker
restart mid-call shows up as a few jittered retries, not an exception.

:class:`ServiceRunner` is the piece the rest of the codebase sees: it
quacks like :class:`repro.runner.Runner` (``run`` / ``run_job`` /
``result`` / ``events`` / ``close``), so ``Evaluation(runner=...)`` and
``repro-eval --service URL`` work unchanged and produce byte-identical
outputs — the results it returns are the same pickled objects a local
runner would have cached, fetched back through the broker's object
store.  The broker's per-sweep event stream is mirrored into the local
:class:`~repro.runner.events.EventLog` (``--events`` keeps working), so
cache-hit accounting is observable on the client exactly as it is
locally.

Correlation: every request carries the caller's current
:func:`repro.obs.logging.context_fields` as an ``X-Repro-Context``
header, and :class:`ServiceRunner` runs each sweep inside
``log_context(sweep_id=...)`` — so the broker's request logs, the
worker's job logs, and the client's own records all grep by the same
``sweep_id``/``job_key`` (``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.logging import context_fields, get_logger, log_context
from repro.runner.cache import CacheBackend
from repro.runner.events import EventLog
from repro.runner.graph import JobGraph
from repro.runner.jobs import Job
from repro.runner.retry import RECONNECT_POLICY, RetryPolicy
from repro.service.wire import pack_graph


class ServiceError(RuntimeError):
    """The broker rejected a request, or a sweep finished with failures."""


class ServiceClient:
    """Thin JSON-over-HTTP wrapper for one broker."""

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        max_retries: int = 5,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retry = retry or RECONNECT_POLICY
        self.max_retries = max_retries

    # -- transport ------------------------------------------------------------

    def request_bytes(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        allow_404: bool = False,
    ) -> Optional[bytes]:
        """One HTTP round trip with reconnect retries.

        Connection-level faults (broker restarting, socket resets) retry
        with jittered backoff; HTTP-level errors surface immediately —
        the broker answered, it just said no.
        """
        data = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers: Dict[str, str] = (
            {"Content-Type": "application/json"} if data else {}
        )
        context = {
            k: v
            for k, v in context_fields().items()
            if isinstance(v, (str, int, float, bool))
        }
        if context:
            # Propagate correlation IDs (sweep_id/job_key/worker_id) so
            # the broker's request logs join with ours.  Single header
            # line: keep it bounded and newline-free.
            header = json.dumps(context, default=str)[:2048]
            if "\n" not in header:
                headers["X-Repro-Context"] = header
        attempt = 0
        while True:
            request = urllib.request.Request(
                f"{self.url}{path}",
                data=data,
                method=method,
                headers=headers,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 404 and allow_404:
                    return None
                try:
                    detail = json.loads(exc.read() or b"{}").get("error", "")
                except (json.JSONDecodeError, OSError):
                    detail = ""
                raise ServiceError(
                    f"{method} {path}: HTTP {exc.code} {detail}".strip()
                ) from exc
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise ServiceError(
                        f"broker unreachable at {self.url} after "
                        f"{attempt} attempt(s): {exc!r}"
                    ) from exc
                self.retry.sleep(attempt, token=f"{self.url}{path}")

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        body = self.request_bytes(method, path, payload)
        return json.loads(body or b"{}")

    # -- API ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def submit(self, jobs: Iterable[Job]) -> Dict[str, Any]:
        """Submit the full dependency closure of ``jobs``; return summary."""
        graph = JobGraph(jobs)
        return self.request("POST", "/sweeps", pack_graph(graph.jobs))

    def status(self, sweep_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/sweeps/{sweep_id}")

    def events(self, sweep_id: str, since: int = 0) -> List[Dict[str, Any]]:
        body = self.request_bytes(
            "GET", f"/sweeps/{sweep_id}/events?since={since}"
        )
        records = []
        for line in (body or b"").splitlines():
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
        return records

    def lease(self, worker: str) -> Optional[Dict[str, Any]]:
        return self.request("POST", "/worker/lease", {"worker": worker}).get(
            "job"
        )

    def complete(
        self,
        worker: str,
        key: str,
        ok: bool,
        cached: bool = False,
        wall_time: float = 0.0,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "POST",
            "/worker/complete",
            {
                "worker": worker,
                "key": key,
                "ok": ok,
                "cached": cached,
                "wall_time": wall_time,
                "error": error,
            },
        )

    def heartbeat(
        self,
        worker: str,
        keys: List[str],
        stats: Optional[Dict[str, Any]] = None,
    ) -> int:
        payload: Dict[str, Any] = {"worker": worker, "keys": keys}
        if stats is not None:
            payload["stats"] = stats
        return int(
            self.request("POST", "/worker/heartbeat", payload).get(
                "extended", 0
            )
        )

    def workers(self) -> List[Dict[str, Any]]:
        """The broker's fleet view (``GET /workers``)."""
        return self.request("GET", "/workers").get("workers", [])

    def metrics_text(self) -> str:
        """The broker's Prometheus exposition (``GET /metrics``), raw."""
        body = self.request_bytes("GET", "/metrics")
        return (body or b"").decode("utf-8")

    def fetch_result_bytes(self, key: str) -> Optional[bytes]:
        return self.request_bytes("GET", f"/cache/{key}", allow_404=True)

    def cache_stats(self) -> Dict[str, Any]:
        return self.request("GET", "/cache/stats")


class ServiceRunner:
    """Runner-shaped adapter that executes job graphs on a remote broker.

    Args:
        url: broker base URL (``http://host:port``).
        events: local event log; the broker's per-sweep stream is
            mirrored into it (see :meth:`EventLog.replay`).
        poll: seconds between status polls while a sweep runs.
        timeout: overall ceiling on one ``run()`` call, ``None`` = wait
            forever.
        client: injectable :class:`ServiceClient` (tests).
    """

    def __init__(
        self,
        url: str,
        events: Optional[EventLog] = None,
        poll: float = 0.2,
        timeout: Optional[float] = None,
        client: Optional[ServiceClient] = None,
    ):
        self.client = client or ServiceClient(url)
        self.events = events if events is not None else EventLog()
        self.poll = poll
        self.timeout = timeout
        self.log = get_logger("repro.client")
        self._results: Dict[str, Any] = {}

    # -- Runner protocol -------------------------------------------------------

    def run(self, jobs: Iterable[Job]) -> Dict[str, Any]:
        """Submit, await, and fetch back ``jobs`` (plus their closure)."""
        graph = JobGraph(jobs)
        t0 = time.monotonic()
        summary = self.client.submit(graph.jobs)
        sweep_id = summary["sweep_id"]
        with log_context(sweep_id=sweep_id):
            self.log.info(
                "sweep submitted",
                total=summary["total"],
                new=summary["new"],
                deduped=summary["deduped"],
            )
            self.events.emit(
                "run_start",
                total_jobs=summary["total"],
                jobs=0,
                sweep=sweep_id,
                deduped=summary["deduped"],
            )
            status = self._await(sweep_id)
            self._mirror_events(sweep_id)
            try:
                if not status.get("ok"):
                    failures = status.get("failed", [])
                    names = (
                        ", ".join(f["job"] for f in failures) or "unknown jobs"
                    )
                    self.log.error(
                        "sweep failed", failures=len(failures), jobs=names
                    )
                    raise ServiceError(
                        f"sweep {sweep_id} finished with "
                        f"{len(failures)} failed job(s): {names}"
                    )
                out: Dict[str, Any] = {}
                for job in graph.jobs:
                    out[job.key()] = self._fetch(job)
                self.log.info(
                    "sweep finished",
                    seconds=round(time.monotonic() - t0, 6),
                    states=status.get("states"),
                )
                return {job.key(): out[job.key()] for job in graph.jobs}
            finally:
                self.events.emit(
                    "run_finish",
                    wall_time=round(time.monotonic() - t0, 6),
                    sweep=sweep_id,
                    **self.events.summary(),
                )

    def run_job(self, job: Job) -> Any:
        key = job.key()
        if key in self._results:
            return self._results[key]
        # Fast path: the result may already sit in the shared cache from
        # an earlier sweep — no need to submit a one-job sweep for it.
        payload = self.client.fetch_result_bytes(key)
        if payload is not None:
            try:
                self._results[key] = CacheBackend.decode(payload)
                return self._results[key]
            except Exception:  # noqa: BLE001 - treat like a cache miss
                pass
        return self.run([job])[key]

    def result(self, job: Job) -> Any:
        return self._results[job.key()]

    def close(self) -> None:
        """Nothing to tear down — sweeps and cache live on the broker."""

    def __enter__(self) -> "ServiceRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _await(self, sweep_id: str) -> Dict[str, Any]:
        deadline = (
            time.monotonic() + self.timeout if self.timeout is not None else None
        )
        while True:
            status = self.client.status(sweep_id)
            if status.get("done"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"sweep {sweep_id} still running after {self.timeout}s: "
                    f"{status.get('states')}"
                )
            time.sleep(self.poll)

    def _mirror_events(self, sweep_id: str) -> None:
        for record in self.client.events(sweep_id):
            record.pop("seq", None)
            self.events.replay(record)

    def _fetch(self, job: Job) -> Any:
        key = job.key()
        if key not in self._results:
            payload = self.client.fetch_result_bytes(key)
            if payload is None:
                raise ServiceError(
                    f"result for {job.job_id} ({key[:12]}…) missing from the "
                    "broker cache — was it evicted mid-sweep?"
                )
            self._results[key] = CacheBackend.decode(payload)
        return self._results[key]


def worker_id() -> str:
    """A reasonably-unique worker identity (host + random suffix)."""
    import socket

    return f"{socket.gethostname()}-{uuid.uuid4().hex[:6]}"
