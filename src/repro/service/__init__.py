"""Shardable sweep service: broker, workers, and pluggable shared caches.

``repro.runner`` executes a content-hash-keyed job graph on one host;
this package lifts the same graph behind a job-submission API so a
many-point ablation sweep (or many concurrent users) fans out across
hosts while hitting one deduplicated result cache:

``backends``
    :class:`SQLiteCache` / :class:`HTTPCache` — shared implementations
    of :class:`repro.runner.cache.CacheBackend` — plus the
    :func:`make_cache` spec-string factory behind ``--cache-backend`` /
    ``$REPRO_CACHE_URL``.
``wire``
    Job graphs as JSON payloads, with content-hash verification against
    CODE_VERSION skew.
``queue``
    The broker's durable SQLite state: deduplicating job queue, leases
    with expiry/requeue, per-sweep event streams.
``broker``
    The stdlib-HTTP front end (``repro-serve``): submit/poll/stream
    sweeps, lease/complete/heartbeat for workers, and an object-store
    API over the shared cache.
``worker``
    ``repro-worker``: leases jobs and executes them through the
    ordinary :class:`repro.runner.Runner` against the shared cache.
``client``
    :class:`ServiceClient` (raw API) and :class:`ServiceRunner`, the
    Runner-shaped adapter behind ``repro-eval --service URL`` —
    byte-identical outputs to local execution.
``top``
    ``repro-top``: a live fleet dashboard polling the broker's
    ``/metrics``, ``/workers`` and sweep endpoints (``--once --json``
    for scripts/CI).

See ``docs/SERVICE.md`` for deployment and the API reference, and
``docs/OBSERVABILITY.md`` for the telemetry the service exports.
"""

from repro.service.backends import HTTPCache, SQLiteCache, make_cache
from repro.service.broker import Broker
from repro.service.client import ServiceClient, ServiceError, ServiceRunner, worker_id
from repro.service.queue import SweepQueue
from repro.service.wire import (
    WIRE_VERSION,
    WireError,
    pack_graph,
    pack_job,
    unpack_graph,
    unpack_job,
)
from repro.service.worker import Worker

__all__ = [
    "Broker",
    "HTTPCache",
    "SQLiteCache",
    "ServiceClient",
    "ServiceError",
    "ServiceRunner",
    "SweepQueue",
    "WIRE_VERSION",
    "WireError",
    "Worker",
    "make_cache",
    "pack_graph",
    "pack_job",
    "unpack_graph",
    "unpack_job",
    "worker_id",
]
