"""Wire format: job graphs as JSON-safe payloads.

A sweep submission carries the *full dependency closure* of its jobs
(the client materialises it through :class:`repro.runner.graph.JobGraph`
before packing), each job as::

    {"key": <content hash>, "job_id": <human id>, "stage": <stage>,
     "deps": [<dep keys>], "blob": <base64 pickle of the Job>,
     "machines": {<fingerprint>: <canonical MachineSpec JSON>}}

The broker schedules from the plain fields alone — key, stage, deps —
and never unpickles the blob, so a broker keeps working across client
code versions.  Workers *do* unpickle, and :func:`unpack_job` recomputes
``Job.key()`` after unpickling: the key folds in
:data:`repro.runner.jobs.CODE_VERSION`, so a worker running different
code than the submitting client gets a loud :class:`WireError` instead
of silently caching results under a key that lies about what produced
them.

Machines never travel as pickled ``MachineDescription`` objects (wire
v2).  :func:`pack_job` strips every machine out of the blob, replacing
it with a fingerprint placeholder, and ships the canonical declarative
:class:`repro.machine.MachineSpec` JSON in the side-table ``machines``
field.  :func:`unpack_job` re-parses that JSON through the spec layer —
which *validates* the configuration — re-fingerprints it, and rejects
any spec whose recomputed fingerprint disagrees with the placeholder.
A tampered or corrupted machine config therefore fails loudly at decode
time instead of silently simulating the wrong machine (the trust gap
``docs/SERVICE.md`` flagged for wire v1).

Pickle remains the codec for the rest of the spec (speculation and
pipeline configs) for the same reason the result cache uses it: workers
share the client's codebase.  The broker is a trusted, same-team
service — not an internet-facing one; see ``docs/SERVICE.md``.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
from typing import Any, Dict, List, Sequence

from repro.machine.description import MachineDescription
from repro.machine.spec import MachineSpec
from repro.runner.jobs import CODE_VERSION, Job, JobSpec

#: Bump when the payload shape (not the job semantics) changes.
#: v2: machines travel as canonical spec JSON, not inside the pickle.
WIRE_VERSION = 2


class WireError(ValueError):
    """A payload that cannot be (safely) turned back into jobs."""


@dataclasses.dataclass(frozen=True)
class _MachineRef:
    """Placeholder standing in for a machine inside the pickled blob.

    Only the fingerprint travels; the spec JSON rides in the payload's
    ``machines`` side table, and :func:`unpack_job` swaps the rebuilt
    description back in.
    """

    fingerprint: str


def _strip_machine(
    spec: JobSpec, machines: Dict[str, Dict[str, Any]]
) -> JobSpec:
    if spec.machine is None:
        return spec
    machine_spec = MachineSpec.from_description(spec.machine)
    fingerprint = machine_spec.fingerprint()
    machines.setdefault(fingerprint, machine_spec.canonical())
    return dataclasses.replace(spec, machine=_MachineRef(fingerprint))


def _restore_machine(
    spec: JobSpec, built: Dict[str, MachineDescription]
) -> JobSpec:
    ref = spec.machine
    if ref is None:
        return spec
    if not isinstance(ref, _MachineRef):
        raise WireError(
            f"job {spec.job_id!r}: blob carries a pickled "
            f"{type(ref).__name__} machine; wire v{WIRE_VERSION} ships "
            "machines as canonical spec JSON"
        )
    try:
        machine = built[ref.fingerprint]
    except KeyError:
        raise WireError(
            f"machine {ref.fingerprint[:12]}… referenced by a job but "
            "missing from the payload's machines table"
        ) from None
    return dataclasses.replace(spec, machine=machine)


def _build_machines(
    table: Dict[str, Any], job_id: str
) -> Dict[str, MachineDescription]:
    """Validate + build every spec in a packed job's machine table.

    Each entry re-parses through :meth:`MachineSpec.from_canonical`
    (which validates) and must re-fingerprint to its own table key.
    """
    built: Dict[str, MachineDescription] = {}
    for fingerprint, canonical in dict(table).items():
        try:
            spec = MachineSpec.from_canonical(canonical)
        except (ValueError, TypeError) as exc:
            raise WireError(
                f"job {job_id!r}: invalid machine spec on the wire: {exc}"
            ) from exc
        recomputed = spec.fingerprint()
        if recomputed != fingerprint:
            raise WireError(
                f"job {job_id!r}: machine spec fingerprint mismatch "
                f"(payload {str(fingerprint)[:12]}…, recomputed "
                f"{recomputed[:12]}…) — tampered or corrupted machine "
                "config"
            )
        built[fingerprint] = spec.build()
    return built


def pack_job(job: Job) -> Dict[str, Any]:
    machines: Dict[str, Dict[str, Any]] = {}
    stripped = Job(
        spec=_strip_machine(job.spec, machines),
        deps=tuple(_strip_machine(dep, machines) for dep in job.deps),
    )
    return {
        "key": job.key(),
        "job_id": job.job_id,
        "stage": job.spec.stage,
        "deps": [dep.key() for dep in job.deps],
        "blob": base64.b64encode(
            pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
        "machines": machines,
    }


def unpack_job(payload: Dict[str, Any]) -> Job:
    """Decode one packed job, verifying machine specs and content hash.

    Machines are rebuilt from the payload's canonical spec JSON (never
    from the pickle), then the recomputed ``Job.key()`` must equal the
    packed one — a mismatch means the sender and this process disagree
    on ``CODE_VERSION`` or on the spec canonicalisation, and results
    would be cached under wrong addresses.
    """
    try:
        job = pickle.loads(base64.b64decode(payload["blob"]))
    except Exception as exc:  # noqa: BLE001 - any decode failure is fatal here
        raise WireError(f"cannot decode job blob: {exc!r}") from exc
    if not isinstance(job, Job):
        raise WireError(f"decoded object is {type(job).__name__}, not Job")
    built = _build_machines(
        payload.get("machines") or {}, str(payload.get("job_id"))
    )
    job = Job(
        spec=_restore_machine(job.spec, built),
        deps=tuple(_restore_machine(dep, built) for dep in job.deps),
    )
    if job.key() != payload.get("key"):
        raise WireError(
            f"job {payload.get('job_id')!r}: key mismatch after decode "
            f"(sender {str(payload.get('key'))[:12]}…, "
            f"local {job.key()[:12]}…) — CODE_VERSION skew between "
            "client and worker?"
        )
    return job


def pack_graph(jobs: Sequence[Job]) -> Dict[str, Any]:
    """A submission payload for the broker (jobs must be a full closure)."""
    return {
        "wire_version": WIRE_VERSION,
        "code_version": CODE_VERSION,
        "jobs": [pack_job(job) for job in jobs],
    }


def unpack_graph(payload: Dict[str, Any]) -> List[Job]:
    check_wire_version(payload)
    return [unpack_job(entry) for entry in payload.get("jobs", [])]


def check_wire_version(payload: Dict[str, Any]) -> None:
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: payload v{version}, this end v{WIRE_VERSION}"
        )
