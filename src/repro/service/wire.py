"""Wire format: job graphs as JSON-safe payloads.

A sweep submission carries the *full dependency closure* of its jobs
(the client materialises it through :class:`repro.runner.graph.JobGraph`
before packing), each job as::

    {"key": <content hash>, "job_id": <human id>, "stage": <stage>,
     "deps": [<dep keys>], "blob": <base64 pickle of the Job>}

The broker schedules from the plain fields alone — key, stage, deps —
and never unpickles the blob, so a broker keeps working across client
code versions.  Workers *do* unpickle, and :func:`unpack_job` recomputes
``Job.key()`` after unpickling: the key folds in
:data:`repro.runner.jobs.CODE_VERSION`, so a worker running different
code than the submitting client gets a loud :class:`WireError` instead
of silently caching results under a key that lies about what produced
them.

Pickle is the payload codec for the same reason the result cache uses
it: specs carry real dataclasses (machine descriptions, speculation and
pipeline configs) and workers share the client's codebase.  The broker
is a trusted, same-team service — not an internet-facing one; see
``docs/SERVICE.md``.
"""

from __future__ import annotations

import base64
import pickle
from typing import Any, Dict, List, Sequence

from repro.runner.jobs import CODE_VERSION, Job

#: Bump when the payload shape (not the job semantics) changes.
WIRE_VERSION = 1


class WireError(ValueError):
    """A payload that cannot be (safely) turned back into jobs."""


def pack_job(job: Job) -> Dict[str, Any]:
    return {
        "key": job.key(),
        "job_id": job.job_id,
        "stage": job.spec.stage,
        "deps": [dep.key() for dep in job.deps],
        "blob": base64.b64encode(
            pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii"),
    }


def unpack_job(payload: Dict[str, Any]) -> Job:
    """Decode one packed job, verifying its content hash.

    The recomputed key must equal the packed one — a mismatch means the
    sender and this process disagree on ``CODE_VERSION`` or on the spec
    canonicalisation, and results would be cached under wrong addresses.
    """
    try:
        job = pickle.loads(base64.b64decode(payload["blob"]))
    except Exception as exc:  # noqa: BLE001 - any decode failure is fatal here
        raise WireError(f"cannot decode job blob: {exc!r}") from exc
    if not isinstance(job, Job):
        raise WireError(f"decoded object is {type(job).__name__}, not Job")
    if job.key() != payload.get("key"):
        raise WireError(
            f"job {payload.get('job_id')!r}: key mismatch after decode "
            f"(sender {str(payload.get('key'))[:12]}…, "
            f"local {job.key()[:12]}…) — CODE_VERSION skew between "
            "client and worker?"
        )
    return job


def pack_graph(jobs: Sequence[Job]) -> Dict[str, Any]:
    """A submission payload for the broker (jobs must be a full closure)."""
    return {
        "wire_version": WIRE_VERSION,
        "code_version": CODE_VERSION,
        "jobs": [pack_job(job) for job in jobs],
    }


def unpack_graph(payload: Dict[str, Any]) -> List[Job]:
    check_wire_version(payload)
    return [unpack_job(entry) for entry in payload.get("jobs", [])]


def check_wire_version(payload: Dict[str, Any]) -> None:
    version = payload.get("wire_version")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: payload v{version}, this end v{WIRE_VERSION}"
        )
