"""The sweep worker: lease, execute through the local Runner, report.

``repro-worker`` is the long-running process you point at a broker, one
or many per host::

    repro-worker --broker http://broker:8731 --cache-backend sqlite:/shared/cache.db
    repro-worker --broker http://broker:8731            # cache via the broker (HTTP)

Each leased job executes through the existing
:class:`repro.runner.Runner` against the shared cache backend, so a
worker is just a remote-controlled instance of the same machinery the
CLI runs locally: dependency results resolve as cache hits, outputs are
byte-identical, and a job whose dependencies were evicted simply
recomputes them.

Fault behaviour:

- a **broker restart** shows up as connection errors; the worker's
  reconnect loop retries with the shared jittered
  :class:`~repro.runner.retry.RetryPolicy` and resumes leasing (queue
  state is durable on the broker's disk);
- a **worker death** mid-job leaves a lease that expires on the broker
  and requeues for another worker — a background heartbeat thread keeps
  long jobs leased for as long as the worker is actually alive;
- a **job failure** reports ``ok=false``; the broker requeues it until
  the attempt budget runs out;
- a **dropped result write** (``HTTPCache`` swallows network faults into
  no-op PUTs) is caught before reporting: the worker verifies the result
  is actually in the shared store and reports a failure if not, so the
  broker never records ``done`` for a result nobody can fetch.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import List, Optional

from repro.runner.cache import CacheBackend
from repro.runner.events import EventLog
from repro.runner.executor import Runner
from repro.runner.retry import RECONNECT_POLICY, RetryPolicy
from repro.service.client import ServiceClient, ServiceError, worker_id
from repro.service.wire import WireError, unpack_job


class Worker:
    """Pulls jobs from one broker until stopped, idle-timed-out, or done.

    Args:
        client: broker connection.
        cache: shared result store (must be reachable by the client that
            will fetch results — usually the broker's own backend, or a
            ``HTTPCache`` pointed at the broker).
        name: worker identity for leases/heartbeats.
        poll: idle sleep between empty lease attempts.
        max_jobs: stop after this many executed jobs (tests/CI).
        max_idle: stop after this long without work, ``None`` = forever.
        retry: reconnect policy for lease-loop broker errors.
    """

    def __init__(
        self,
        client: ServiceClient,
        cache: CacheBackend,
        name: Optional[str] = None,
        poll: float = 0.2,
        max_jobs: Optional[int] = None,
        max_idle: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        heartbeat_fraction: float = 0.33,
    ):
        self.client = client
        self.cache = cache
        self.name = name or worker_id()
        self.poll = poll
        self.max_jobs = max_jobs
        self.max_idle = max_idle
        self.retry = retry or RECONNECT_POLICY
        self.heartbeat_fraction = heartbeat_fraction
        self.executed = 0
        self.stop_event = threading.Event()

    # -- main loop -------------------------------------------------------------

    def run(self) -> int:
        """Lease-execute-report until a stop condition; return jobs executed."""
        idle_since = time.monotonic()
        reconnects = 0
        while not self.stop_event.is_set():
            if self.max_jobs is not None and self.executed >= self.max_jobs:
                break
            try:
                leased = self.client.lease(self.name)
                reconnects = 0
            except ServiceError:
                # Broker down or restarting: back off (jittered so a
                # fleet does not stampede the moment it returns) and try
                # again; ServiceClient already burned its own quick
                # retries before raising.
                reconnects += 1
                self.retry.sleep(reconnects, token=self.name)
                continue
            if leased is None:
                if (
                    self.max_idle is not None
                    and time.monotonic() - idle_since > self.max_idle
                ):
                    break
                self.stop_event.wait(self.poll)
                continue
            idle_since = time.monotonic()
            self._execute(leased)
        return self.executed

    def stop(self) -> None:
        self.stop_event.set()

    # -- one job ---------------------------------------------------------------

    def _execute(self, leased: dict) -> None:
        key = str(leased.get("key", ""))
        try:
            job = unpack_job(leased)
        except WireError as exc:
            self._report(key, ok=False, error=f"wire error: {exc}")
            return
        stop_heartbeat = self._start_heartbeat(
            key, float(leased.get("lease_timeout", 60.0))
        )
        events = EventLog()
        t0 = time.monotonic()
        try:
            runner = Runner(jobs=1, cache=self.cache, events=events)
            runner.run_job(job)
        except Exception as exc:  # noqa: BLE001 - report any job failure upstream
            self._report(key, ok=False, error=repr(exc))
            return
        finally:
            stop_heartbeat.set()
        self.executed += 1
        # The runner's local event log says whether the leased job itself
        # was served from the shared cache (dependencies always are).
        cached = any(
            event.get("key") == key for event in events.of_type("cache_hit")
        )
        if not cached and self.cache.enabled and not self.cache.has(key):
            # The store path can drop writes silently (HTTPCache swallows
            # network faults into no-op PUTs).  Reporting ok here would
            # mark the job 'done' with nothing behind it and strand the
            # client's result fetch — report a failure so the attempt
            # budget retries the job instead.
            self._report(
                key,
                ok=False,
                error="result missing from shared cache after execution "
                "(store dropped?)",
            )
            return
        self._report(
            key,
            ok=True,
            cached=cached,
            wall_time=round(time.monotonic() - t0, 6),
        )

    def _report(
        self,
        key: str,
        ok: bool,
        cached: bool = False,
        wall_time: float = 0.0,
        error: Optional[str] = None,
    ) -> None:
        attempt = 0
        while True:
            try:
                self.client.complete(
                    self.name, key, ok=ok, cached=cached,
                    wall_time=wall_time, error=error,
                )
                return
            except ServiceError:
                # The result is already durably in the shared cache; only
                # the bookkeeping is missing.  Keep trying briefly — if
                # the broker stays down, the lease expires and another
                # worker re-leases the job straight into a cache hit.
                attempt += 1
                if attempt > 5:
                    return
                self.retry.sleep(attempt, token=f"{self.name}:{key}")

    def _start_heartbeat(self, key: str, lease_timeout: float) -> threading.Event:
        """Extend the lease periodically until the returned event is set."""
        stop = threading.Event()
        interval = max(0.05, lease_timeout * self.heartbeat_fraction)

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.client.heartbeat(self.name, [key])
                except ServiceError:
                    pass  # broker will requeue on expiry if we are dead too

        threading.Thread(
            target=beat, name=f"heartbeat-{key[:8]}", daemon=True
        ).start()
        return stop


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Execute sweep jobs leased from a repro-serve broker.",
    )
    parser.add_argument(
        "--broker",
        required=True,
        metavar="URL",
        help="broker base URL, e.g. http://127.0.0.1:8731",
    )
    parser.add_argument(
        "--cache-backend",
        metavar="SPEC",
        default=None,
        help=(
            "shared result store (disk:/path, sqlite:/path.db, http://...); "
            "default: the broker's own object store over HTTP"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for leases (default: hostname + random suffix)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds to sleep when the queue is empty (default 0.5)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after executing this many jobs",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many seconds without work",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="shorthand for --max-jobs 1",
    )
    args = parser.parse_args(argv)

    from repro.service.backends import HTTPCache, make_cache

    client = ServiceClient(args.broker)
    if args.cache_backend:
        cache: CacheBackend = make_cache(args.cache_backend)
    else:
        cache = HTTPCache(args.broker)
    worker = Worker(
        client,
        cache,
        name=args.worker_id,
        poll=args.poll,
        max_jobs=1 if args.once else args.max_jobs,
        max_idle=args.max_idle,
    )
    print(
        f"repro-worker {worker.name}: broker {args.broker}, "
        f"cache {cache.describe()}",
        file=sys.stderr,
    )
    try:
        executed = worker.run()
    except KeyboardInterrupt:
        executed = worker.executed
    print(f"repro-worker {worker.name}: executed {executed} job(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
