"""The sweep worker: lease, execute through the local Runner, report.

``repro-worker`` is the long-running process you point at a broker, one
or many per host::

    repro-worker --broker http://broker:8731 --cache-backend sqlite:/shared/cache.db
    repro-worker --broker http://broker:8731            # cache via the broker (HTTP)

Each leased job executes through the existing
:class:`repro.runner.Runner` against the shared cache backend, so a
worker is just a remote-controlled instance of the same machinery the
CLI runs locally: dependency results resolve as cache hits, outputs are
byte-identical, and a job whose dependencies were evicted simply
recomputes them.

Fault behaviour:

- a **broker restart** shows up as connection errors; the worker's
  reconnect loop retries with the shared jittered
  :class:`~repro.runner.retry.RetryPolicy` and resumes leasing (queue
  state is durable on the broker's disk);
- a **worker death** mid-job leaves a lease that expires on the broker
  and requeues for another worker — a background heartbeat thread keeps
  long jobs leased for as long as the worker is actually alive;
- a **job failure** reports ``ok=false``; the broker requeues it until
  the attempt budget runs out;
- a **dropped result write** (``HTTPCache`` swallows network faults into
  no-op PUTs) is caught before reporting: the worker verifies the result
  is actually in the shared store and reports a failure if not, so the
  broker never records ``done`` for a result nobody can fetch;
- **persistent heartbeat failures** (broker unreachable for
  ``max_heartbeat_failures`` consecutive beats) stop the worker with
  :attr:`Worker.heartbeat_exhausted` set, and ``repro-worker`` exits
  nonzero — a supervisor restart beats silently holding dead leases.

Telemetry: every worker owns a
:class:`~repro.obs.metrics.MetricsRegistry` whose series carry a
``worker=<id>`` label, and pushes its snapshot (plus cache byte/hit
counters and liveness fields) to the broker inside each heartbeat — both
the per-job lease extensions and a low-frequency *status* heartbeat that
runs even while idle, so ``GET /workers`` and ``GET /metrics`` on the
broker see the whole fleet.  Progress goes to stderr as structured JSON
(:mod:`repro.obs.logging`) correlated by ``worker_id``/``job_key``.
"""

from __future__ import annotations

import argparse
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.logging import bind_context, get_logger, log_context
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.runner.cache import CacheBackend
from repro.runner.events import EventLog
from repro.runner.executor import Runner
from repro.runner.retry import RECONNECT_POLICY, RetryPolicy
from repro.service.client import ServiceClient, ServiceError, worker_id
from repro.service.wire import WireError, unpack_job


class Worker:
    """Pulls jobs from one broker until stopped, idle-timed-out, or done.

    Args:
        client: broker connection.
        cache: shared result store (must be reachable by the client that
            will fetch results — usually the broker's own backend, or a
            ``HTTPCache`` pointed at the broker).
        name: worker identity for leases/heartbeats.
        poll: idle sleep between empty lease attempts.
        max_jobs: stop after this many executed jobs (tests/CI).
        max_idle: stop after this long without work, ``None`` = forever.
        retry: reconnect policy for lease-loop broker errors.
        max_heartbeat_failures: consecutive heartbeat errors before the
            worker declares the broker unreachable and stops
            (:attr:`heartbeat_exhausted` set; ``repro-worker`` exits 1).
        status_interval: seconds between idle *status* heartbeats that
            push telemetry even when no job is leased; ``0`` disables.
        metrics: telemetry registry; defaults to a fresh enabled one.
    """

    def __init__(
        self,
        client: ServiceClient,
        cache: CacheBackend,
        name: Optional[str] = None,
        poll: float = 0.2,
        max_jobs: Optional[int] = None,
        max_idle: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        heartbeat_fraction: float = 0.33,
        max_heartbeat_failures: int = 10,
        status_interval: float = 2.0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.client = client
        self.cache = cache
        self.name = name or worker_id()
        self.poll = poll
        self.max_jobs = max_jobs
        self.max_idle = max_idle
        self.retry = retry or RECONNECT_POLICY
        self.heartbeat_fraction = heartbeat_fraction
        self.max_heartbeat_failures = max_heartbeat_failures
        self.status_interval = status_interval
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.log = get_logger("repro.worker", worker_id=self.name)
        self.executed = 0
        self.failed = 0
        self.started = time.time()
        self.stop_event = threading.Event()
        #: Set when consecutive heartbeat failures hit the budget; the
        #: CLI turns this into a nonzero exit so supervisors restart us.
        self.heartbeat_exhausted = False
        self._current_key: Optional[str] = None
        self._hb_failures = 0
        self._hb_lock = threading.Lock()

    # -- telemetry -------------------------------------------------------------

    def _label(self, extra: Optional[str] = None) -> str:
        """Label string carrying this worker's identity (+ optional pairs)."""
        base = f"worker={self.name}"
        return f"{extra},{base}" if extra else base

    def stats(self) -> Dict[str, Any]:
        """The telemetry payload piggybacked on every heartbeat."""
        snapshot = self.metrics.snapshot()
        counters = dict(snapshot.counters)
        for field, value in self.cache.telemetry().items():
            counters[
                f"worker.cache.{field}"
                f"{{backend={self.cache.name},worker={self.name}}}"
            ] = value
        merged = MetricsSnapshot(counters, snapshot.gauges, snapshot.histograms)
        return {
            "executed": self.executed,
            "failed": self.failed,
            "current": self._current_key,
            "started": self.started,
            "metrics": merged.as_dict(),
        }

    def _heartbeat_once(self, keys: List[str]) -> None:
        """One beat: push stats, track consecutive failures, maybe stop."""
        try:
            self.client.heartbeat(self.name, keys, stats=self.stats())
        except ServiceError as exc:
            self.metrics.inc("service.heartbeat_errors", label=self._label())
            with self._hb_lock:
                self._hb_failures += 1
                failures = self._hb_failures
            self.log.warning(
                "heartbeat failed",
                error=str(exc),
                consecutive=failures,
                budget=self.max_heartbeat_failures,
            )
            if failures >= self.max_heartbeat_failures:
                self.log.error(
                    "heartbeat budget exhausted; stopping",
                    consecutive=failures,
                )
                self.heartbeat_exhausted = True
                self.stop_event.set()
        else:
            with self._hb_lock:
                self._hb_failures = 0

    def _start_status_heartbeat(self) -> threading.Event:
        """Low-frequency liveness/telemetry beat, running even while idle."""
        stop = threading.Event()
        if self.status_interval <= 0:
            return stop

        def beat() -> None:
            while not stop.wait(self.status_interval):
                if self.stop_event.is_set():
                    return
                held = [self._current_key] if self._current_key else []
                self._heartbeat_once(held)

        threading.Thread(
            target=beat, name=f"status-{self.name}", daemon=True
        ).start()
        return stop

    # -- main loop -------------------------------------------------------------

    def run(self) -> int:
        """Lease-execute-report until a stop condition; return jobs executed."""
        bind_context(worker_id=self.name)
        idle_since = time.monotonic()
        reconnects = 0
        status_stop = self._start_status_heartbeat()
        try:
            while not self.stop_event.is_set():
                if self.max_jobs is not None and self.executed >= self.max_jobs:
                    break
                try:
                    leased = self.client.lease(self.name)
                    reconnects = 0
                except ServiceError:
                    # Broker down or restarting: back off (jittered so a
                    # fleet does not stampede the moment it returns) and try
                    # again; ServiceClient already burned its own quick
                    # retries before raising.
                    reconnects += 1
                    self.metrics.inc(
                        "worker.lease_errors", label=self._label()
                    )
                    self.retry.sleep(reconnects, token=self.name)
                    continue
                if leased is None:
                    if (
                        self.max_idle is not None
                        and time.monotonic() - idle_since > self.max_idle
                    ):
                        break
                    self.stop_event.wait(self.poll)
                    continue
                idle_since = time.monotonic()
                self.metrics.inc("worker.leases", label=self._label())
                self._execute(leased)
        finally:
            status_stop.set()
        return self.executed

    def stop(self) -> None:
        self.stop_event.set()

    # -- one job ---------------------------------------------------------------

    def _execute(self, leased: dict) -> None:
        key = str(leased.get("key", ""))
        with log_context(job_key=key):
            self._execute_inner(leased, key)

    def _execute_inner(self, leased: dict, key: str) -> None:
        try:
            job = unpack_job(leased)
        except WireError as exc:
            self._report(key, ok=False, error=f"wire error: {exc}")
            return
        stage = getattr(getattr(job, "spec", None), "stage", "unknown")
        self._current_key = key
        self.log.info("job leased", stage=stage, attempt=leased.get("attempts"))
        stop_heartbeat = self._start_heartbeat(
            key, float(leased.get("lease_timeout", 60.0))
        )
        events = EventLog()
        t0 = time.monotonic()
        try:
            runner = Runner(jobs=1, cache=self.cache, events=events)
            result = runner.run_job(job)
        except Exception as exc:  # noqa: BLE001 - report any job failure upstream
            self.failed += 1
            self.metrics.inc("worker.jobs_failed", label=self._label())
            self.log.warning("job failed", stage=stage, error=repr(exc))
            self._report(key, ok=False, error=repr(exc))
            return
        finally:
            stop_heartbeat.set()
            self._current_key = None
        elapsed = time.monotonic() - t0
        self.executed += 1
        self.metrics.inc("worker.jobs_done", label=self._label())
        # Simulation jobs run with cycle accounting carry per-cause CPI
        # stacks; fold them into worker telemetry so the broker's
        # ``/metrics`` exposes fleet-wide ``repro_sim_cycles_total``
        # broken down by cause and machine model.
        stacks = getattr(result, "cycle_stacks", None)
        if stacks:
            for model, stack in stacks.items():
                for cause, cycles in stack.items():
                    self.metrics.inc(
                        "sim.cycles",
                        cycles,
                        label=self._label(f"cause={cause},model={model}"),
                    )
        self.metrics.observe(
            "worker.job_seconds",
            elapsed,
            label=self._label(f"stage={stage}"),
        )
        # The runner's local event log says whether the leased job itself
        # was served from the shared cache (dependencies always are).
        cached = any(
            event.get("key") == key for event in events.of_type("cache_hit")
        )
        if not cached and self.cache.enabled and not self.cache.has(key):
            # The store path can drop writes silently (HTTPCache swallows
            # network faults into no-op PUTs).  Reporting ok here would
            # mark the job 'done' with nothing behind it and strand the
            # client's result fetch — report a failure so the attempt
            # budget retries the job instead.
            self.metrics.inc("worker.store_verify_failures", label=self._label())
            self.log.warning("result missing from shared cache", stage=stage)
            self._report(
                key,
                ok=False,
                error="result missing from shared cache after execution "
                "(store dropped?)",
            )
            return
        self.log.info(
            "job finished",
            stage=stage,
            cached=cached,
            seconds=round(elapsed, 6),
        )
        self._report(key, ok=True, cached=cached, wall_time=round(elapsed, 6))

    def _report(
        self,
        key: str,
        ok: bool,
        cached: bool = False,
        wall_time: float = 0.0,
        error: Optional[str] = None,
    ) -> None:
        attempt = 0
        while True:
            try:
                self.client.complete(
                    self.name, key, ok=ok, cached=cached,
                    wall_time=wall_time, error=error,
                )
                return
            except ServiceError:
                # The result is already durably in the shared cache; only
                # the bookkeeping is missing.  Keep trying briefly — if
                # the broker stays down, the lease expires and another
                # worker re-leases the job straight into a cache hit.
                attempt += 1
                self.metrics.inc("worker.report_retries", label=self._label())
                if attempt > 5:
                    self.log.error(
                        "giving up reporting completion", ok=ok, attempts=attempt
                    )
                    return
                self.retry.sleep(attempt, token=f"{self.name}:{key}")

    def _start_heartbeat(self, key: str, lease_timeout: float) -> threading.Event:
        """Extend the lease periodically until the returned event is set."""
        stop = threading.Event()
        interval = max(0.05, lease_timeout * self.heartbeat_fraction)

        def beat() -> None:
            while not stop.wait(interval):
                if self.stop_event.is_set():
                    return
                self._heartbeat_once([key])

        threading.Thread(
            target=beat, name=f"heartbeat-{key[:8]}", daemon=True
        ).start()
        return stop


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Execute sweep jobs leased from a repro-serve broker.",
    )
    parser.add_argument(
        "--broker",
        required=True,
        metavar="URL",
        help="broker base URL, e.g. http://127.0.0.1:8731",
    )
    parser.add_argument(
        "--cache-backend",
        metavar="SPEC",
        default=None,
        help=(
            "shared result store (disk:/path, sqlite:/path.db, http://...); "
            "default: the broker's own object store over HTTP"
        ),
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable identity for leases (default: hostname + random suffix)",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds to sleep when the queue is empty (default 0.5)",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="exit after executing this many jobs",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many seconds without work",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="shorthand for --max-jobs 1",
    )
    parser.add_argument(
        "--max-heartbeat-failures",
        type=int,
        default=10,
        help=(
            "exit nonzero after this many consecutive heartbeat failures "
            "(default 10)"
        ),
    )
    parser.add_argument(
        "--status-interval",
        type=float,
        default=2.0,
        help="seconds between idle telemetry heartbeats (0 disables)",
    )
    args = parser.parse_args(argv)

    from repro.service.backends import HTTPCache, make_cache

    client = ServiceClient(args.broker)
    if args.cache_backend:
        cache: CacheBackend = make_cache(args.cache_backend)
    else:
        cache = HTTPCache(args.broker)
    worker = Worker(
        client,
        cache,
        name=args.worker_id,
        poll=args.poll,
        max_jobs=1 if args.once else args.max_jobs,
        max_idle=args.max_idle,
        max_heartbeat_failures=args.max_heartbeat_failures,
        status_interval=args.status_interval,
    )
    worker.log.info(
        "worker starting", broker=args.broker, cache=cache.describe()
    )
    try:
        executed = worker.run()
    except KeyboardInterrupt:
        executed = worker.executed
    worker.log.info(
        "worker exiting",
        executed=executed,
        failed=worker.failed,
        heartbeat_exhausted=worker.heartbeat_exhausted,
    )
    return 1 if worker.heartbeat_exhausted else 0


if __name__ == "__main__":
    raise SystemExit(main())
