"""``repro-top``: a live terminal dashboard for a sweep broker.

Polls one broker's observability endpoints — ``GET /healthz``,
``GET /metrics``, ``GET /workers`` and (with ``--sweep``) the sweep's
status and event stream — and renders a fleet view in place::

    repro-top --broker http://127.0.0.1:8731
    repro-top --broker http://127.0.0.1:8731 --sweep 4c7a1b...
    repro-top --broker URL --sweep ID --once --json   # one machine-readable frame
    repro-top --broker URL --sweep ID --events-out sweep.jsonl
    repro-trace --sweep-events sweep.jsonl            # then: Perfetto timeline

``--once --json`` prints a single JSON document and exits — the shape CI
smoke tests and scripts consume.  ``--events-out`` dumps the sweep's raw
broker event records (wall-clock timestamps, worker identities) as
JSONL, the input ``repro-trace --sweep-events`` renders as a distributed
timeline.

The dashboard needs nothing beyond ANSI escapes: a cursor-home +
clear-to-end redraw per frame, no curses.  Rates are derived
client-side from successive scrapes of the broker's counters
(``leases/s``, ``completes/s``); latency quantiles come straight from
the summary series in the exposition.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.obs.prometheus import parse_exposition
from repro.service.client import ServiceClient, ServiceError

#: Counter families summed (over label sets) into the JSON snapshot and
#: the dashboard's rate lines.  Exposition names, post-sanitisation.
KEY_SERIES = (
    "repro_service_leases_total",
    "repro_service_completes_total",
    "repro_service_heartbeats_total",
    "repro_service_heartbeat_errors_total",
    "repro_service_requeues_total",
    "repro_service_dedup_hits_total",
    "repro_service_jobs_submitted_total",
    "repro_service_worker_cache_hits_total",
    "repro_worker_jobs_done_total",
    "repro_worker_jobs_failed_total",
    "repro_service_cache_hits_total",
    "repro_service_cache_misses_total",
    "repro_worker_cache_hits_total",
    "repro_worker_cache_misses_total",
    "repro_sim_cycles_total",
)

#: Family carrying per-cause CPI-stack cycles from workers that ran
#: simulation jobs with cycle accounting (labels: cause, model, worker).
CYCLES_FAMILY = "repro_sim_cycles_total"


def cause_totals(
    samples: Dict[str, float], family: str = CYCLES_FAMILY
) -> Dict[str, float]:
    """Per-``cause`` totals of a family, summed across workers/models."""
    totals: Dict[str, float] = {}
    for key, value in samples.items():
        if key.split("{", 1)[0] != family:
            continue
        cause = None
        if "{" in key:
            for pair in key[key.index("{") + 1 : key.rindex("}")].split(","):
                name, _, raw = pair.partition("=")
                if name.strip() == "cause":
                    cause = raw.strip().strip('"')
                    break
        if cause:
            totals[cause] = totals.get(cause, 0.0) + value
    return dict(sorted(totals.items()))


def series_total(samples: Dict[str, float], family: str) -> float:
    """Sum a family's value across every label set in a parsed scrape."""
    total = 0.0
    for key, value in samples.items():
        if key.split("{", 1)[0] == family:
            total += value
    return total


def quantile(
    samples: Dict[str, float], family: str, q: str
) -> Optional[float]:
    """Best-effort quantile for a summary family (any label set)."""
    needle = f'quantile="{q}"'
    for key, value in samples.items():
        if key.split("{", 1)[0] == family and needle in key:
            return value
    return None


def sweep_view(
    client: ServiceClient,
    sweep_id: str,
    events_out: Optional[str] = None,
) -> Dict[str, Any]:
    """Status + event-derived cache accounting for one sweep."""
    status = client.status(sweep_id)
    records = client.events(sweep_id)
    if events_out:
        with open(events_out, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, default=str) + "\n")
    hits = sum(1 for r in records if r.get("event") == "cache_hit")
    finishes = sum(1 for r in records if r.get("event") == "job_finish")
    states = status.get("states", {})
    total = int(status.get("total", 0))
    done = int(states.get("done", 0))
    return {
        "id": sweep_id,
        "total": total,
        "states": states,
        "done": bool(status.get("done")),
        "ok": bool(status.get("ok")),
        "failed": status.get("failed", []),
        "timestamps": status.get("timestamps", {}),
        "progress": round(done / total, 4) if total else None,
        "cache_hits": hits,
        "finishes": finishes,
        "cache_hit_ratio": round(hits / finishes, 4) if finishes else None,
        "events": len(records),
    }


def collect(
    client: ServiceClient,
    sweep_id: Optional[str] = None,
    events_out: Optional[str] = None,
) -> Dict[str, Any]:
    """One full dashboard frame as a JSON-ready dict."""
    samples = parse_exposition(client.metrics_text())
    frame: Dict[str, Any] = {
        "broker": client.url,
        "polled_at": round(time.time(), 3),
        "health": client.health(),
        "workers": client.workers(),
        "series": {
            family: series_total(samples, family) for family in KEY_SERIES
        },
        "cycles": cause_totals(samples),
        "latency": {
            "queue_wait_p50": quantile(
                samples, "repro_service_queue_wait_seconds", "0.5"
            ),
            "queue_wait_p95": quantile(
                samples, "repro_service_queue_wait_seconds", "0.95"
            ),
            "lease_to_complete_p50": quantile(
                samples, "repro_service_lease_to_complete_seconds", "0.5"
            ),
            "lease_to_complete_p95": quantile(
                samples, "repro_service_lease_to_complete_seconds", "0.95"
            ),
        },
    }
    if sweep_id:
        frame["sweep"] = sweep_view(client, sweep_id, events_out=events_out)
    return frame


# -- rendering -----------------------------------------------------------------


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value < 120:
        return f"{value:.2f}s"
    return f"{value / 60:.1f}m"


def render(frame: Dict[str, Any], rates: Dict[str, float]) -> str:
    """One dashboard frame as plain text (ANSI-free; caller clears)."""
    lines: List[str] = []
    health = frame.get("health", {})
    jobs = health.get("jobs", {})
    lines.append(
        f"repro-top — {frame['broker']}   "
        f"uptime {_fmt_seconds(health.get('uptime_seconds'))}   "
        f"workers {health.get('workers', 0)}   "
        f"sweeps {health.get('sweeps', 0)}   "
        f"ready {health.get('pending_ready', 0)}"
    )
    state_bits = "  ".join(
        f"{state} {jobs.get(state, 0)}"
        for state in ("pending", "leased", "done", "failed")
    )
    lines.append(f"queue: {state_bits}")
    sweep = frame.get("sweep")
    if sweep:
        total = sweep["total"] or 1
        done = sweep["states"].get("done", 0)
        lines.append(
            f"sweep {sweep['id'][:12]}: {_bar(done / total)} {done}/{sweep['total']}"
            + ("  OK" if sweep["ok"] else ("  DONE" if sweep["done"] else ""))
        )
        ratio = sweep.get("cache_hit_ratio")
        lines.append(
            f"  cache hits {sweep['cache_hits']}/{sweep['finishes']}"
            + (f" ({ratio:.0%})" if ratio is not None else "")
            + f"   failed {len(sweep.get('failed', []))}"
        )
    latency = frame.get("latency", {})
    lines.append(
        "rates: "
        f"{rates.get('leases', 0.0):.1f} leases/s  "
        f"{rates.get('completes', 0.0):.1f} completes/s   "
        f"queue-wait p50 {_fmt_seconds(latency.get('queue_wait_p50'))} "
        f"p95 {_fmt_seconds(latency.get('queue_wait_p95'))}   "
        f"exec p50 {_fmt_seconds(latency.get('lease_to_complete_p50'))} "
        f"p95 {_fmt_seconds(latency.get('lease_to_complete_p95'))}"
    )
    cycles = frame.get("cycles") or {}
    total_cycles = sum(cycles.values())
    if total_cycles > 0:
        top_causes = sorted(cycles.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        lines.append(
            "cycles: "
            + "  ".join(
                f"{cause} {value / total_cycles:.0%}"
                for cause, value in top_causes
            )
            + f"   ({total_cycles:.0f} attributed)"
        )
    workers = frame.get("workers", [])
    if workers:
        lines.append("")
        lines.append(f"{'WORKER':24s} {'AGE':>6s} {'DONE':>6s} {'FAIL':>6s}  CURRENT")
        for worker in workers:
            current = worker.get("current") or ""
            lines.append(
                f"{str(worker.get('worker', '?'))[:24]:24s} "
                f"{worker.get('last_heartbeat_age_seconds', 0):>5.1f}s "
                f"{worker.get('executed', 0):>6d} "
                f"{worker.get('failed', 0):>6d}  "
                f"{str(current)[:16]}"
            )
    return "\n".join(lines)


def _rates(
    prev: Optional[Dict[str, Any]], frame: Dict[str, Any]
) -> Dict[str, float]:
    """Per-second deltas of the headline counters between two frames."""
    if prev is None:
        return {}
    dt = frame["polled_at"] - prev["polled_at"]
    if dt <= 0:
        return {}
    series, prev_series = frame["series"], prev["series"]

    def rate(family: str) -> float:
        return max(
            0.0, (series.get(family, 0.0) - prev_series.get(family, 0.0)) / dt
        )

    return {
        "leases": rate("repro_service_leases_total"),
        "completes": rate("repro_service_completes_total"),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live fleet dashboard for a repro-serve sweep broker.",
    )
    parser.add_argument(
        "--broker", required=True, metavar="URL", help="broker base URL"
    )
    parser.add_argument(
        "--sweep",
        metavar="ID",
        default=None,
        help="also track one sweep's progress and cache accounting",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between polls (default 1.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="poll once, print one frame, exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit frames as JSON instead of the dashboard",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        default=None,
        help=(
            "with --sweep: dump the sweep's raw broker event records as "
            "JSONL (feed to repro-trace --sweep-events)"
        ),
    )
    args = parser.parse_args(argv)

    client = ServiceClient(args.broker)
    prev: Optional[Dict[str, Any]] = None
    try:
        while True:
            try:
                frame = collect(
                    client, sweep_id=args.sweep, events_out=args.events_out
                )
            except ServiceError as exc:
                print(f"repro-top: {exc}", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(frame, default=str, sort_keys=True))
            else:
                text = render(frame, _rates(prev, frame))
                if not args.once:
                    # Cursor home + clear-to-end: redraw in place.
                    sys.stdout.write("\x1b[H\x1b[J")
                print(text)
                sys.stdout.flush()
            if args.once:
                return 0
            prev = frame
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
