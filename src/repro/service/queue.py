"""The broker's durable state: a SQLite-backed, deduplicating job queue.

One WAL-mode SQLite file holds everything the broker knows — sweeps,
jobs, dependency edges, leases, and the per-sweep event stream — so a
broker restart loses nothing: leased jobs simply time out and requeue,
and workers reconnect to the same queue.

Deduplication is by job content hash, *across* sweeps: two concurrent
submissions of overlapping graphs insert each job once (``INSERT OR
IGNORE`` under an immediate transaction), and a job finishing notifies
every sweep that references it.  A job already ``done`` when a new sweep
arrives is reported to that sweep as a cache hit immediately — the queue
is the scheduling mirror of the content-addressed result cache.

Job lifecycle::

    pending ──lease──► leased ──complete(ok)──► done
       ▲                 │  │
       │   lease expiry  │  └─complete(fail, attempts left)──► pending
       └─(attempts left)─┘
                         └─complete(fail, budget exhausted)──► failed

A job that goes ``failed`` — by budget exhaustion on completion or on
lease expiry — transitively fails every pending job that depends on it
(``reason="dep_failed"``), so a mid-graph failure settles the whole
sweep instead of stranding dependents ``pending`` forever.  A later
resubmission of the same graph resets all of them to ``pending`` with a
fresh budget.

Completion reports are guarded by lease ownership: a worker whose lease
expired (and whose job was re-leased elsewhere) gets ``state="stale"``
back and cannot overwrite the outcome recorded by the current holder.

Results never live here — they go to the shared
:class:`repro.runner.cache.CacheBackend`; the queue records only states,
attempts and events.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry, NULL_METRICS

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id TEXT PRIMARY KEY,
    created REAL NOT NULL,
    total INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    key TEXT PRIMARY KEY,
    job_id TEXT NOT NULL,
    stage TEXT NOT NULL,
    blob TEXT NOT NULL,
    machines TEXT NOT NULL DEFAULT '{}',
    state TEXT NOT NULL DEFAULT 'pending',
    attempts INTEGER NOT NULL DEFAULT 0,
    worker TEXT,
    lease_expires REAL,
    cached INTEGER NOT NULL DEFAULT 0,
    wall_time REAL,
    error TEXT,
    created REAL NOT NULL,
    pending_since REAL,
    lease_started REAL,
    settled REAL
);
CREATE TABLE IF NOT EXISTS sweep_jobs (
    sweep_id TEXT NOT NULL,
    key TEXT NOT NULL,
    PRIMARY KEY (sweep_id, key)
);
CREATE TABLE IF NOT EXISTS deps (
    key TEXT NOT NULL,
    dep TEXT NOT NULL,
    PRIMARY KEY (key, dep)
);
CREATE TABLE IF NOT EXISTS events (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    sweep_id TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_jobs_state ON jobs (state);
CREATE INDEX IF NOT EXISTS idx_events_sweep ON events (sweep_id, seq);
"""

#: Job states a sweep counts as "settled".
TERMINAL_STATES = ("done", "failed")


class SweepQueue:
    """Durable sweep/job bookkeeping over one SQLite file."""

    def __init__(
        self,
        path: Union[str, Path],
        lease_timeout: float = 60.0,
        max_attempts: int = 3,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        self.path = Path(path).expanduser()
        self.lease_timeout = lease_timeout
        self.max_attempts = max(1, max_attempts)
        self.metrics = metrics
        self._local = threading.local()

    # -- connection management ----------------------------------------------

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            self._migrate(conn)
            self._local.conn = conn
        return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Add columns newer code expects to a database an older broker made.

        ``CREATE TABLE IF NOT EXISTS`` leaves a pre-telemetry ``jobs``
        table untouched, so the timestamp columns the telemetry layer
        reads (queue wait, lease duration, settle time) are added here;
        old rows read NULL, which every consumer treats as "unknown".
        """
        existing = {
            row[1] for row in conn.execute("PRAGMA table_info(jobs)")
        }
        for column in ("pending_since", "lease_started", "settled"):
            if column not in existing:
                conn.execute(f"ALTER TABLE jobs ADD COLUMN {column} REAL")
        if "machines" not in existing:
            # Wire v2: jobs carry their machine specs as canonical JSON
            # beside the opaque blob.  Pre-v2 rows read the empty table.
            conn.execute(
                "ALTER TABLE jobs ADD COLUMN machines TEXT NOT NULL DEFAULT '{}'"
            )

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One immediate (write-locking) transaction."""
        conn = self._conn()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- events ---------------------------------------------------------------

    def _emit(
        self, conn: sqlite3.Connection, sweep_ids: Sequence[str], event: str,
        **fields: Any,
    ) -> None:
        record = {"ts": round(time.time(), 6), "event": event, **fields}
        payload = json.dumps(record, default=str)
        conn.executemany(
            "INSERT INTO events (sweep_id, record) VALUES (?, ?)",
            [(sweep_id, payload) for sweep_id in sweep_ids],
        )

    def _sweeps_of(self, conn: sqlite3.Connection, key: str) -> List[str]:
        return [
            row[0]
            for row in conn.execute(
                "SELECT sweep_id FROM sweep_jobs WHERE key = ?", (key,)
            )
        ]

    def events_since(self, sweep_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """Event records for one sweep with ``seq > since`` (ascending)."""
        rows = self._conn().execute(
            "SELECT seq, record FROM events WHERE sweep_id = ? AND seq > ? "
            "ORDER BY seq",
            (sweep_id, since),
        ).fetchall()
        out = []
        for seq, record in rows:
            try:
                parsed = json.loads(record)
            except json.JSONDecodeError:
                continue
            parsed["seq"] = seq
            out.append(parsed)
        return out

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        packed_jobs: Sequence[Dict[str, Any]],
        result_exists: Optional[Callable[[str], bool]] = None,
    ) -> Dict[str, Any]:
        """Register a sweep over pre-packed jobs (full dependency closure).

        ``result_exists`` (the broker's cache probe) guards the dedup
        fast path: a job recorded ``done`` whose result has since been
        evicted from the shared cache is reset to ``pending`` instead of
        being reported as instantly complete.

        Returns ``{"sweep_id", "total", "new", "deduped", "done"}``.
        """
        sweep_id = uuid.uuid4().hex[:12]
        now = time.time()
        new = deduped = done = 0
        with self._txn() as conn:
            for entry in packed_jobs:
                key = entry["key"]
                row = conn.execute(
                    "SELECT state FROM jobs WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT OR IGNORE INTO jobs "
                        "(key, job_id, stage, blob, machines, state, created, "
                        "pending_since) VALUES (?, ?, ?, ?, ?, 'pending', ?, ?)",
                        (
                            key, entry["job_id"], entry["stage"],
                            entry["blob"],
                            json.dumps(entry.get("machines") or {}),
                            now, now,
                        ),
                    )
                    conn.executemany(
                        "INSERT OR IGNORE INTO deps (key, dep) VALUES (?, ?)",
                        [(key, dep) for dep in entry.get("deps", ())],
                    )
                    new += 1
                else:
                    state = row[0]
                    deduped += 1
                    if state == "failed" or (
                        state == "done"
                        and result_exists is not None
                        and not result_exists(key)
                    ):
                        # Fresh retry budget for resubmitted failures;
                        # evicted results must be recomputed.
                        conn.execute(
                            "UPDATE jobs SET state = 'pending', attempts = 0, "
                            "worker = NULL, error = NULL, pending_since = ?, "
                            "settled = NULL WHERE key = ?",
                            (now, key),
                        )
                    elif state == "done":
                        done += 1
                conn.execute(
                    "INSERT OR IGNORE INTO sweep_jobs (sweep_id, key) "
                    "VALUES (?, ?)",
                    (sweep_id, key),
                )
            conn.execute(
                "INSERT INTO sweeps (sweep_id, created, total) VALUES (?, ?, ?)",
                (sweep_id, now, len(packed_jobs)),
            )
            self._emit(
                conn, [sweep_id], "sweep_submitted",
                sweep=sweep_id, total=len(packed_jobs), new=new,
                deduped=deduped, already_done=done,
            )
            # Jobs that were settled before this sweep arrived are cache
            # hits from its point of view: mirror the runner's event pair.
            for entry in packed_jobs:
                row = conn.execute(
                    "SELECT state, stage FROM jobs WHERE key = ?",
                    (entry["key"],),
                ).fetchone()
                if row and row[0] == "done":
                    self._emit(
                        conn, [sweep_id], "cache_hit",
                        job=entry["job_id"], stage=entry["stage"],
                        key=entry["key"], source="queue",
                    )
                    self._emit(
                        conn, [sweep_id], "job_finish",
                        job=entry["job_id"], stage=entry["stage"],
                        key=entry["key"], cached=True, wall_time=0.0,
                        attempt=0,
                    )
        self.metrics.inc("service.sweeps_submitted")
        self.metrics.inc("service.jobs_submitted", len(packed_jobs))
        self.metrics.inc("service.jobs_new", new)
        self.metrics.inc("service.dedup_hits", deduped)
        self.metrics.inc("service.jobs_done_at_submit", done)
        return {
            "sweep_id": sweep_id,
            "total": len(packed_jobs),
            "new": new,
            "deduped": deduped,
            "done": done,
        }

    # -- worker protocol -------------------------------------------------------

    def _fail_dependents(
        self, conn: sqlite3.Connection, key: str, job_id: str
    ) -> None:
        """Transitively fail every pending job depending on ``key``.

        Without this, a failed dependency leaves its dependents
        ``pending`` forever — ``lease`` only hands out jobs whose deps
        are all ``done``, so the sweep never settles and a client
        polling ``sweep_status`` waits indefinitely.  Leased dependents
        are left alone: they are already running against cached dep
        results and will report their own outcome.
        """
        frontier = [(key, job_id)]
        while frontier:
            dep_key, dep_job_id = frontier.pop()
            rows = conn.execute(
                "SELECT j.key, j.job_id, j.stage FROM deps d "
                "JOIN jobs j ON j.key = d.key "
                "WHERE d.dep = ? AND j.state = 'pending'",
                (dep_key,),
            ).fetchall()
            for child_key, child_job_id, stage in rows:
                error = f"dependency failed: {dep_job_id} ({dep_key[:12]})"
                conn.execute(
                    "UPDATE jobs SET state = 'failed', worker = NULL, "
                    "error = ?, settled = ? WHERE key = ?",
                    (error, time.time(), child_key),
                )
                self.metrics.inc("service.dep_failures")
                self._emit(
                    conn, self._sweeps_of(conn, child_key), "job_failed",
                    job=child_job_id, stage=stage, key=child_key,
                    attempts=0, error=error, reason="dep_failed",
                )
                frontier.append((child_key, child_job_id))

    def _failed_dep_of(
        self, conn: sqlite3.Connection, key: str
    ) -> Optional[Tuple[str, str]]:
        """``(job_id, key)`` of a failed dependency of ``key``, or ``None``.

        Checked whenever a job transitions back to ``pending``: a
        dependency can fail *while* this job is leased, in which case
        the cascade in :meth:`_fail_dependents` ran too early to see it.
        """
        return conn.execute(
            "SELECT dj.job_id, dj.key FROM deps d "
            "JOIN jobs dj ON dj.key = d.dep "
            "WHERE d.key = ? AND dj.state = 'failed' LIMIT 1",
            (key,),
        ).fetchone()

    def _fail_blocked(
        self,
        conn: sqlite3.Connection,
        key: str,
        job_id: str,
        stage: str,
        dep: Tuple[str, str],
    ) -> None:
        """Fail ``key`` because dependency ``dep`` has already failed."""
        dep_job_id, dep_key = dep
        error = f"dependency failed: {dep_job_id} ({dep_key[:12]})"
        conn.execute(
            "UPDATE jobs SET state = 'failed', worker = NULL, error = ?, "
            "settled = ? WHERE key = ?",
            (error, time.time(), key),
        )
        self.metrics.inc("service.dep_failures")
        self._emit(
            conn, self._sweeps_of(conn, key), "job_failed",
            job=job_id, stage=stage, key=key, attempts=0, error=error,
            reason="dep_failed",
        )
        self._fail_dependents(conn, key, job_id)

    def requeue_expired(self) -> int:
        """Return timed-out leases to the pending pool.

        A lease that expires with no attempts left fails instead — a
        poison job that keeps killing its workers (OOM, segfault) must
        not be re-leased forever.
        """
        now = time.time()
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT key, job_id, stage, worker, attempts FROM jobs "
                "WHERE state = 'leased' AND lease_expires < ?",
                (now,),
            ).fetchall()
            for key, job_id, stage, worker, attempts in rows:
                if attempts >= self.max_attempts:
                    error = (
                        f"lease expired on attempt {attempts}; "
                        "retry budget exhausted"
                    )
                    conn.execute(
                        "UPDATE jobs SET state = 'failed', worker = NULL, "
                        "error = ?, settled = ? WHERE key = ?",
                        (error, now, key),
                    )
                    self.metrics.inc("service.lease_expiry_failures")
                    self._emit(
                        conn, self._sweeps_of(conn, key), "job_failed",
                        job=job_id, stage=stage, key=key, attempts=attempts,
                        error=error, worker=worker,
                    )
                    self._fail_dependents(conn, key, job_id)
                else:
                    dep = self._failed_dep_of(conn, key)
                    if dep is not None:
                        self._fail_blocked(conn, key, job_id, stage, dep)
                        continue
                    conn.execute(
                        "UPDATE jobs SET state = 'pending', worker = NULL, "
                        "pending_since = ? WHERE key = ?",
                        (now, key),
                    )
                    self.metrics.inc("service.requeues")
                    self._emit(
                        conn, self._sweeps_of(conn, key), "job_requeued",
                        job=job_id, stage=stage, key=key, worker=worker,
                        reason="lease expired",
                    )
        return len(rows)

    def lease(self, worker: str) -> Optional[Dict[str, Any]]:
        """Hand one ready job to ``worker``, or ``None`` if none is ready.

        Ready = ``pending`` with no dependency in a non-``done`` state.
        (A dependency key absent from the jobs table is treated as
        satisfied — the worker's runner resolves it from the shared
        cache, or recomputes it.)
        """
        self.requeue_expired()
        now = time.time()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT key, job_id, stage, blob, machines, attempts, "
                "pending_since, created FROM jobs j "
                "WHERE j.state = 'pending' AND NOT EXISTS ("
                "    SELECT 1 FROM deps d JOIN jobs dj ON dj.key = d.dep "
                "    WHERE d.key = j.key AND dj.state != 'done'"
                ") ORDER BY j.created LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            (
                key, job_id, stage, blob, machines,
                attempts, pending_since, created,
            ) = row
            conn.execute(
                "UPDATE jobs SET state = 'leased', worker = ?, "
                "lease_expires = ?, attempts = ?, lease_started = ? "
                "WHERE key = ?",
                (worker, now + self.lease_timeout, attempts + 1, now, key),
            )
            self.metrics.inc("service.leases")
            self.metrics.observe(
                "service.queue_wait_seconds",
                max(0.0, now - (pending_since or created)),
                label=stage,
            )
            self._emit(
                conn, self._sweeps_of(conn, key), "job_start",
                job=job_id, stage=stage, key=key, worker=worker,
                attempt=attempts + 1,
            )
        return {
            "key": key,
            "job_id": job_id,
            "stage": stage,
            "blob": blob,
            "machines": json.loads(machines or "{}"),
            "attempt": attempts + 1,
            "lease_timeout": self.lease_timeout,
        }

    def heartbeat(self, worker: str, keys: Sequence[str]) -> int:
        """Extend the leases ``worker`` still holds; return how many."""
        self.metrics.inc("service.heartbeats")
        if not keys:
            return 0
        now = time.time()
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires = ? "
                f"WHERE worker = ? AND state = 'leased' AND key IN "
                f"({','.join('?' * len(keys))})",
                (now + self.lease_timeout, worker, *keys),
            )
            return cursor.rowcount

    def complete(
        self,
        worker: str,
        key: str,
        ok: bool,
        cached: bool = False,
        wall_time: float = 0.0,
        error: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Record a lease outcome; failures requeue until the budget runs out.

        Only the current lease holder may report: a worker whose lease
        expired and was handed to someone else gets ``state="stale"``
        and cannot flip a job another worker already settled.
        """
        now = time.time()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT job_id, stage, attempts, state, worker, lease_started "
                "FROM jobs WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                self.metrics.inc("service.completes", label="unknown")
                return {"state": "unknown"}
            job_id, stage, attempts, state, holder, lease_started = row
            if state != "leased" or holder != worker:
                self.metrics.inc("service.completes", label="stale")
                return {"state": "stale", "attempts": attempts}
            sweeps = self._sweeps_of(conn, key)
            if lease_started is not None:
                self.metrics.observe(
                    "service.lease_to_complete_seconds",
                    max(0.0, now - lease_started),
                    label=stage,
                )
            if ok:
                conn.execute(
                    "UPDATE jobs SET state = 'done', worker = NULL, "
                    "cached = ?, wall_time = ?, error = NULL, settled = ? "
                    "WHERE key = ?",
                    (1 if cached else 0, wall_time, now, key),
                )
                self.metrics.inc("service.completes", label="ok")
                if cached:
                    self.metrics.inc("service.worker_cache_hits")
                if cached:
                    self._emit(
                        conn, sweeps, "cache_hit",
                        job=job_id, stage=stage, key=key, source="worker",
                    )
                else:
                    self._emit(
                        conn, sweeps, "cache_miss",
                        job=job_id, stage=stage, key=key,
                    )
                self._emit(
                    conn, sweeps, "job_finish",
                    job=job_id, stage=stage, key=key, cached=cached,
                    wall_time=round(wall_time, 6), attempt=attempts,
                    worker=worker,
                )
                state = "done"
            elif attempts >= self.max_attempts:
                conn.execute(
                    "UPDATE jobs SET state = 'failed', worker = NULL, "
                    "error = ?, settled = ? WHERE key = ?",
                    (error, now, key),
                )
                self.metrics.inc("service.completes", label="fail")
                self._emit(
                    conn, sweeps, "job_failed",
                    job=job_id, stage=stage, key=key, attempts=attempts,
                    error=error, worker=worker,
                )
                self._fail_dependents(conn, key, job_id)
                state = "failed"
            else:
                dep = self._failed_dep_of(conn, key)
                if dep is not None:
                    self._fail_blocked(conn, key, job_id, stage, dep)
                    state = "failed"
                else:
                    self.metrics.inc("service.completes", label="retry")
                    conn.execute(
                        "UPDATE jobs SET state = 'pending', worker = NULL, "
                        "error = ?, pending_since = ? WHERE key = ?",
                        (error, now, key),
                    )
                    self._emit(
                        conn, sweeps, "job_retry",
                        job=job_id, stage=stage, key=key, attempt=attempts,
                        error=error, worker=worker, backoff=0.0,
                    )
                    state = "pending"
        return {"state": state, "attempts": attempts}

    # -- status ----------------------------------------------------------------

    def sweep_status(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        conn = self._conn()
        sweep = conn.execute(
            "SELECT created, total FROM sweeps WHERE sweep_id = ?",
            (sweep_id,),
        ).fetchone()
        if sweep is None:
            return None
        counts: Dict[str, int] = {}
        for state, count in conn.execute(
            "SELECT j.state, COUNT(*) FROM sweep_jobs s "
            "JOIN jobs j ON j.key = s.key WHERE s.sweep_id = ? "
            "GROUP BY j.state",
            (sweep_id,),
        ):
            counts[state] = count
        failed = [
            {"job": job_id, "key": key, "error": error}
            for key, job_id, error in conn.execute(
                "SELECT j.key, j.job_id, j.error FROM sweep_jobs s "
                "JOIN jobs j ON j.key = s.key "
                "WHERE s.sweep_id = ? AND j.state = 'failed'",
                (sweep_id,),
            )
        ]
        total = sum(counts.values())
        settled = sum(counts.get(state, 0) for state in TERMINAL_STATES)
        done = settled == total
        first_lease, last_settled = conn.execute(
            "SELECT MIN(j.lease_started), MAX(j.settled) FROM sweep_jobs s "
            "JOIN jobs j ON j.key = s.key WHERE s.sweep_id = ?",
            (sweep_id,),
        ).fetchone()
        return {
            "sweep_id": sweep_id,
            "created": sweep[0],
            "total": total,
            "states": counts,
            "failed": failed,
            "done": done,
            "ok": counts.get("done", 0) == total,
            # Wall-clock progress markers for dashboards (repro-top):
            # submission time, the first time any job of the sweep was
            # handed to a worker, and the settle time of the last job to
            # finish.  A fully-deduplicated warm sweep may carry
            # first_lease/settled timestamps *earlier* than submitted —
            # its jobs settled under a previous sweep.
            "timestamps": {
                "submitted": sweep[0],
                "first_lease": first_lease,
                "settled": last_settled if done else None,
            },
        }

    def counts(self) -> Dict[str, Any]:
        """Global queue totals, for health checks and the CLI."""
        conn = self._conn()
        states: Dict[str, int] = {}
        for state, count in conn.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ):
            states[state] = count
        (sweeps,) = conn.execute("SELECT COUNT(*) FROM sweeps").fetchone()
        return {"sweeps": sweeps, "jobs": states}

    def pending_ready(self) -> int:
        """How many jobs could be leased right now (monitoring aid)."""
        (count,) = self._conn().execute(
            "SELECT COUNT(*) FROM jobs j WHERE j.state = 'pending' "
            "AND NOT EXISTS (SELECT 1 FROM deps d JOIN jobs dj "
            "ON dj.key = d.dep WHERE d.key = j.key AND dj.state != 'done')"
        ).fetchone()
        return count
