"""``repro-serve``: run a sweep broker.

Usage::

    repro-serve --port 8731 --queue /var/lib/repro/queue.db \\
                --cache-backend sqlite:/var/lib/repro/cache.db

    repro-eval table2 --service http://broker:8731     # clients
    repro-worker --broker http://broker:8731           # workers

Everything durable lives in the queue SQLite file and the cache backend;
the process itself is disposable (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import default_cache_dir
from repro.service.backends import make_cache
from repro.service.broker import Broker
from repro.service.queue import SweepQueue


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve the repro sweep API (job queue + shared result cache).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; the API trusts its clients)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8731,
        help="bind port (default 8731; 0 = ephemeral)",
    )
    parser.add_argument(
        "--queue",
        metavar="PATH",
        default=None,
        help=(
            "queue database file "
            "(default: <cache dir>/service/queue.db)"
        ),
    )
    parser.add_argument(
        "--cache-backend",
        metavar="SPEC",
        default=None,
        help=(
            "result store: disk[:/path], sqlite[:/path.db], or an http URL "
            "(default: sqlite at <cache dir>/service/cache.db; "
            "$REPRO_CACHE_URL is honoured)"
        ),
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        help="seconds before a silent worker's lease requeues (default 60)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="execution attempts per job before it is marked failed (default 3)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log every request to stderr",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    service_dir = default_cache_dir() / "service"
    queue_path = Path(args.queue) if args.queue else service_dir / "queue.db"
    if args.cache_backend:
        cache = make_cache(args.cache_backend)
    else:
        import os

        env = os.environ.get("REPRO_CACHE_URL")
        cache = make_cache(env) if env else make_cache(
            f"sqlite:{service_dir / 'cache.db'}"
        )
    metrics = MetricsRegistry()
    queue = SweepQueue(
        queue_path,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
        metrics=metrics,
    )
    broker = Broker(
        queue,
        cache,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        metrics=metrics,
    )
    log = get_logger("repro.serve")
    log.info(
        "broker listening",
        url=broker.url,
        queue=str(queue_path),
        cache=cache.describe(),
        metrics_endpoint=f"{broker.url}/metrics",
    )
    try:
        broker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        broker.server.server_close()
        queue.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
