"""Per-static-op predictor outcome columns.

The scalar simulation observer trains the hardware predictor only on the
ops a compilation predicts, and every shipped predictor (stride, FCM,
DFCM, last-value, hybrid and its confidence scores) keeps strictly
per-static-op state.  Consequence — the batching theorem this package
rests on: the per-occurrence outcome column of a static op depends only
on (a) the op's own value sequence in the trace and (b) the predictor
spec.  It is *independent* of which other ops a sweep point predicts, so
one column, computed once, is exact for every point in the batch.

Columns are computed by feeding the op's (trace-extracted) value
sequence through a **real** scalar predictor instance — predict, score,
update, exactly the observer's order — not a NumPy re-implementation,
so there is no numeric-semantics drift to audit.  NumPy enters only
downstream, where columns are packed into per-point pattern bitmasks.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.batchsim._compat import require_numpy
from repro.predict.base import ValuePredictor, _values_equal


class OutcomeColumn:
    """Outcomes of one static op over its dynamic occurrences."""

    __slots__ = ("op_id", "correct", "predicted")

    def __init__(self, op_id: int, correct, predicted):
        self.op_id = op_id
        self.correct = correct  # (N,) bool: prediction existed and matched
        self.predicted = predicted  # (N,) bool: predictor returned a value

    @property
    def hits(self) -> int:
        return int(self.correct.sum())

    @property
    def occurrences(self) -> int:
        return int(self.correct.size)


def predictor_key(machine) -> str:
    """Canonical cache key of the machine's declared predictor."""
    spec = getattr(machine, "predictor", None)
    if spec is None:
        return "default_hybrid"
    return json.dumps(spec.canonical(), sort_keys=True)


def build_predictor(machine) -> ValuePredictor:
    spec = getattr(machine, "predictor", None)
    if spec is not None:
        return spec.build()
    from repro.predict.hybrid import default_hybrid

    return default_hybrid()


def compute_column(
    op_id: int, values, build: Callable[[], ValuePredictor]
) -> OutcomeColumn:
    """Run a fresh scalar predictor over the op's value sequence.

    A fresh instance per column is equivalent to the observer's single
    shared instance because predictor state is per static op — the
    other ops' training can never touch this op's entries.
    """
    np = require_numpy()
    predictor = build()
    n = len(values)
    correct = np.zeros(n, dtype=bool)
    predicted = np.zeros(n, dtype=bool)
    for i in range(n):
        value = values[i]
        prediction = predictor.predict(op_id)
        if prediction is not None:
            predicted[i] = True
            if _values_equal(prediction, value):
                correct[i] = True
        predictor.update(op_id, value)
    return OutcomeColumn(op_id, correct, predicted)
