"""Analytical cycles surrogate: rank sweep points without simulating.

The cycle-accurate simulator replays the whole value trace per point.
For sweep *pruning* that is overkill: which points are worth simulating
exactly is decided by their relative ordering, and a compiled program
already contains everything an analytical estimate needs —

``cycles_nopred``
    exact by construction: every dynamic block instance of the
    no-prediction machine costs its original schedule length, and the
    profiled block counts come from the same trace the simulator
    replays, so ``sum(count * original_length)`` *is* the simulator's
    number.

``cycles_proposed``
    per speculated block, the dual-engine pattern runs give the two
    boundary lengths — ``best`` (every prediction correct: the
    issue-bound/dependence-height floor of the speculative schedule) and
    ``worst`` (every prediction wrong: floor plus the full recovery
    stall of the compensation path).  The surrogate models each dynamic
    instance as drawing the all-correct pattern with probability
    ``p = prod(profile rate of each predicted load)`` and the all-wrong
    boundary otherwise::

        E[length] = best + (1 - p) * (worst - best)

    Mixed patterns land between the boundaries and the run-time
    predictor is trained online rather than scoring the profile's
    best-of(stride, FCM) rate, so this is an estimate — its measured
    error against the exact simulator is bounded by
    :data:`DOCUMENTED_ERROR_BOUND` and re-checked by
    ``tests/batchsim/test_surrogate.py`` on the golden suite.

Both boundary lengths read the process-wide pattern-run memo that the
speculation pass's validation sweep already seeded, so an estimate costs
microseconds once the point is compiled.  ``repro-explore --surrogate``
uses the estimates to rank candidate points and prunes the weak ones
before exact simulation (pruned points are logged in the report, never
silently dropped), then cross-validates the survivors' estimates against
their exact simulations on every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Documented worst-case relative error of the surrogate's
#: ``cycles_proposed`` estimate vs the cycle-accurate simulator on the
#: golden suite (all benchmarks x {playdoh-4w, playdoh-8w} x thresholds
#: {0.5, 0.65, 0.8}).  Asserted by tests/batchsim/test_surrogate.py and
#: the CI batch-parity job; revisit if the estimate formula changes.
DOCUMENTED_ERROR_BOUND = 0.05


@dataclass(frozen=True)
class BlockEstimate:
    """The surrogate's model of one speculated block."""

    label: str
    #: Profiled execution count (== dynamic instances in the trace).
    weight: int
    original_length: int
    #: Effective length when every prediction is correct.
    best_length: int
    #: Effective length when every prediction is wrong.
    worst_length: int
    #: Probability that *all* of the block's predictions are correct,
    #: assuming independence: the product of the predicted loads'
    #: profile rates.
    p_all_correct: float

    @property
    def expected_length(self) -> float:
        return self.best_length + (1.0 - self.p_all_correct) * (
            self.worst_length - self.best_length
        )


@dataclass(frozen=True)
class SurrogateEstimate:
    """Analytical cycles estimate for one compiled program."""

    program_name: str
    machine_name: str
    cycles_nopred: int
    cycles_proposed: float
    #: Per speculated block detail (diagnostics; non-speculated blocks
    #: contribute exactly ``weight * original_length`` to both totals).
    blocks: Tuple[BlockEstimate, ...]

    @property
    def speedup(self) -> float:
        """Estimated proposed-machine speedup over no prediction."""
        if self.cycles_proposed <= 0:
            return 1.0
        return self.cycles_nopred / self.cycles_proposed


def estimate_compilation(compilation) -> SurrogateEstimate:
    """Estimate simulation cycles from a :class:`ProgramCompilation`.

    Pure function of the compilation (schedules + profile); never runs
    the simulator.  See the module docstring for the model.
    """
    profile = compilation.profile
    nopred = 0
    proposed = 0.0
    blocks = []
    for label, comp in compilation.blocks.items():
        weight = profile.blocks.count(label)
        if weight == 0:
            continue
        nopred += weight * comp.original_length
        if not comp.speculated:
            proposed += weight * comp.original_length
            continue
        p = 1.0
        for op_id in comp.predicted_load_ids:
            p *= profile.values.rate(op_id)
        estimate = BlockEstimate(
            label=label,
            weight=weight,
            original_length=comp.original_length,
            best_length=comp.best_case().effective_length,
            worst_length=comp.worst_case().effective_length,
            p_all_correct=p,
        )
        proposed += weight * estimate.expected_length
        blocks.append(estimate)
    return SurrogateEstimate(
        program_name=compilation.program.name,
        machine_name=compilation.machine.name,
        cycles_nopred=nopred,
        cycles_proposed=proposed,
        blocks=tuple(blocks),
    )


def relative_error(estimate: SurrogateEstimate, exact) -> float:
    """``|estimated - exact| / exact`` on proposed-machine cycles.

    ``exact`` is the :class:`ProgramSimResult` of the same compilation.
    This is the quantity :data:`DOCUMENTED_ERROR_BOUND` bounds.
    """
    if exact.cycles_proposed <= 0:
        return 0.0
    return (
        abs(estimate.cycles_proposed - exact.cycles_proposed)
        / exact.cycles_proposed
    )
