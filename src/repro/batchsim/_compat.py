"""NumPy gate for the batched simulation core.

NumPy has been declared in ``pyproject.toml`` since the seed commit but
only became load-bearing with :mod:`repro.batchsim`.  This module is the
single place that imports it: everything else asks :func:`batch_enabled`
(may the batched engine run?) or :func:`require_numpy` (give me the
module or a clear error).

Two escape hatches force the scalar path:

* ``REPRO_NO_BATCH=1`` in the environment — disables the batched engine
  *and* the process-wide compile/simulation product sharing it rides on,
  so a parity job can diff batched against fully-scalar artifacts;
* a missing or too-old NumPy — the scalar engine needs nothing beyond
  the standard library, so the repo degrades gracefully.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

#: Environment variable forcing the scalar path (value ``"1"``).
NO_BATCH_ENV = "REPRO_NO_BATCH"

#: Oldest NumPy the batched engine is tested against (object-dtype
#: gathers and ``bincount`` semantics are stable well before this, but
#: pyproject declares >=1.24 and we enforce the same floor at runtime).
MIN_NUMPY = (1, 24)

_numpy = None
_numpy_error: Optional[str] = None
_checked = False


def _parse_version(version: str) -> Tuple[int, ...]:
    parts = []
    for token in version.split(".")[:3]:
        digits = ""
        for ch in token:
            if not ch.isdigit():
                break
            digits += ch
        if not digits:
            break
        parts.append(int(digits))
    return tuple(parts)


def _check() -> None:
    global _numpy, _numpy_error, _checked
    if _checked:
        return
    _checked = True
    try:
        import numpy
    except ImportError as exc:
        _numpy_error = (
            "repro.batchsim needs NumPy (declared in pyproject.toml) but "
            f"importing it failed: {exc}.  Install numpy>={MIN_NUMPY[0]}."
            f"{MIN_NUMPY[1]}, or set {NO_BATCH_ENV}=1 to force the scalar "
            "simulation path."
        )
        return
    version = _parse_version(getattr(numpy, "__version__", "0"))
    if version < MIN_NUMPY:
        _numpy_error = (
            f"repro.batchsim needs numpy>={MIN_NUMPY[0]}.{MIN_NUMPY[1]} "
            f"but found {numpy.__version__}.  Upgrade it, or set "
            f"{NO_BATCH_ENV}=1 to force the scalar simulation path."
        )
        return
    _numpy = numpy


_scalar_forced: Optional[bool] = None


def scalar_forced() -> bool:
    """True when the user explicitly forced the scalar path.

    The answer is cached: :func:`sharing_enabled` sits on the hot path
    of every memo lookup, and ``os.environ`` reads are slow enough to
    show up there.  The variable is a per-process switch (CI sets it on
    whole job legs); :func:`refresh` — called by
    ``repro.batchsim.reset_shared_state`` — re-reads it for tests that
    flip the environment mid-process.
    """
    global _scalar_forced
    if _scalar_forced is None:
        _scalar_forced = os.environ.get(NO_BATCH_ENV) == "1"
    return _scalar_forced


def refresh() -> None:
    """Forget the cached environment reads (see :func:`scalar_forced`)."""
    global _scalar_forced
    _scalar_forced = None


def numpy_error() -> Optional[str]:
    """The import/version problem keeping NumPy unusable, or ``None``."""
    _check()
    return _numpy_error


def have_numpy() -> bool:
    _check()
    return _numpy is not None


def batch_enabled() -> bool:
    """May the batched engine run in this process?"""
    return not scalar_forced() and have_numpy()


def sharing_enabled() -> bool:
    """May compiler/simulation products be shared process-wide?

    The sharing caches are pure Python (no NumPy), but they are part of
    the batched fast path, so the same ``REPRO_NO_BATCH=1`` hatch turns
    them off — the parity CI legs then compare a genuinely scalar run.
    """
    return not scalar_forced()


def require_numpy():
    """Return the NumPy module or raise with a clear remediation hint."""
    _check()
    if _numpy is None:
        raise ImportError(_numpy_error)
    return _numpy
