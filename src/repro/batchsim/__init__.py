"""Batched struct-of-arrays simulation of sweep points.

``repro.batchsim`` simulates *B* sweep points that share a program trace
in one pass: the trace is decoded once into struct-of-arrays form
(:mod:`.arrays`), per-static-op predictor outcome columns are computed
once and shared by every point that predicts that op (:mod:`.outcomes`),
and each point's dynamic accounting collapses to a vectorised
pattern-bitmask histogram folded through the exact per-pattern block
timings (:mod:`.engine`).  Results are byte-identical to the scalar
engine — both paths share one deterministic accounting fold.

:mod:`.surrogate` layers a fast analytical cycles estimate on top, used
by ``repro-explore --surrogate`` to rank and prune candidate points
before exact simulation.

This package imports lazily: ``repro.core`` modules import
:mod:`repro.batchsim._compat` at startup, so eagerly importing the
engine here would create a cycle.
"""

from __future__ import annotations

from repro.batchsim._compat import (
    NO_BATCH_ENV,
    batch_enabled,
    numpy_error,
    require_numpy,
    scalar_forced,
    sharing_enabled,
)

__all__ = [
    "NO_BATCH_ENV",
    "BatchContext",
    "batch_enabled",
    "default_context",
    "numpy_error",
    "require_numpy",
    "reset_shared_state",
    "scalar_forced",
    "sharing_enabled",
]


def __getattr__(name):
    if name in ("BatchContext", "default_context", "reset_shared_state"):
        from repro.batchsim import context

        return getattr(context, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
