"""Trace-driven profiling over the struct-of-arrays decode.

The scalar profiling path replays the whole dynamic block sequence,
dispatching two observers per block entry and per traced value
(:func:`repro.trace.replay.replay_trace` driving
:class:`~repro.profiling.block_profile.BlockFrequencyProfiler` and
:class:`~repro.profiling.value_profile.ValueProfiler`).  Both consumers
reduce to per-column facts the :class:`~repro.batchsim.arrays.TraceArrays`
decode already holds:

* block frequencies are an ``np.bincount`` over the block sequence;
* the per-load stride/FCM hit counters depend only on that load's own
  value column, because both profile predictors keep strictly per-key
  state (:mod:`repro.predict.stride`, :mod:`repro.predict.fcm`).

So this module computes the identical :class:`ProfileData` one column at
a time, with the predictor state machines inlined into a single loop per
column.  Byte-parity notes:

* dict insertion order is observable through pickling, so both the
  block-count dict and the value-stats dict are built in *first dynamic
  encounter* order, exactly as the streaming observers would;
* ops that never execute get no stats entry (the scalar observer only
  creates stats on first execution);
* the inlined predictors replicate two-delta stride and order-2 FCM
  update/predict rules verbatim, including ``_values_equal`` scoring and
  Python ``hash`` context hashing.

The differential suite (``tests/batchsim/``) asserts equality against
the replay path on hypothesis-generated programs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.profiling.block_profile import BlockProfile
from repro.profiling.interpreter import ExecutionLimitExceeded
from repro.profiling.value_profile import (
    LONG_LATENCY_OPCODES,
    LoadValueStats,
    ValueProfile,
)
from repro.predict.base import _values_equal

#: FCM parameters of the profile predictor (``FCMPredictor(order=2)``).
_FCM_ORDER = 2
_FCM_TABLE_SIZE = 1 << 16

_MISSING = object()


def column_stats(values: List) -> LoadValueStats:
    """Stride/FCM profile counters for one op's value sequence.

    Inlines ``StridePredictor(two_delta=True)`` and
    ``FCMPredictor(order=2)`` for a single key: per value, score both
    predictions against the actual value, then update both state
    machines — the exact event order of
    :meth:`ValueProfiler.operation_executed`.
    """
    stats = LoadValueStats()
    stride_correct = 0
    fcm_correct = 0
    # Two-delta stride state (one _StrideEntry, inlined).
    s_last = None
    s_stride = 0
    s_candidate = 0
    s_seen = 0
    # Order-2 FCM state: the context (h0 older, h1 newer — the deque of
    # the last two values) plus the hashed second-level table.  The
    # context hash replicates FCMPredictor._context_hash exactly:
    # ``h = 0; for v in history: h = (h * 1000003) ^ hash(v)``.  The
    # context does not change between the predict and the update of one
    # value, so the hash is computed once and reused.
    h0 = h1 = None
    h_len = 0
    fcm_table: Dict[int, object] = {}
    for value in values:
        # -- predict + score ---------------------------------------------
        if s_seen >= 2:
            if _values_equal(s_last + s_stride, value):
                stride_correct += 1
        elif s_seen == 1:
            # One observation: no delta yet, degrade to last-value.
            if _values_equal(s_last, value):
                stride_correct += 1
        if h_len == _FCM_ORDER:
            ctx = ((hash(h0) * 1000003) ^ hash(h1)) % _FCM_TABLE_SIZE
            prediction = fcm_table.get(ctx, _MISSING)
            if prediction is not _MISSING and _values_equal(prediction, value):
                fcm_correct += 1
        # -- update ------------------------------------------------------
        if s_seen == 0:
            s_last = value
            s_seen = 1
        else:
            delta = value - s_last
            if delta == s_candidate:
                s_stride = delta
            s_candidate = delta
            s_last = value
            s_seen += 1
        if h_len == _FCM_ORDER:
            fcm_table[ctx] = value
            h0, h1 = h1, value
        elif h_len == 1:
            h0, h1 = h1, value
            h_len = 2
        else:
            h1 = value
            h_len = 1
    stats.executions = len(values)
    stats.stride_correct = stride_correct
    stats.fcm_correct = fcm_correct
    return stats


def batch_profile(
    program,
    trace,
    context,
    max_operations: int = 5_000_000,
    profile_alu: bool = False,
):
    """The :class:`~repro.profiling.profile_run.ProfileData` of one
    captured run, computed from the struct-of-arrays decode.

    Identical to ``profile_program(program, trace=trace, ...)`` — same
    counters, same dict orders, same limit/mismatch errors — but driven
    column-wise through ``context``'s shared :class:`TraceArrays`.
    """
    import numpy as np

    from repro.profiling.profile_run import ProfileData

    if trace.dynamic_operations > max_operations:
        raise ExecutionLimitExceeded(
            f"{trace.program_name}: exceeded {max_operations} operations"
        )
    arrays = context.arrays(trace, program)
    function = program.main
    tracked = (
        frozenset(LONG_LATENCY_OPCODES) if profile_alu else frozenset()
    )

    # First-encounter order of labels, then counts per label.
    block_counts: Dict[str, int] = {}
    value_stats: Dict[int, LoadValueStats] = {}
    if len(arrays.block_seq):
        uniq, first = np.unique(arrays.block_seq, return_index=True)
        counts = np.bincount(arrays.block_seq, minlength=len(arrays.labels))
        for idx in uniq[np.argsort(first)]:
            label = arrays.labels[int(idx)]
            block_counts[label] = int(counts[int(idx)])
            block = function.block(label)
            for op in block.operations:
                if not (op.is_load or op.opcode in tracked):
                    continue
                if op.op_id in value_stats:
                    continue
                value_stats[op.op_id] = column_stats(
                    arrays.op_values(label, op.op_id).tolist()
                )
    return ProfileData(
        program_name=program.name,
        blocks=BlockProfile(block_counts),
        values=ValueProfile(value_stats),
        execution=trace.to_execution_result(),
    )
