"""Struct-of-arrays decode of a value trace.

A :class:`~repro.trace.format.ValueTrace` stores the dynamic execution
as three flat streams (block-id sequence, one value per traced static op
per block instance, per-label static op lists).  :class:`TraceArrays`
turns that into NumPy columns so the batched engine can gather, for any
traced static op, the full per-occurrence value sequence in one fancy
index — the layout every sweep point of the batch shares:

* ``block_seq`` — ``(D,)`` int64, label index of every dynamic block
  instance (``D`` = ``trace.dynamic_blocks``);
* ``starts`` — ``(D,)`` int64, offset of each instance's first traced
  value in the flat value stream (``cumsum`` of per-instance sizes);
* ``stream`` — ``(V,)`` object ndarray of traced values (values are
  arbitrary Python ints/floats; object dtype keeps exact semantics —
  correctness is decided by the *real* scalar predictor, NumPy only
  does the gathers and histogramming);
* per label: the instance index vector (``np.nonzero``) and the static
  traced-op id tuple, so op *p* of label *L* reads its occurrence
  values as ``stream[starts[instances[L]] + pos(p)]``.

Validation mirrors :func:`repro.trace.replay._replay_plan` plus the
end-of-replay cursor check, so a trace the scalar replayer would reject
is rejected here with the same exception types.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.batchsim._compat import require_numpy
from repro.ir.program import Program
from repro.trace.format import TraceMismatch, ValueTrace
from repro.trace.replay import _replay_plan


class TraceArrays:
    """One trace decoded to struct-of-arrays form (see module docstring)."""

    def __init__(self, trace: ValueTrace, program: Program):
        np = require_numpy()
        plan = _replay_plan(trace, program)  # validates digest/labels/sigs
        self.trace = trace
        self.program = program
        self.labels: Tuple[str, ...] = tuple(trace.labels)
        self.label_index: Dict[str, int] = {
            label: i for i, label in enumerate(self.labels)
        }
        #: per label: op ids of its traced static ops, in static order —
        #: the order the trace interleaves values per instance.
        self.traced_ids: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(op.op_id for op in traced) for _, traced in plan
        )

        sizes = np.fromiter(
            (len(ids) for ids in self.traced_ids), dtype=np.int64,
            count=len(self.traced_ids),
        )
        self.block_seq = np.asarray(trace.block_seq, dtype=np.int64)
        if self.block_seq.size:
            if self.block_seq.min() < 0 or self.block_seq.max() >= len(self.labels):
                raise TraceMismatch(
                    f"trace of {trace.program_name!r} references a block "
                    "id outside its label table"
                )
            inst_sizes = sizes[self.block_seq]
            ends = np.cumsum(inst_sizes)
            self.starts = ends - inst_sizes
            total = int(ends[-1])
        else:
            self.starts = np.zeros(0, dtype=np.int64)
            total = 0
        if total != len(trace.values):
            raise TraceMismatch(
                f"trace of {trace.program_name!r} carries {len(trace.values)} "
                f"values but its block sequence implies {total}"
            )
        self.stream = np.empty(len(trace.values), dtype=object)
        if trace.values:
            self.stream[:] = trace.values

        #: per label: indices into ``block_seq`` of that label's instances.
        self._instances = [
            np.nonzero(self.block_seq == i)[0] for i in range(len(self.labels))
        ]
        self._pos: Tuple[Dict[int, int], ...] = tuple(
            {op_id: p for p, op_id in enumerate(ids)} for ids in self.traced_ids
        )

    @property
    def dynamic_blocks(self) -> int:
        return int(self.block_seq.size)

    def instance_count(self, label: str) -> int:
        idx = self.label_index.get(label)
        return 0 if idx is None else int(self._instances[idx].size)

    def op_values(self, label: str, op_id: int):
        """Object ndarray of ``op_id``'s values, one per occurrence.

        Occurrences are ordered by dynamic instance of ``label`` — the
        order the scalar observer sees them in.
        """
        idx = self.label_index[label]
        pos = self._pos[idx].get(op_id)
        if pos is None:
            raise TraceMismatch(
                f"operation {op_id} of block {label!r} is not traced"
            )
        return self.stream[self.starts[self._instances[idx]] + pos]
