"""The batched point engine: trace columns -> per-point sim counts.

One sweep point's dynamic simulation reduces, given the shared
:class:`~repro.batchsim.context.BatchContext`, to

1. a pattern-count histogram per speculated block (vectorised bitmask
   pack + ``bincount`` over the shared outcome columns), and
2. the same deterministic accounting fold the scalar engine uses
   (:func:`repro.core.program_sim._fold_counts`) over those counts.

Because step 2 is literally shared code, batched results are
byte-identical to the scalar engine by construction; the parity suite
(`tests/batchsim/`) asserts it anyway, end to end.

Points that leave the common path — explicit predictor override, finite
value-prediction table, confidence gating, icache modelling (inherently
sequential cache state), missing trace, NumPy unavailable or
``REPRO_NO_BATCH=1`` — fall back to the scalar engine inside
:func:`~repro.core.program_sim.simulate_program`; the decision is
reported by :func:`unsupported_reason`.
"""

from __future__ import annotations

from typing import Optional

from repro.batchsim._compat import batch_enabled, numpy_error
from repro.batchsim.context import BatchContext
from repro.profiling.interpreter import ExecutionLimitExceeded


def unsupported_reason(
    predictor=None,
    table=None,
    confidence=None,
    model_icache: bool = False,
    trace=None,
) -> Optional[str]:
    """Why this simulation cannot run batched (``None`` = it can)."""
    if not batch_enabled():
        return numpy_error() or "disabled (REPRO_NO_BATCH=1)"
    if trace is None:
        return "no value trace (live interpretation is sequential)"
    if predictor is not None:
        return "explicit predictor instance (columns key on machine specs)"
    if table is not None:
        return "finite prediction table (cross-op entry stealing is global)"
    if confidence is not None:
        return "confidence gating (estimator state is sequential)"
    if model_icache:
        return "icache modelling (cache state is sequential)"
    return None


def batch_counts(compilation, trace, context: BatchContext, max_operations):
    """Per-point simulation counts from the shared trace columns.

    Raises exactly what scalar replay of the same inputs would raise
    (:class:`ExecutionLimitExceeded` on budget overflow,
    :class:`~repro.trace.format.TraceMismatch`/``TraceError`` on a trace
    that does not match the program).
    """
    from repro.core.program_sim import SimCounts

    if max_operations is not None and trace.dynamic_operations > max_operations:
        raise ExecutionLimitExceeded(
            f"{trace.program_name}: exceeded {max_operations} operations"
        )
    arrays = context.arrays(trace, compilation.program)
    machine = compilation.machine
    counts = SimCounts()
    for label in arrays.labels:
        n = arrays.instance_count(label)
        if n == 0:
            continue
        comp = compilation.blocks.get(label)
        if comp is None:
            # The scalar observer ignores blocks the compiler did not
            # cover; _replay_plan guarantees the label exists in the
            # program, so this cannot happen for pipeline compilations.
            continue
        if not comp.speculated:
            counts.nonspec[label] = n
            continue
        op_ids = comp.predicted_load_ids
        counts.patterns[label] = dict(
            context.pattern_counts(arrays, machine, label, op_ids)
        )
        for op_id in op_ids:
            column = context.column(arrays, machine, label, op_id)
            hits = column.hits
            counts.hits += hits
            counts.misses += column.occurrences - hits
            counts.no_predictions += column.occurrences - int(
                column.predicted.sum()
            )
    return counts
