"""Shared state of one batch of sweep points.

A :class:`BatchContext` owns everything the points of a batch can share:
decoded :class:`~repro.batchsim.arrays.TraceArrays`, per-op predictor
:class:`~repro.batchsim.outcomes.OutcomeColumn` columns, and per-point
pattern-count histograms (many points predict the same op set, e.g. the
same threshold on machines of different widths, and then share even the
histogram).  All caches are bounded LRUs keyed by object identity with
strong references held in the values, so ids cannot be reused while an
entry lives.

A process-wide default context backs ``Evaluation`` sweeps without a
runner (mirroring :func:`repro.trace.store.default_store`);
:func:`reset_shared_state` drops it together with the compile-product
memos — bench iterations call it so repeats measure real work, and the
test suite resets between tests for isolation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.batchsim._compat import require_numpy
from repro.batchsim.arrays import TraceArrays
from repro.batchsim.outcomes import (
    OutcomeColumn,
    build_predictor,
    compute_column,
    predictor_key,
)


class _LRU:
    """Tiny LRU over an OrderedDict (values hold their key objects)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        entry = self.data.get(key)
        if entry is not None:
            self.data.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, key, value):
        self.data[key] = value
        self.data.move_to_end(key)
        while len(self.data) > self.capacity:
            self.data.popitem(last=False)

    def clear(self):
        self.data.clear()


class BatchContext:
    """Caches shared by every point simulated against the same traces."""

    def __init__(
        self,
        max_traces: int = 8,
        max_columns: int = 8192,
        max_histograms: int = 8192,
    ):
        self._arrays = _LRU(max_traces)
        self._columns = _LRU(max_columns)
        self._histograms = _LRU(max_histograms)

    # -- decoded traces ----------------------------------------------------

    def arrays(self, trace, program) -> TraceArrays:
        key = (id(trace), id(program))
        entry = self._arrays.get(key)
        if entry is not None:
            arrays = entry
            # Strong refs inside TraceArrays pin trace/program, so the
            # ids in the key are stable while the entry lives.
            if arrays.trace is trace and arrays.program is program:
                return arrays
        arrays = TraceArrays(trace, program)
        self._arrays.put(key, arrays)
        return arrays

    # -- predictor outcome columns ----------------------------------------

    def column(
        self, arrays: TraceArrays, machine, label: str, op_id: int
    ) -> OutcomeColumn:
        pkey = predictor_key(machine)
        key = (id(arrays), pkey, label, op_id)
        entry = self._columns.get(key)
        if entry is not None and entry[0] is arrays:
            return entry[1]
        column = compute_column(
            op_id,
            arrays.op_values(label, op_id),
            lambda: build_predictor(machine),
        )
        self._columns.put(key, (arrays, column))
        return column

    # -- per-point pattern histograms --------------------------------------

    def pattern_counts(
        self,
        arrays: TraceArrays,
        machine,
        label: str,
        op_ids: Tuple[int, ...],
    ) -> Dict[Tuple[bool, ...], int]:
        """Histogram of correctness patterns over the label's instances.

        ``op_ids`` are the predicted original op ids in LdPred order —
        pattern position *j* is op ``op_ids[j]``, matching the scalar
        observer's ``predicted_load_ids`` convention.
        """
        np = require_numpy()
        pkey = predictor_key(machine)
        key = (id(arrays), pkey, label, op_ids)
        entry = self._histograms.get(key)
        if entry is not None and entry[0] is arrays:
            return entry[1]
        columns = [self.column(arrays, machine, label, op_id) for op_id in op_ids]
        k = len(columns)
        if k > 20:  # 2^k pattern space; the compiler caps far below this
            raise ValueError(f"{k} predictions in one block exceed batch limit")
        n = arrays.instance_count(label)
        code = np.zeros(n, dtype=np.int64)
        for j, column in enumerate(columns):
            code |= column.correct.astype(np.int64) << j
        binc = np.bincount(code, minlength=1 << k)
        counts = {
            tuple(bool((mask >> j) & 1) for j in range(k)): int(binc[mask])
            for mask in range(1 << k)
            if binc[mask]
        }
        self._histograms.put(key, (arrays, counts))
        return counts

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "arrays.hits": self._arrays.hits,
            "arrays.misses": self._arrays.misses,
            "columns.hits": self._columns.hits,
            "columns.misses": self._columns.misses,
            "histograms.hits": self._histograms.hits,
            "histograms.misses": self._histograms.misses,
        }

    def reset(self) -> None:
        self._arrays.clear()
        self._columns.clear()
        self._histograms.clear()


_DEFAULT: Optional[BatchContext] = None


def default_context() -> BatchContext:
    """The process-wide shared context (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BatchContext()
    return _DEFAULT


def resolve_context(batch) -> BatchContext:
    """Interpret ``simulate_program``'s ``batch=`` argument."""
    if isinstance(batch, BatchContext):
        return batch
    return default_context()


def reset_default_context() -> None:
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.reset()
    _DEFAULT = None


def reset_shared_state() -> None:
    """Drop every process-wide fast-path cache (batch + compile memos).

    Bench scenarios call this at iteration start so repeats measure the
    genuine per-sweep cost (cross-point sharing *within* the iteration
    only); the test suite calls it between tests for isolation.
    """
    reset_default_context()
    from repro.batchsim import _compat
    from repro.core import compile_cache

    _compat.refresh()
    compile_cache.reset()
    # The evaluation layer's shared build/profile products (imported
    # lazily: evaluation sits above this package in the import graph,
    # and there is nothing to clear if it was never imported).
    import sys

    experiment = sys.modules.get("repro.evaluation.experiment")
    if experiment is not None:
        experiment.reset_shared_products()
    trace_format = sys.modules.get("repro.trace.format")
    if trace_format is not None:
        trace_format.reset_digest_memo()
