"""Architectural (functional) execution of IR programs.

The interpreter executes a program the way the paper's HP PA-RISC host
executed the benchmarks during profiling: sequentially, with exact
values.  Observers hook block entries and executed operations, which is
how block-frequency profiling, value profiling and the dynamic
dual-engine simulation all attach to execution without duplicating the
semantics.

Two execution paths produce byte-identical results:

* The **specialized fast path** (the default) precompiles each basic
  block, once per static block per run, into a dispatch list of per-op
  closures: the opcode handler, operand readers and destination slot are
  resolved at compile time instead of being re-dispatched for every
  dynamic instance.  Observer-less runs additionally skip building the
  per-op ``inputs`` tuples entirely.
* The **legacy loop** — the original per-dynamic-op dispatch — is kept
  behind ``REPRO_SLOW_INTERP=1`` for differential testing.  It is the
  executable specification the fast path is checked against.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple, Union

from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode, evaluator, is_alu
from repro.ir.operation import Imm, Operation, Reg
from repro.ir.program import Program
from repro.profiling.memory import Memory, Number

#: Environment variable forcing the legacy per-op dispatch loop.
SLOW_INTERP_ENV = "REPRO_SLOW_INTERP"


class ExecutionObserver(Protocol):
    """Hook interface for profilers and simulators."""

    def block_entered(self, block: BasicBlock) -> None:
        """Called when control enters a basic block."""

    def operation_executed(
        self, op: Operation, inputs: tuple[Number, ...], result: Optional[Number]
    ) -> None:
        """Called after each dynamic operation with its actual values."""


class ExecutionLimitExceeded(RuntimeError):
    """The program ran past the configured dynamic-operation budget."""


@dataclass
class ExecutionResult:
    """Outcome of one architectural run."""

    program_name: str
    dynamic_operations: int
    dynamic_blocks: int
    registers: Dict[str, Number]
    memory: Memory
    halted: bool

    @property
    def loads_executed(self) -> int:
        return self.memory.reads

    @property
    def stores_executed(self) -> int:
        return self.memory.writes


def _dispatch_miss_message(opcode: Opcode) -> str:
    """The error for opcodes without an interpretation — one string, so
    the specialized and legacy paths can never drift apart."""
    return (
        f"interpreter cannot execute {opcode.value}; the "
        "prediction forms exist only in scheduled code"
    )


# -- block specialization ----------------------------------------------------


def _make_reader(src: Union[Reg, Imm], strict: bool):
    """Operand reader resolved once per static operand."""
    if isinstance(src, Imm):
        value = src.value
        return lambda regs: value
    name = src.name
    if strict:
        def read_strict(regs, _name=name):
            if _name not in regs:
                raise KeyError(f"read of uninitialised register {_name}")
            return regs[_name]
        return read_strict
    return lambda regs, _name=name: regs.get(_name, 0)


def _compile_body_op(op: Operation, strict: bool):
    """Compile one straight-line op into ``(step, obs_step)`` closures.

    ``step(regs, mem)`` performs the op's architectural effect with no
    allocation; ``obs_step(regs, mem)`` does the same but also returns
    ``(inputs, result)`` exactly as the legacy loop computed them, for
    observer notification.
    """
    opcode = op.opcode
    srcs = op.srcs

    if is_alu(opcode):
        fn = evaluator(opcode)
        dest = op.dest.name
        if not strict and len(srcs) == 2:
            a, b = srcs
            if isinstance(a, Reg) and isinstance(b, Reg):
                an, bn = a.name, b.name

                def step(regs, mem, fn=fn, an=an, bn=bn, dest=dest):
                    regs[dest] = fn(regs.get(an, 0), regs.get(bn, 0))

                def obs_step(regs, mem, fn=fn, an=an, bn=bn, dest=dest):
                    inputs = (regs.get(an, 0), regs.get(bn, 0))
                    result = fn(inputs[0], inputs[1])
                    regs[dest] = result
                    return inputs, result

                return step, obs_step
            if isinstance(a, Reg) and isinstance(b, Imm):
                an, bv = a.name, b.value

                def step(regs, mem, fn=fn, an=an, bv=bv, dest=dest):
                    regs[dest] = fn(regs.get(an, 0), bv)

                def obs_step(regs, mem, fn=fn, an=an, bv=bv, dest=dest):
                    inputs = (regs.get(an, 0), bv)
                    result = fn(inputs[0], bv)
                    regs[dest] = result
                    return inputs, result

                return step, obs_step
            if isinstance(a, Imm) and isinstance(b, Reg):
                av, bn = a.value, b.name

                def step(regs, mem, fn=fn, av=av, bn=bn, dest=dest):
                    regs[dest] = fn(av, regs.get(bn, 0))

                def obs_step(regs, mem, fn=fn, av=av, bn=bn, dest=dest):
                    inputs = (av, regs.get(bn, 0))
                    result = fn(av, inputs[1])
                    regs[dest] = result
                    return inputs, result

                return step, obs_step
        if not strict and len(srcs) == 1 and isinstance(srcs[0], Reg):
            an = srcs[0].name

            def step(regs, mem, fn=fn, an=an, dest=dest):
                regs[dest] = fn(regs.get(an, 0))

            def obs_step(regs, mem, fn=fn, an=an, dest=dest):
                inputs = (regs.get(an, 0),)
                result = fn(inputs[0])
                regs[dest] = result
                return inputs, result

            return step, obs_step
        readers = tuple(_make_reader(s, strict) for s in srcs)

        def step(regs, mem, fn=fn, readers=readers, dest=dest):
            regs[dest] = fn(*[read(regs) for read in readers])

        def obs_step(regs, mem, fn=fn, readers=readers, dest=dest):
            inputs = tuple(read(regs) for read in readers)
            result = fn(*inputs)
            regs[dest] = result
            return inputs, result

        return step, obs_step

    if opcode is Opcode.LOAD:
        dest = op.dest.name
        offset = op.offset
        base = srcs[0]
        if not strict and isinstance(base, Reg):
            bn = base.name

            def step(regs, mem, bn=bn, offset=offset, dest=dest):
                regs[dest] = mem.load(regs.get(bn, 0) + offset)

            def obs_step(regs, mem, bn=bn, offset=offset, dest=dest):
                address = regs.get(bn, 0)
                result = mem.load(address + offset)
                regs[dest] = result
                return (address,), result

            return step, obs_step
        read_base = _make_reader(base, strict)

        def step(regs, mem, read_base=read_base, offset=offset, dest=dest):
            regs[dest] = mem.load(read_base(regs) + offset)

        def obs_step(regs, mem, read_base=read_base, offset=offset, dest=dest):
            address = read_base(regs)
            result = mem.load(address + offset)
            regs[dest] = result
            return (address,), result

        return step, obs_step

    if opcode is Opcode.STORE:
        offset = op.offset
        value_src, base_src = srcs
        if (
            not strict
            and isinstance(value_src, Reg)
            and isinstance(base_src, Reg)
        ):
            vn, bn = value_src.name, base_src.name

            def step(regs, mem, vn=vn, bn=bn, offset=offset):
                mem.store(regs.get(bn, 0) + offset, regs.get(vn, 0))

            def obs_step(regs, mem, vn=vn, bn=bn, offset=offset):
                inputs = (regs.get(vn, 0), regs.get(bn, 0))
                mem.store(inputs[1] + offset, inputs[0])
                return inputs, None

            return step, obs_step
        read_value = _make_reader(value_src, strict)
        read_base = _make_reader(base_src, strict)

        def step(regs, mem, rv=read_value, rb=read_base, offset=offset):
            mem.store(rb(regs) + offset, rv(regs))

        def obs_step(regs, mem, rv=read_value, rb=read_base, offset=offset):
            inputs = (rv(regs), rb(regs))
            mem.store(inputs[1] + offset, inputs[0])
            return inputs, None

        return step, obs_step

    # Prediction forms (and any future opcode without an architectural
    # interpretation): the legacy loop reads the operands, then raises.
    # Compiling a raiser keeps the dispatch miss at the same dynamic
    # point with the same message.
    readers = tuple(_make_reader(s, strict) for s in srcs)
    message = _dispatch_miss_message(opcode)

    def step(regs, mem, readers=readers, message=message):
        for read in readers:
            read(regs)
        raise ValueError(message)

    def obs_step(regs, mem, readers=readers, message=message):
        for read in readers:
            read(regs)
        raise ValueError(message)

    return step, obs_step


class _CompiledBlock:
    """One basic block lowered to a dispatch list of per-op closures."""

    __slots__ = (
        "block",
        "label",
        "n_ops",
        "steps",
        "obs_steps",
        "term_kind",
        "term_op",
        "term_cond",
        "term_targets",
    )

    def __init__(self, block: BasicBlock, strict: bool):
        ops = block.operations
        term_op = ops[-1] if ops and ops[-1].is_branch else None
        body = ops[:-1] if term_op is not None else list(ops)
        self.block = block
        self.label = block.label
        self.n_ops = len(ops)
        self.steps = []
        self.obs_steps = []
        for op in body:
            step, obs_step = _compile_body_op(op, strict)
            self.steps.append(step)
            self.obs_steps.append((op, obs_step))
        self.term_op = term_op
        self.term_cond = None
        self.term_targets: Tuple[str, ...] = ()
        if term_op is None:
            self.term_kind = None
        elif term_op.opcode is Opcode.BR:
            self.term_kind = "br"
            self.term_targets = term_op.targets
        elif term_op.opcode is Opcode.BRCOND:
            self.term_kind = "brcond"
            self.term_cond = _make_reader(term_op.srcs[0], strict)
            self.term_targets = term_op.targets
        else:  # HALT is the only other branch opcode.
            self.term_kind = "halt"

    def exec_terminator(self, regs):
        """Run the terminator; returns ``(next_label, halted, inputs)``."""
        kind = self.term_kind
        if kind == "br":
            return self.term_targets[0], False, ()
        if kind == "brcond":
            cond = self.term_cond(regs)
            target = self.term_targets[0] if cond != 0 else self.term_targets[1]
            return target, False, (cond,)
        return None, True, ()


class Interpreter:
    """Executes a program's main function to completion."""

    def __init__(
        self,
        max_operations: int = 5_000_000,
        strict_registers: bool = False,
    ):
        self.max_operations = max_operations
        self.strict_registers = strict_registers

    def run(
        self,
        program: Program,
        observers: Optional[List[ExecutionObserver]] = None,
    ) -> ExecutionResult:
        observers = observers or []
        if os.environ.get(SLOW_INTERP_ENV) == "1":
            return self._run_legacy(program, observers)
        return self._run_fast(program, observers)

    # -- specialized fast path ----------------------------------------------

    def _run_fast(
        self, program: Program, observers: List[ExecutionObserver]
    ) -> ExecutionResult:
        function = program.main
        memory = Memory(program.initial_memory)
        registers: Dict[str, Number] = dict(program.initial_registers)
        strict = self.strict_registers
        max_operations = self.max_operations
        compiled: Dict[str, _CompiledBlock] = {}

        executed = 0
        blocks = 0
        label: Optional[str] = function.entry_label
        halted = False

        while label is not None:
            cb = compiled.get(label)
            if cb is None:
                cb = compiled[label] = _CompiledBlock(
                    function.block(label), strict
                )
            blocks += 1
            if observers:
                block = cb.block
                for observer in observers:
                    observer.block_entered(block)

            next_label: Optional[str] = None
            if executed + cb.n_ops > max_operations:
                # The budget may run out inside this block: step op by
                # op so the limit error raises at exactly the same
                # operation — after the same observer notifications — as
                # the legacy loop.
                for op, obs_step in cb.obs_steps:
                    executed += 1
                    if executed > max_operations:
                        raise ExecutionLimitExceeded(
                            f"{program.name}: exceeded "
                            f"{max_operations} operations"
                        )
                    inputs, result = obs_step(registers, memory)
                    for observer in observers:
                        observer.operation_executed(op, inputs, result)
                if cb.term_kind is not None:
                    executed += 1
                    if executed > max_operations:
                        raise ExecutionLimitExceeded(
                            f"{program.name}: exceeded "
                            f"{max_operations} operations"
                        )
                    next_label, halted, term_inputs = cb.exec_terminator(
                        registers
                    )
                    for observer in observers:
                        observer.operation_executed(
                            cb.term_op, term_inputs, None
                        )
            else:
                executed += cb.n_ops
                if observers:
                    for op, obs_step in cb.obs_steps:
                        inputs, result = obs_step(registers, memory)
                        for observer in observers:
                            observer.operation_executed(op, inputs, result)
                else:
                    for step in cb.steps:
                        step(registers, memory)
                if cb.term_kind is not None:
                    next_label, halted, term_inputs = cb.exec_terminator(
                        registers
                    )
                    if observers:
                        for observer in observers:
                            observer.operation_executed(
                                cb.term_op, term_inputs, None
                            )

            if halted:
                break
            if next_label is None:
                raise RuntimeError(
                    f"block {label!r} fell through without a branch"
                )
            label = next_label

        return ExecutionResult(
            program_name=program.name,
            dynamic_operations=executed,
            dynamic_blocks=blocks,
            registers=registers,
            memory=memory,
            halted=halted,
        )

    # -- legacy per-op dispatch loop ------------------------------------------

    def _run_legacy(
        self, program: Program, observers: List[ExecutionObserver]
    ) -> ExecutionResult:
        function = program.main
        memory = Memory(program.initial_memory)
        registers: Dict[str, Number] = dict(program.initial_registers)

        # Hoisted out of the dynamic loop: one reader closure per run
        # (binding strictness and the register file once) and one
        # truthiness check for the observer list instead of a per-op
        # iteration over an empty tuple.
        strict = self.strict_registers
        max_operations = self.max_operations
        notify = bool(observers)

        def read(operand: Union[Reg, Imm]) -> Number:
            if isinstance(operand, Imm):
                return operand.value
            if strict and operand.name not in registers:
                raise KeyError(f"read of uninitialised register {operand.name}")
            return registers.get(operand.name, 0)

        executed = 0
        blocks = 0
        label: Optional[str] = function.entry_label
        halted = False

        while label is not None:
            block = function.block(label)
            blocks += 1
            if notify:
                for observer in observers:
                    observer.block_entered(block)

            next_label: Optional[str] = None
            for op in block.operations:
                executed += 1
                if executed > max_operations:
                    raise ExecutionLimitExceeded(
                        f"{program.name}: exceeded {max_operations} operations"
                    )
                opcode = op.opcode
                inputs = tuple(read(src) for src in op.srcs)
                result: Optional[Number] = None

                if is_alu(opcode):
                    result = evaluator(opcode)(*inputs)
                    registers[op.dest.name] = result
                elif opcode is Opcode.LOAD:
                    result = memory.load(inputs[0] + op.offset)
                    registers[op.dest.name] = result
                elif opcode is Opcode.STORE:
                    memory.store(inputs[1] + op.offset, inputs[0])
                elif opcode is Opcode.BR:
                    next_label = op.targets[0]
                elif opcode is Opcode.BRCOND:
                    next_label = op.targets[0] if inputs[0] != 0 else op.targets[1]
                elif opcode is Opcode.HALT:
                    halted = True
                else:
                    raise ValueError(_dispatch_miss_message(opcode))

                if notify:
                    for observer in observers:
                        observer.operation_executed(op, inputs, result)

                if halted:
                    break

            if halted:
                break
            if next_label is None:
                raise RuntimeError(
                    f"block {block.label!r} fell through without a branch"
                )
            label = next_label

        return ExecutionResult(
            program_name=program.name,
            dynamic_operations=executed,
            dynamic_blocks=blocks,
            registers=registers,
            memory=memory,
            halted=halted,
        )


def run_program(
    program: Program,
    observers: Optional[List[ExecutionObserver]] = None,
    max_operations: int = 5_000_000,
) -> ExecutionResult:
    """Convenience wrapper around :class:`Interpreter`."""
    return Interpreter(max_operations=max_operations).run(program, observers=observers)
