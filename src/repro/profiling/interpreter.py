"""Architectural (functional) execution of IR programs.

The interpreter executes a program the way the paper's HP PA-RISC host
executed the benchmarks during profiling: sequentially, with exact
values.  Observers hook block entries and executed operations, which is
how block-frequency profiling, value profiling and the dynamic
dual-engine simulation all attach to execution without duplicating the
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Union

from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode, evaluator, is_alu
from repro.ir.operation import Imm, Operation, Reg
from repro.ir.program import Program
from repro.profiling.memory import Memory, Number


class ExecutionObserver(Protocol):
    """Hook interface for profilers and simulators."""

    def block_entered(self, block: BasicBlock) -> None:
        """Called when control enters a basic block."""

    def operation_executed(
        self, op: Operation, inputs: tuple[Number, ...], result: Optional[Number]
    ) -> None:
        """Called after each dynamic operation with its actual values."""


class ExecutionLimitExceeded(RuntimeError):
    """The program ran past the configured dynamic-operation budget."""


@dataclass
class ExecutionResult:
    """Outcome of one architectural run."""

    program_name: str
    dynamic_operations: int
    dynamic_blocks: int
    registers: Dict[str, Number]
    memory: Memory
    halted: bool

    @property
    def loads_executed(self) -> int:
        return self.memory.reads

    @property
    def stores_executed(self) -> int:
        return self.memory.writes


class Interpreter:
    """Executes a program's main function to completion."""

    def __init__(
        self,
        max_operations: int = 5_000_000,
        strict_registers: bool = False,
    ):
        self.max_operations = max_operations
        self.strict_registers = strict_registers

    def run(
        self,
        program: Program,
        observers: Optional[List[ExecutionObserver]] = None,
    ) -> ExecutionResult:
        function = program.main
        memory = Memory(program.initial_memory)
        registers: Dict[str, Number] = dict(program.initial_registers)
        observers = observers or []

        def read(operand: Union[Reg, Imm]) -> Number:
            if isinstance(operand, Imm):
                return operand.value
            if self.strict_registers and operand.name not in registers:
                raise KeyError(f"read of uninitialised register {operand.name}")
            return registers.get(operand.name, 0)

        executed = 0
        blocks = 0
        label: Optional[str] = function.entry_label
        halted = False

        while label is not None:
            block = function.block(label)
            blocks += 1
            for observer in observers:
                observer.block_entered(block)

            next_label: Optional[str] = None
            for op in block.operations:
                executed += 1
                if executed > self.max_operations:
                    raise ExecutionLimitExceeded(
                        f"{program.name}: exceeded {self.max_operations} operations"
                    )
                opcode = op.opcode
                inputs = tuple(read(src) for src in op.srcs)
                result: Optional[Number] = None

                if is_alu(opcode):
                    result = evaluator(opcode)(*inputs)
                    registers[op.dest.name] = result
                elif opcode is Opcode.LOAD:
                    result = memory.load(inputs[0] + op.offset)
                    registers[op.dest.name] = result
                elif opcode is Opcode.STORE:
                    memory.store(inputs[1] + op.offset, inputs[0])
                elif opcode is Opcode.BR:
                    next_label = op.targets[0]
                elif opcode is Opcode.BRCOND:
                    next_label = op.targets[0] if inputs[0] != 0 else op.targets[1]
                elif opcode is Opcode.HALT:
                    halted = True
                else:
                    raise ValueError(
                        f"interpreter cannot execute {opcode.value}; the "
                        "prediction forms exist only in scheduled code"
                    )

                for observer in observers:
                    observer.operation_executed(op, inputs, result)

                if halted:
                    break

            if halted:
                break
            if next_label is None:
                raise RuntimeError(
                    f"block {block.label!r} fell through without a branch"
                )
            label = next_label

        return ExecutionResult(
            program_name=program.name,
            dynamic_operations=executed,
            dynamic_blocks=blocks,
            registers=registers,
            memory=memory,
            halted=halted,
        )


def run_program(
    program: Program,
    observers: Optional[List[ExecutionObserver]] = None,
    max_operations: int = 5_000_000,
) -> ExecutionResult:
    """Convenience wrapper around :class:`Interpreter`."""
    return Interpreter(max_operations=max_operations).run(program, observers=observers)
