"""Architectural execution and profiling (block frequency, value profiles)."""

from repro.profiling.block_profile import BlockFrequencyProfiler, BlockProfile
from repro.profiling.interpreter import (
    ExecutionLimitExceeded,
    ExecutionObserver,
    ExecutionResult,
    Interpreter,
    run_program,
)
from repro.profiling.memory import Memory
from repro.profiling.profile_run import ProfileData, profile_program
from repro.profiling.value_profile import LoadValueStats, ValueProfile, ValueProfiler

__all__ = [
    "BlockFrequencyProfiler",
    "BlockProfile",
    "ExecutionLimitExceeded",
    "ExecutionObserver",
    "ExecutionResult",
    "Interpreter",
    "LoadValueStats",
    "Memory",
    "ProfileData",
    "ValueProfile",
    "ValueProfiler",
    "profile_program",
    "run_program",
]
