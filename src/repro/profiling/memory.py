"""Word-addressed data memory for the functional interpreter.

Addresses are integers; uninitialised words read as zero (the memory
image of a :class:`~repro.ir.program.Program` provides the initial
contents).  Access counts are kept so workloads can be characterised by
load/store density.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

Number = Union[int, float]


class Memory:
    """A sparse word-addressed memory."""

    def __init__(self, image: Mapping[int, Number] | None = None):
        self._words: Dict[int, Number] = dict(image or {})
        self.reads = 0
        self.writes = 0

    @classmethod
    def with_counts(
        cls, image: Mapping[int, Number] | None, reads: int, writes: int
    ) -> "Memory":
        """A memory reconstructed from a finished run.

        Trace replay rebuilds the final memory image without re-executing
        the loads and stores; restoring the captured access counters here
        keeps ``loads_executed``/``stores_executed`` (and everything
        validated against them) identical to the live run instead of
        reporting zero.
        """
        memory = cls(image)
        memory.reads = reads
        memory.writes = writes
        return memory

    def load(self, address: int) -> Number:
        self.reads += 1
        return self._words.get(int(address), 0)

    def store(self, address: int, value: Number) -> None:
        self.writes += 1
        self._words[int(address)] = value

    def peek(self, address: int) -> Number:
        """Read without counting (for assertions and debugging)."""
        return self._words.get(int(address), 0)

    def snapshot(self) -> Dict[int, Number]:
        return dict(self._words)

    def __len__(self) -> int:
        return len(self._words)

    def __repr__(self) -> str:
        return f"<Memory {len(self)} words, {self.reads}R/{self.writes}W>"
