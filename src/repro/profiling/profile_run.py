"""One-stop profiling run: block frequencies + value profile.

This is the front half of the paper's methodology: execute the benchmark
once, collecting (a) how often each block runs and (b) how predictable
each load's value stream is under stride and FCM prediction.  The
resulting :class:`ProfileData` is what the speculation pass and the
evaluation experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.program import Program
from repro.profiling.block_profile import BlockFrequencyProfiler, BlockProfile
from repro.profiling.interpreter import ExecutionResult, Interpreter
from repro.profiling.value_profile import ValueProfile, ValueProfiler


@dataclass(frozen=True)
class ProfileData:
    """Everything the compiler learns from a profiling run."""

    program_name: str
    blocks: BlockProfile
    values: ValueProfile
    execution: ExecutionResult


def profile_program(
    program: Program,
    max_operations: int = 5_000_000,
    profile_alu: bool = False,
    trace=None,
    batch=None,
) -> ProfileData:
    """Run ``program`` once and collect both profiles.

    ``profile_alu=True`` additionally value-profiles long-latency ALU
    results (mul/div/...), enabling ``SpeculationConfig.predict_alu``.

    ``trace`` (a :class:`~repro.trace.ValueTrace` captured from this
    program) replays the recorded value stream instead of interpreting —
    the profilers consume only block entries and traced-op results, both
    of which the trace records exactly, so the profile is identical.

    ``batch`` opts into the column-wise struct-of-arrays profiler
    (:mod:`repro.batchsim.profiler`): pass a
    :class:`~repro.batchsim.context.BatchContext` (or ``True`` for the
    process-wide default) to profile from the shared trace decode.
    Requires ``trace``; falls back to the replay path when NumPy is
    unavailable or ``REPRO_NO_BATCH=1`` is set.  The profile is
    byte-identical either way.
    """
    from repro.profiling.value_profile import LONG_LATENCY_OPCODES

    if batch is not None and trace is not None:
        from repro.batchsim._compat import batch_enabled

        if batch_enabled():
            from repro.batchsim.context import resolve_context
            from repro.batchsim.profiler import batch_profile

            return batch_profile(
                program,
                trace,
                resolve_context(batch),
                max_operations=max_operations,
                profile_alu=profile_alu,
            )

    block_profiler = BlockFrequencyProfiler()
    value_profiler = ValueProfiler(
        extra_opcodes=LONG_LATENCY_OPCODES if profile_alu else ()
    )
    observers = [block_profiler, value_profiler]
    if trace is not None:
        from repro.trace.replay import replay_trace

        result = replay_trace(
            trace, program, observers=observers, max_operations=max_operations
        )
    else:
        result = Interpreter(max_operations=max_operations).run(
            program, observers=observers
        )
    return ProfileData(
        program_name=program.name,
        blocks=block_profiler.profile(),
        values=value_profiler.profile(),
        execution=result,
    )
