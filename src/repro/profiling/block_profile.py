"""Block execution-frequency profiling.

"Besides value profiles, the generated code was also profiled to
determine the frequency of execution of each block" — these counts weight
per-block schedule lengths into whole-program execution-time fractions
for Tables 2-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation


class BlockFrequencyProfiler:
    """Execution observer counting dynamic entries per block label."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def block_entered(self, block: BasicBlock) -> None:
        self.counts[block.label] = self.counts.get(block.label, 0) + 1

    def operation_executed(self, op: Operation, inputs, result) -> None:
        pass

    def profile(self) -> "BlockProfile":
        return BlockProfile(dict(self.counts))


@dataclass(frozen=True)
class BlockProfile:
    """Immutable block-frequency profile."""

    counts: Dict[str, int]

    def count(self, label: str) -> int:
        return self.counts.get(label, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def frequency(self, label: str) -> float:
        """Fraction of dynamic block entries that were this block."""
        total = self.total
        if total == 0:
            return 0.0
        return self.count(label) / total

    def hottest(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def __len__(self) -> int:
        return len(self.counts)
