"""Value profiling of operations that produce predictable results.

Each executed tracked operation feeds both a stride predictor and an FCM
predictor keyed by the static operation id; the profile records how often
each predictor would have been correct.  "The final value prediction rate
for each operation ... was chosen to be the higher value out of these two
prediction rates" — :meth:`ValueProfile.rate` implements exactly that.

Loads are always tracked (the paper predicts loads).  The paper's
formulation is general — "an operation within a VLIW instruction may have
its destination operand predicted" — so the profiler optionally tracks
long-latency ALU results too (``extra_opcodes``), which the speculation
pass can then predict when ``SpeculationConfig.predict_alu`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Dict, FrozenSet, Optional

from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation

from repro.predict.base import ValuePredictor, _values_equal
from repro.predict.fcm import FCMPredictor
from repro.predict.stride import StridePredictor

#: Long-latency value-producing opcodes worth profiling beyond loads.
LONG_LATENCY_OPCODES: FrozenSet[Opcode] = frozenset(
    {Opcode.MUL, Opcode.DIV, Opcode.MOD, Opcode.FMUL, Opcode.FDIV, Opcode.FSQRT}
)


@dataclass
class LoadValueStats:
    """Per-static-load profiling counters."""

    executions: int = 0
    stride_correct: int = 0
    fcm_correct: int = 0

    @property
    def stride_rate(self) -> float:
        return self.stride_correct / self.executions if self.executions else 0.0

    @property
    def fcm_rate(self) -> float:
        return self.fcm_correct / self.executions if self.executions else 0.0

    @property
    def best_rate(self) -> float:
        return max(self.stride_rate, self.fcm_rate)

    @property
    def best_predictor(self) -> str:
        return "stride" if self.stride_correct >= self.fcm_correct else "fcm"


class ValueProfiler:
    """Execution observer training profile predictors on tracked ops."""

    def __init__(
        self,
        stride: Optional[ValuePredictor] = None,
        fcm: Optional[ValuePredictor] = None,
        extra_opcodes: Collection[Opcode] = (),
    ):
        self._stride = stride if stride is not None else StridePredictor()
        self._fcm = fcm if fcm is not None else FCMPredictor(order=2)
        self._stats: Dict[int, LoadValueStats] = {}
        self._extra = frozenset(extra_opcodes)

    def block_entered(self, block: BasicBlock) -> None:
        pass

    def operation_executed(self, op: Operation, inputs, result) -> None:
        if not (op.is_load or op.opcode in self._extra):
            return
        stats = self._stats.setdefault(op.op_id, LoadValueStats())
        stats.executions += 1
        stride_prediction = self._stride.predict(op.op_id)
        fcm_prediction = self._fcm.predict(op.op_id)
        if stride_prediction is not None and _values_equal(stride_prediction, result):
            stats.stride_correct += 1
        if fcm_prediction is not None and _values_equal(fcm_prediction, result):
            stats.fcm_correct += 1
        self._stride.update(op.op_id, result)
        self._fcm.update(op.op_id, result)

    def profile(self) -> "ValueProfile":
        return ValueProfile(dict(self._stats))


@dataclass(frozen=True)
class ValueProfile:
    """Immutable per-load predictability profile."""

    loads: Dict[int, LoadValueStats]

    def rate(self, op_id: int) -> float:
        """Best-of(stride, FCM) prediction rate, the paper's selection metric."""
        stats = self.loads.get(op_id)
        return stats.best_rate if stats is not None else 0.0

    def executions(self, op_id: int) -> int:
        stats = self.loads.get(op_id)
        return stats.executions if stats is not None else 0

    def predictable_loads(self, threshold: float) -> list[int]:
        """Static load ids whose best rate meets the threshold."""
        return sorted(
            op_id for op_id, stats in self.loads.items() if stats.best_rate >= threshold
        )

    def __len__(self) -> int:
        return len(self.loads)
