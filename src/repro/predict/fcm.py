"""Finite Context Method (FCM) prediction [Sazeides & Smith].

A two-level predictor: the first level keeps, per static operation, the
last *order* values produced (the context); the second level maps a hash
of that context to the value that followed it last time.  FCM captures
repeating non-arithmetic sequences (e.g. values cycling through a small
set) that stride prediction cannot.  This is the "FCM prediction [13]"
profile predictor of the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.predict.base import Key, Value, ValuePredictor


class FCMPredictor(ValuePredictor):
    """Order-``k`` finite-context-method predictor."""

    name = "fcm"

    def __init__(self, order: int = 2, table_bits: int = 16) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("FCM order must be >= 1")
        if table_bits < 1 or table_bits > 30:
            raise ValueError("table_bits must be in [1, 30]")
        self.order = order
        self.table_size = 1 << table_bits
        self._history: Dict[Key, Deque[Value]] = {}
        self._second_level: Dict[Tuple[Key, int], Value] = {}

    def _context_hash(self, history: Deque[Value]) -> int:
        h = 0
        for value in history:
            h = (h * 1000003) ^ hash(value)
        return h % self.table_size

    def predict(self, key: Key) -> Optional[Value]:
        history = self._history.get(key)
        if history is None or len(history) < self.order:
            return None
        return self._second_level.get((key, self._context_hash(history)))

    def update(self, key: Key, actual: Value) -> None:
        history = self._history.setdefault(key, deque(maxlen=self.order))
        if len(history) == self.order:
            self._second_level[(key, self._context_hash(history))] = actual
        history.append(actual)

    def reset(self) -> None:
        super().reset()
        self._history = {}
        self._second_level = {}
