"""Two-delta stride prediction [Eickemeyer & Vassiliadis; Gabbay & Mendelson].

Each static operation tracks its last value and a stride.  The *two-delta*
policy only commits a new stride after seeing the same delta twice in a
row, which keeps one-off jumps (e.g. a pointer rewind at the end of a
row) from destroying an established stride.  This is the "stride [3]"
profile predictor of the paper's experimental section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.predict.base import Key, Value, ValuePredictor


@dataclass
class _StrideEntry:
    last: Value
    stride: Value = 0
    candidate: Value = 0
    seen: int = 1  # number of values observed for this key


class StridePredictor(ValuePredictor):
    """Predict ``last + stride`` with two-delta stride update."""

    name = "stride"

    def __init__(self, two_delta: bool = True) -> None:
        super().__init__()
        self.two_delta = two_delta
        self._table: Dict[Key, _StrideEntry] = {}

    def predict(self, key: Key) -> Optional[Value]:
        entry = self._table.get(key)
        if entry is None or entry.seen < 2:
            # With one observation there is no delta yet; predicting
            # last+0 would just be last-value prediction, which we allow.
            if entry is None:
                return None
            return entry.last
        return entry.last + entry.stride

    def update(self, key: Key, actual: Value) -> None:
        entry = self._table.get(key)
        if entry is None:
            self._table[key] = _StrideEntry(last=actual)
            return
        delta = actual - entry.last
        if self.two_delta:
            if delta == entry.candidate:
                entry.stride = delta
            entry.candidate = delta
        else:
            entry.stride = delta
        entry.last = actual
        entry.seen += 1

    def reset(self) -> None:
        super().reset()
        self._table = {}

    def stride_of(self, key: Key) -> Optional[Value]:
        """Currently committed stride for a key (diagnostics)."""
        entry = self._table.get(key)
        return None if entry is None else entry.stride
