"""Differential Finite Context Method (DFCM) prediction [Goeman et al.].

Where FCM maps a context of recent *values* to the next value, DFCM maps
a context of recent *strides* to the next stride and adds it to the last
value.  This captures patterns neither parent predictor can: repeating
*stride* sequences (e.g. a matrix walk with a row-end correction, whose
value stream is +1,+1,+1,+N,+1,+1,...), while inheriting FCM's ability
to re-learn after a re-base.

Published after the paper (1998-2001 era), DFCM is included as the
natural "next predictor up" for the ablation benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.predict.base import Key, Value, ValuePredictor


class DFCMPredictor(ValuePredictor):
    """Order-``k`` differential finite-context-method predictor."""

    name = "dfcm"

    def __init__(self, order: int = 2, table_bits: int = 16) -> None:
        super().__init__()
        if order < 1:
            raise ValueError("DFCM order must be >= 1")
        if table_bits < 1 or table_bits > 30:
            raise ValueError("table_bits must be in [1, 30]")
        self.order = order
        self.table_size = 1 << table_bits
        self._last: Dict[Key, Value] = {}
        self._stride_history: Dict[Key, Deque[Value]] = {}
        self._second_level: Dict[Tuple[Key, int], Value] = {}

    def _context_hash(self, history: Deque[Value]) -> int:
        h = 0
        for value in history:
            h = (h * 1000003) ^ hash(value)
        return h % self.table_size

    def predict(self, key: Key) -> Optional[Value]:
        history = self._stride_history.get(key)
        if history is None or len(history) < self.order:
            return None
        stride = self._second_level.get((key, self._context_hash(history)))
        if stride is None:
            return None
        return self._last[key] + stride

    def update(self, key: Key, actual: Value) -> None:
        last = self._last.get(key)
        self._last[key] = actual
        if last is None:
            return  # no stride to learn from yet
        stride = actual - last
        history = self._stride_history.setdefault(key, deque(maxlen=self.order))
        if len(history) == self.order:
            self._second_level[(key, self._context_hash(history))] = stride
        history.append(stride)

    def reset(self) -> None:
        super().reset()
        self._last = {}
        self._stride_history = {}
        self._second_level = {}
