"""Saturating-counter confidence estimation for value predictions.

Hardware value predictors gate speculation on confidence so that
low-confidence predictions do not trigger recovery storms.  In this
reproduction the *compiler* gates speculation statically via profiled
prediction rates (the paper's 65% threshold), but the dynamic simulator
can additionally gate at run time with this estimator — an extension the
ablation benchmarks exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable


@dataclass(frozen=True)
class ConfidenceConfig:
    """Counter shape: saturation ceiling, increment/decrement, threshold."""

    max_count: int = 15
    increment: int = 1
    decrement: int = 4   # penalise mispredictions hard, as hardware does
    threshold: int = 8

    def __post_init__(self) -> None:
        if not (0 < self.threshold <= self.max_count):
            raise ValueError("threshold must be in (0, max_count]")
        if self.increment < 1 or self.decrement < 1:
            raise ValueError("increment/decrement must be positive")


class ConfidenceEstimator:
    """Per-key saturating confidence counters."""

    def __init__(self, config: ConfidenceConfig | None = None):
        self.config = config or ConfidenceConfig()
        self._counters: Dict[Hashable, int] = {}

    def confident(self, key: Hashable) -> bool:
        """Should a prediction for ``key`` be acted upon?"""
        return self._counters.get(key, 0) >= self.config.threshold

    def record(self, key: Hashable, correct: bool) -> None:
        cfg = self.config
        count = self._counters.get(key, 0)
        if correct:
            count = min(cfg.max_count, count + cfg.increment)
        else:
            count = max(0, count - cfg.decrement)
        self._counters[key] = count

    def level(self, key: Hashable) -> int:
        return self._counters.get(key, 0)

    def reset(self) -> None:
        self._counters = {}
