"""Common interface for value predictors.

Predictors are keyed by *static operation id* (the analogue of the
instruction address that indexes hardware value-prediction tables).  The
protocol is the standard two-phase one of the value-prediction literature
[Lipasti et al., Sazeides & Smith]:

* ``predict(key)`` — return the predicted next value, or ``None`` when
  the predictor has no basis for a prediction yet;
* ``update(key, actual)`` — train with the architecturally correct value.

The profiling pass (:mod:`repro.profiling.value_profile`) replays a
program's value streams through predictor instances to obtain per-load
prediction rates, and the dynamic simulation uses a live predictor as the
hardware Value Predictor of the paper's Figure 5.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Union

from repro.obs.metrics import MetricsRegistry, NULL_METRICS

Value = Union[int, float]
Key = Hashable


@dataclass
class PredictorStats:
    """Running accuracy accounting for one predictor."""

    predictions: int = 0
    correct: int = 0
    no_prediction: int = 0

    @property
    def attempts(self) -> int:
        return self.predictions + self.no_prediction

    @property
    def accuracy(self) -> float:
        """Fraction of actual predictions that were correct."""
        if self.predictions == 0:
            return 0.0
        return self.correct / self.predictions

    @property
    def coverage(self) -> float:
        """Fraction of opportunities for which a prediction was offered."""
        if self.attempts == 0:
            return 0.0
        return self.predictions / self.attempts

    @property
    def hit_rate(self) -> float:
        """Correct predictions over all opportunities (accuracy x coverage)."""
        if self.attempts == 0:
            return 0.0
        return self.correct / self.attempts


class ValuePredictor(abc.ABC):
    """Abstract value predictor."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = PredictorStats()
        self._per_key: Dict[Key, PredictorStats] = {}
        self._metrics: MetricsRegistry = NULL_METRICS

    # -- core protocol -----------------------------------------------------

    @abc.abstractmethod
    def predict(self, key: Key) -> Optional[Value]:
        """Predicted next value for ``key``, or ``None`` if unknown."""

    @abc.abstractmethod
    def update(self, key: Key, actual: Value) -> None:
        """Train the predictor with the true outcome for ``key``."""

    def reset(self) -> None:
        """Discard all learned state and statistics."""
        self.stats = PredictorStats()
        self._per_key = {}

    def attach_metrics(self, metrics: MetricsRegistry) -> None:
        """Mirror :meth:`observe` outcomes into a metrics registry as
        ``predict.hit`` / ``predict.miss`` / ``predict.no_prediction``
        counters labelled by predictor type."""
        self._metrics = metrics

    # -- instrumented use ----------------------------------------------------

    def observe(self, key: Key, actual: Value) -> Optional[Value]:
        """Predict, score against ``actual``, then train.  Returns the
        prediction that was made (or ``None``)."""
        prediction = self.predict(key)
        stats = self._per_key.setdefault(key, PredictorStats())
        if prediction is None:
            self.stats.no_prediction += 1
            stats.no_prediction += 1
            self._metrics.inc("predict.no_prediction", label=self.name)
        else:
            self.stats.predictions += 1
            stats.predictions += 1
            correct = _values_equal(prediction, actual)
            if correct:
                self.stats.correct += 1
                stats.correct += 1
            self._metrics.inc(
                "predict.hit" if correct else "predict.miss", label=self.name
            )
        self.update(key, actual)
        return prediction

    def key_stats(self, key: Key) -> PredictorStats:
        return self._per_key.get(key, PredictorStats())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} acc={self.stats.accuracy:.3f} n={self.stats.attempts}>"


def _values_equal(a: Value, b: Value) -> bool:
    """Exact match, as value-prediction hardware compares bit patterns."""
    if isinstance(a, float) or isinstance(b, float):
        return float(a) == float(b)
    return a == b
