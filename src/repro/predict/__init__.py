"""Value predictors: last-value, stride, FCM, hybrid, plus the hardware
value-prediction table and confidence estimation."""

from repro.predict.base import Key, PredictorStats, Value, ValuePredictor
from repro.predict.confidence import ConfidenceConfig, ConfidenceEstimator
from repro.predict.dfcm import DFCMPredictor
from repro.predict.fcm import FCMPredictor
from repro.predict.hybrid import HybridPredictor, default_hybrid
from repro.predict.last_value import LastValuePredictor
from repro.predict.stride import StridePredictor
from repro.predict.table import ValuePredictionTable

__all__ = [
    "ConfidenceConfig",
    "ConfidenceEstimator",
    "DFCMPredictor",
    "FCMPredictor",
    "HybridPredictor",
    "Key",
    "LastValuePredictor",
    "PredictorStats",
    "StridePredictor",
    "Value",
    "ValuePredictionTable",
    "ValuePredictor",
    "default_hybrid",
]
