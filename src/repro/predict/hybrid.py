"""Hybrid (tournament) value prediction.

The paper profiles each operation with both stride and FCM and uses "the
higher value out of these two prediction rates".  The run-time analogue is
a tournament predictor: both components train on every outcome, and a
per-key saturating chooser selects which component's prediction to use.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.predict.base import Key, Value, ValuePredictor, _values_equal
from repro.predict.fcm import FCMPredictor
from repro.predict.stride import StridePredictor


class HybridPredictor(ValuePredictor):
    """Tournament over component predictors with a per-key chooser.

    The chooser is a saturating counter per key: positive favours the
    first component, negative the second (generalised to N components as
    per-component scores).
    """

    name = "hybrid"

    def __init__(
        self,
        components: Optional[Sequence[ValuePredictor]] = None,
        counter_max: int = 8,
    ) -> None:
        super().__init__()
        self.components: list[ValuePredictor] = list(
            components if components is not None else (StridePredictor(), FCMPredictor())
        )
        if not self.components:
            raise ValueError("hybrid predictor needs at least one component")
        self.counter_max = counter_max
        self._scores: Dict[Key, list[int]] = {}

    def _score_row(self, key: Key) -> list[int]:
        return self._scores.setdefault(key, [0] * len(self.components))

    def predict(self, key: Key) -> Optional[Value]:
        row = self._score_row(key)
        # Try components from best score down; first one with an actual
        # prediction wins.
        order = sorted(range(len(self.components)), key=lambda i: row[i], reverse=True)
        for i in order:
            prediction = self.components[i].predict(key)
            if prediction is not None:
                return prediction
        return None

    def update(self, key: Key, actual: Value) -> None:
        row = self._score_row(key)
        for i, component in enumerate(self.components):
            prediction = component.predict(key)
            if prediction is not None:
                if _values_equal(prediction, actual):
                    row[i] = min(self.counter_max, row[i] + 1)
                else:
                    row[i] = max(-self.counter_max, row[i] - 1)
            component.update(key, actual)

    def reset(self) -> None:
        super().reset()
        for component in self.components:
            component.reset()
        self._scores = {}

    def chosen_component(self, key: Key) -> ValuePredictor:
        """The component the chooser currently favours for a key."""
        row = self._score_row(key)
        best = max(range(len(self.components)), key=lambda i: row[i])
        return self.components[best]


def default_hybrid() -> HybridPredictor:
    """The paper's profile configuration: stride + order-2 FCM."""
    return HybridPredictor([StridePredictor(), FCMPredictor(order=2)])
