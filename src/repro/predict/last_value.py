"""Last-value prediction [Lipasti & Shen].

Predicts that an instruction will produce the same value it produced the
previous time.  Included as the simplest member of the predictor family
and as a baseline for the ablation benchmarks; the paper itself profiles
with stride and FCM.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.predict.base import Key, Value, ValuePredictor


class LastValuePredictor(ValuePredictor):
    """Predict the previously seen value for the same static operation."""

    name = "last-value"

    def __init__(self) -> None:
        super().__init__()
        self._last: Dict[Key, Value] = {}

    def predict(self, key: Key) -> Optional[Value]:
        return self._last.get(key)

    def update(self, key: Key, actual: Value) -> None:
        self._last[key] = actual

    def reset(self) -> None:
        super().reset()
        self._last = {}
