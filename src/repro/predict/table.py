"""The hardware Value Prediction Table of the paper's Figure 5.

The VLIW Engine's ``LdPred`` operation reads its value from this table
rather than from memory.  The table wraps any :class:`ValuePredictor`
behind a fixed-capacity, direct-mapped structure so that capacity and
aliasing effects can be modelled (an infinite table is the default used
by the headline experiments, matching the paper's profile-based method).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.predict.base import Key, Value, ValuePredictor
from repro.predict.hybrid import default_hybrid


class ValuePredictionTable:
    """Capacity-bounded front end over a trainable predictor.

    ``capacity=None`` models an unbounded table (every static operation
    keeps its own entry).  With a finite capacity the table is
    direct-mapped on ``hash(key) % capacity`` and a conflicting key evicts
    the previous occupant's training state *visibility* (the underlying
    predictor still trains, but predictions are only served for the
    current occupant — modelling tag mismatch).
    """

    def __init__(
        self,
        predictor: Optional[ValuePredictor] = None,
        capacity: Optional[int] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.predictor = predictor if predictor is not None else default_hybrid()
        self.capacity = capacity
        self._occupant: Dict[int, Key] = {}
        self.lookups = 0
        self.tag_misses = 0

    def _slot(self, key: Key) -> Optional[int]:
        if self.capacity is None:
            return None
        return hash(key) % self.capacity

    def lookup(self, key: Key) -> Optional[Value]:
        """Predicted value for ``key`` or ``None`` (no entry / tag miss)."""
        self.lookups += 1
        slot = self._slot(key)
        if slot is not None:
            occupant = self._occupant.get(slot)
            if occupant != key:
                if occupant is not None:
                    self.tag_misses += 1  # conflict: another key owns the slot
                return None
        return self.predictor.predict(key)

    def train(self, key: Key, actual: Value) -> None:
        """Update the table with the verified outcome of ``key``."""
        slot = self._slot(key)
        if slot is not None:
            self._occupant[slot] = key
        self.predictor.update(key, actual)

    def observe(self, key: Key, actual: Value) -> Optional[Value]:
        """Lookup + score + train in one step (profiling convenience)."""
        prediction = self.lookup(key)
        self.train(key, actual)
        return prediction

    def reset(self) -> None:
        self.predictor.reset()
        self._occupant = {}
        self.lookups = 0
        self.tag_misses = 0

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<ValuePredictionTable cap={cap} predictor={self.predictor.name}>"
