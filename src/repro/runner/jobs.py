"""Declarative job specifications for the experiment pipeline.

A :class:`JobSpec` names one unit of work — one pipeline stage applied to
one (benchmark, scale, machine, speculation-config) point — without
executing it.  Its :meth:`~JobSpec.key` is a content hash over every
input that can change the result, plus a code-version salt, so the key
doubles as the address of the result in the on-disk cache
(:mod:`repro.runner.cache`): identical settings hit, any changed knob
misses, and bumping :data:`CODE_VERSION` invalidates everything at once.

Stage semantics are looked up in a registry (:func:`register_stage`), so
tests can inject synthetic stages (flaky, slow) and future pipelines can
add stages without touching the executor.  The built-in stages mirror
``Evaluation``:

========== ================================ ============================
stage      inputs                           produces
========== ================================ ============================
build      benchmark, scale                 ``Program``
trace      build                            ``ValueTrace``
profile    build + trace                    ``ProfileData``
compile    build + profile + machine/config ``ProgramCompilation``
simulate   compile + trace (+ model_icache) ``ProgramSimResult``
========== ================================ ============================

``trace`` interprets the built program exactly once and records the
value stream (:mod:`repro.trace`); ``profile`` and ``simulate`` then
*replay* it instead of re-interpreting.  Like ``profile``, the trace key
excludes the machine and speculation config, so every sweep point of a
threshold/predictor/machine ablation shares one cached interpretation.
Setting ``REPRO_NO_TRACE=1`` removes the trace stage from the graph and
every stage interprets live, as before.

``build`` exists because operation ids are assigned from a process-local
counter: profiles and compilations reference programs *by op id*, so all
downstream stages must consume the one program object the build stage
produced (shipped by pickle) rather than rebuilding it in whatever
counter state their worker happens to be in.  The build stage resets the
counter first, making the shipped program canonical.

``build`` and ``profile`` deliberately exclude the speculation config
from their keys: threshold and predictor ablations re-use the same
profiling run, which is where most of the wall time goes.

Compilation-shaped stages additionally carry a
:class:`repro.compiler.PipelineConfig`: ``build`` runs its
program-rewriting prefix (classical optimisation, loop unrolling),
``compile`` its codegen passes, and the config's canonical form joins
the job key — so cache entries are addressed by *pipeline
specification*, and e.g. every unroll variant of the region sweeps is
its own durable cache entry.  ``build``/``profile`` keys see only the
program-rewriting prefix (:meth:`PipelineConfig.frontend`), keeping the
profile shared across codegen-only config changes; the all-default
pipeline normalises to ``None`` so standard jobs key exactly as before.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.compiler.config import PipelineConfig, canonical_value as _canonical
from repro.core.speculation import SpeculationConfig
from repro.machine.description import MachineDescription

#: Bump whenever a pipeline stage's semantics change in a way that makes
#: previously cached results wrong.  Part of every job key.
#: 2026.08.7: profile/simulate stages route through the batched
#: struct-of-arrays engine (byte-identical results, but the batch
#: context changes which memo state a worker accumulates) and the
#: ``batch_simulate`` stage joined the registry.
CODE_VERSION = "2026.08.7"

#: The built-in pipeline stages, in dependency order.
PIPELINE_STAGES = (
    "build", "trace", "profile", "compile", "simulate", "batch_simulate"
)


def _normalise_pipeline(
    pipeline: Optional[PipelineConfig], frontend_only: bool = False
) -> Optional[PipelineConfig]:
    """Reduce a pipeline config to its job-key-relevant core.

    ``frontend_only`` keeps just the program-rewriting prefix (what the
    ``build``/``profile`` stages run).  A pipeline equivalent to the
    all-default one normalises to ``None`` so explicit-default callers
    share cache keys with callers that never mention a pipeline.
    """
    if pipeline is None:
        return None
    if frontend_only:
        frontend = pipeline.frontend()
        return frontend if frontend.program_passes else None
    return None if pipeline.is_standard() else pipeline


@dataclass(frozen=True)
class JobSpec:
    """One pipeline stage applied to one parameter point.

    Attributes:
        stage: registered stage name (``profile``/``compile``/``simulate``
            or a test-injected stage).
        benchmark: workload name from :data:`repro.workloads.BENCHMARKS`.
        scale: workload size multiplier.
        machine: target machine, or ``None`` for machine-independent
            stages (profiling).
        spec_config: speculation knobs, or ``None`` for stages upstream
            of the speculation pass.
        pipeline: compiler pipeline configuration, or ``None`` for the
            standard pipeline (``build``/``profile`` specs carry only
            its program-rewriting prefix; see :func:`_normalise_pipeline`).
        params: extra stage parameters as a sorted tuple of
            ``(name, value)`` pairs — e.g. ``(("model_icache", True),)``.
    """

    stage: str
    benchmark: str
    scale: float = 1.0
    machine: Optional[MachineDescription] = None
    spec_config: Optional[SpeculationConfig] = None
    params: Tuple[Tuple[str, Any], ...] = ()
    pipeline: Optional[PipelineConfig] = None

    def key(self) -> str:
        """Content hash addressing this job's result in the disk cache.

        The machine joins the key through its spec ``fingerprint()`` —
        the content hash of its canonical declarative form — so every
        distinct machine axis (width, FU mix, latencies, buffer
        geometry, predictor, ...) keys distinctly, and a machine loaded
        from a spec file keys identically to the equivalent registry
        constant.
        """
        payload = json.dumps(
            {
                "code_version": CODE_VERSION,
                "stage": self.stage,
                "benchmark": self.benchmark,
                "scale": repr(self.scale),
                "machine": (
                    None if self.machine is None else self.machine.fingerprint()
                ),
                "spec_config": _canonical(self.spec_config),
                "params": _canonical(self.params),
                # The canonical form, not the dataclass: it excludes
                # result-neutral knobs such as `verify`.
                "pipeline": (
                    self.pipeline.canonical() if self.pipeline else None
                ),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @property
    def job_id(self) -> str:
        """Human-readable identifier, e.g. ``simulate:swim@playdoh-4w``."""
        parts = [f"{self.stage}:{self.benchmark}"]
        if self.machine is not None:
            parts.append(f"@{self.machine.name}")
        flags = [
            name if value is True else f"{name}={value}"
            for name, value in self.params
            if value not in (False, None)
        ]
        if flags:
            parts.append("[" + ",".join(flags) + "]")
        if self.pipeline is not None:
            front = ",".join(p.render() for p in self.pipeline.program_passes)
            parts.append(
                f"+{front}" if front
                else f"+pipeline:{self.pipeline.fingerprint()[:8]}"
            )
        return "".join(parts)

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class Job:
    """A :class:`JobSpec` plus the specs whose results it consumes."""

    spec: JobSpec
    deps: Tuple[JobSpec, ...] = ()

    def key(self) -> str:
        return self.spec.key()

    @property
    def job_id(self) -> str:
        return self.spec.job_id


# -- stage registry ----------------------------------------------------------

#: stage name -> fn(spec, dep_results: Dict[key, Any]) -> result
StageFn = Callable[[JobSpec, Dict[str, Any]], Any]

_STAGES: Dict[str, StageFn] = {}


def register_stage(name: str, fn: StageFn) -> None:
    """Register (or override) the implementation of a stage.

    Worker processes inherit the registry through ``fork``; under a
    ``spawn`` start method injected stages must be registered at import
    time of the module that defines them.
    """
    _STAGES[name] = fn


def stage_function(name: str) -> StageFn:
    try:
        return _STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; registered: {sorted(_STAGES)}"
        ) from None


def execute_spec(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    """Run one job body.  This is the function worker processes execute."""
    return stage_function(spec.stage)(spec, dep_results)


def dep_result(spec: JobSpec, dep_results: Dict[str, Any], stage: str) -> Any:
    """Fetch the dependency result produced by ``stage`` for ``spec``.

    Dependency results are keyed by content hash; the expected specs are
    re-derived from :func:`default_deps`, which is the same closure the
    graph materialises, so lookup is exact.
    """
    for dep in default_deps(spec):
        if dep.stage == stage and dep.key() in dep_results:
            return dep_results[dep.key()]
    raise RuntimeError(f"{spec.job_id}: missing {stage} dependency result")


def adopt_program(program: Any) -> Any:
    """Make a program numbered elsewhere safe for op-creating passes here.

    A program that arrived by pickle (cache hit, worker hand-off) carries
    op ids from a foreign counter state; the local counter may sit *below*
    its maximum — notably after an in-process ``build`` of a smaller
    benchmark reset it.  Bump the counter past the program's ids so the
    speculation pass and the unroller cannot mint colliding ids.
    """
    from repro.ir.operation import ensure_operation_ids_above

    max_id = max(
        (
            op.op_id
            for function in program
            for block in function
            for op in block.operations
        ),
        default=0,
    )
    ensure_operation_ids_above(max_id)
    return program


def _run_build(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    from repro.ir.operation import reset_operation_ids
    from repro.workloads.suite import load_benchmark

    # Canonical ids: every build of (benchmark, scale, pipeline front
    # end) numbers its operations identically, wherever it runs.
    reset_operation_ids()
    program = load_benchmark(spec.benchmark, scale=spec.scale)
    if spec.pipeline is not None and spec.pipeline.program_passes:
        from repro.compiler import PassManager

        program = PassManager(spec.pipeline).run_program_passes(program)
    return program


def _maybe_trace(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    """The spec's trace dependency result, or ``None``.

    Tolerant of absence: with ``REPRO_NO_TRACE=1`` the graph carries no
    trace jobs, and a graph built under one setting may execute under
    another — a missing trace simply means "interpret live".
    """
    for dep in default_deps(spec):
        if dep.stage == "trace" and dep.key() in dep_results:
            return dep_results[dep.key()]
    return None


def _run_trace(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    from repro.trace.capture import capture_trace

    program = dep_result(spec, dep_results, "build")
    return capture_trace(program)


def _run_profile(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    from repro.profiling.profile_run import profile_program
    from repro.trace.format import TraceMismatch

    program = dep_result(spec, dep_results, "build")
    profile_alu = bool(spec.param("profile_alu", False))
    trace = _maybe_trace(spec, dep_results)
    if trace is not None:
        try:
            # batch=True: column-wise profiling off the shared trace
            # decode (byte-identical; scalar replay off the common path).
            return profile_program(
                program, profile_alu=profile_alu, trace=trace, batch=True
            )
        except TraceMismatch:
            pass
    return profile_program(program, profile_alu=profile_alu)


def _run_compile(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    from repro.compiler import PassManager

    if spec.machine is None:
        raise ValueError(f"{spec.job_id}: compile jobs need a machine")
    # The build dependency already ran the pipeline's program-rewriting
    # prefix; only the codegen passes run here.
    program = adopt_program(dep_result(spec, dep_results, "build"))
    profile = dep_result(spec, dep_results, "profile")
    return PassManager(spec.pipeline).compile(
        program, spec.machine, profile, spec_config=spec.spec_config
    )


def _run_simulate(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    from repro.core.program_sim import simulate_program
    from repro.trace.format import TraceMismatch

    compilation = dep_result(spec, dep_results, "compile")
    model_icache = bool(spec.param("model_icache", False))
    collect_metrics = bool(spec.param("collect_metrics", False))
    collect_cycles = bool(spec.param("collect_cycles", False))
    trace = _maybe_trace(spec, dep_results)
    if trace is not None:
        try:
            return simulate_program(
                compilation,
                model_icache=model_icache,
                collect_metrics=collect_metrics,
                collect_cycles=collect_cycles,
                trace=trace,
                batch=True,
            )
        except TraceMismatch:
            pass
    return simulate_program(
        compilation,
        model_icache=model_icache,
        collect_metrics=collect_metrics,
        collect_cycles=collect_cycles,
    )


def _run_batch_simulate(spec: JobSpec, dep_results: Dict[str, Any]) -> Any:
    """Simulate one benchmark on B machine points in a single pass.

    The job's dependencies are the B compile jobs (plus the shared
    trace); their results arrive here together, so one worker simulates
    all points off one trace decode through the batched engine instead
    of B workers each decoding it.  Returns ``{machine fingerprint:
    ProgramSimResult}`` — each entry byte-identical to the matching
    scalar ``simulate`` job's result.
    """
    from repro.core.metrics import ProgramCompilation
    from repro.core.program_sim import simulate_program
    from repro.trace.format import TraceMismatch

    compilations = sorted(
        (v for v in dep_results.values() if isinstance(v, ProgramCompilation)),
        key=lambda comp: comp.machine.fingerprint(),
    )
    wanted = spec.param("machines", ())
    if len(compilations) != len(wanted):
        raise RuntimeError(
            f"{spec.job_id}: expected {len(wanted)} compile dependency "
            f"results, got {len(compilations)}"
        )
    collect_metrics = bool(spec.param("collect_metrics", False))
    collect_cycles = bool(spec.param("collect_cycles", False))
    trace = _maybe_trace(spec, dep_results)
    results = {}
    for comp in compilations:
        result = None
        if trace is not None:
            try:
                result = simulate_program(
                    comp,
                    collect_metrics=collect_metrics,
                    collect_cycles=collect_cycles,
                    trace=trace,
                    batch=True,
                )
            except TraceMismatch:
                trace = None
        if result is None:
            result = simulate_program(
                comp,
                collect_metrics=collect_metrics,
                collect_cycles=collect_cycles,
            )
        results[comp.machine.fingerprint()] = result
    return results


register_stage("build", _run_build)
register_stage("trace", _run_trace)
register_stage("profile", _run_profile)
register_stage("compile", _run_compile)
register_stage("simulate", _run_simulate)
register_stage("batch_simulate", _run_batch_simulate)


# -- spec/job constructors ---------------------------------------------------

def build_spec(
    benchmark: str,
    scale: float = 1.0,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    return JobSpec(
        "build", benchmark, scale=scale,
        pipeline=_normalise_pipeline(pipeline, frontend_only=True),
    )


def trace_spec(
    benchmark: str,
    scale: float = 1.0,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    """One value-trace capture per (benchmark, scale, frontend pipeline).

    Deliberately machine- and config-free, like ``profile``: the
    architectural value stream is invariant across everything downstream
    of the build, which is what lets a whole ablation sweep share it.
    """
    return JobSpec(
        "trace", benchmark, scale=scale,
        pipeline=_normalise_pipeline(pipeline, frontend_only=True),
    )


def profile_spec(
    benchmark: str,
    scale: float = 1.0,
    profile_alu: bool = False,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    params = (("profile_alu", True),) if profile_alu else ()
    return JobSpec(
        "profile", benchmark, scale=scale, params=params,
        pipeline=_normalise_pipeline(pipeline, frontend_only=True),
    )


def compile_spec(
    benchmark: str,
    machine: MachineDescription,
    scale: float = 1.0,
    spec_config: Optional[SpeculationConfig] = None,
    profile_alu: bool = False,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    config = spec_config or SpeculationConfig()
    params = (("profile_alu", True),) if profile_alu else ()
    return JobSpec(
        "compile", benchmark, scale=scale, machine=machine,
        spec_config=config, params=params,
        pipeline=_normalise_pipeline(pipeline),
    )


def simulate_spec(
    benchmark: str,
    machine: MachineDescription,
    scale: float = 1.0,
    spec_config: Optional[SpeculationConfig] = None,
    model_icache: bool = False,
    profile_alu: bool = False,
    collect_metrics: bool = False,
    collect_cycles: bool = False,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    config = spec_config or SpeculationConfig()
    # Flags join the params tuple only when set, so enabling a new
    # option never disturbs the cache keys of existing jobs.
    params: Tuple[Tuple[str, Any], ...] = ()
    if collect_cycles:
        params += (("collect_cycles", True),)
    if collect_metrics:
        params += (("collect_metrics", True),)
    if model_icache:
        params += (("model_icache", True),)
    if profile_alu:
        params += (("profile_alu", True),)
    return JobSpec(
        "simulate", benchmark, scale=scale, machine=machine,
        spec_config=config, params=params,
        pipeline=_normalise_pipeline(pipeline),
    )


def batch_simulate_spec(
    benchmark: str,
    machines: Sequence[MachineDescription],
    scale: float = 1.0,
    spec_config: Optional[SpeculationConfig] = None,
    collect_metrics: bool = False,
    collect_cycles: bool = False,
    pipeline: Optional[PipelineConfig] = None,
) -> JobSpec:
    """One batched simulation of ``benchmark`` over every machine point.

    Keyed by the *set* of machine spec fingerprints (sorted, so machine
    order never splits cache entries): the job's result is the whole
    sweep slice, one :class:`ProgramSimResult` per machine, each
    byte-identical to the corresponding scalar ``simulate`` job.
    """
    config = spec_config or SpeculationConfig()
    fingerprints = tuple(sorted(m.fingerprint() for m in machines))
    if len(set(fingerprints)) != len(fingerprints):
        raise ValueError(
            f"batch_simulate:{benchmark}: duplicate machine fingerprints"
        )
    params: Tuple[Tuple[str, Any], ...] = (("machines", fingerprints),)
    if collect_cycles:
        params += (("collect_cycles", True),)
    if collect_metrics:
        params += (("collect_metrics", True),)
    return JobSpec(
        "batch_simulate", benchmark, scale=scale,
        spec_config=config, params=params,
        pipeline=_normalise_pipeline(pipeline),
    )


def batch_simulate_job(
    benchmark: str,
    machines: Sequence[MachineDescription],
    scale: float = 1.0,
    spec_config: Optional[SpeculationConfig] = None,
    collect_metrics: bool = False,
    collect_cycles: bool = False,
    pipeline: Optional[PipelineConfig] = None,
) -> Job:
    """A :func:`batch_simulate_spec` job with its compile + trace deps.

    The compile dependencies carry the actual machine objects (a spec
    fingerprint alone cannot rebuild one), so batch jobs must be
    constructed through this helper rather than :func:`job_for`.
    """
    from repro.trace.store import replay_enabled

    spec = batch_simulate_spec(
        benchmark, machines, scale,
        spec_config=spec_config,
        collect_metrics=collect_metrics,
        collect_cycles=collect_cycles,
        pipeline=pipeline,
    )
    deps = tuple(
        compile_spec(
            benchmark, machine, scale,
            spec_config=spec_config, pipeline=pipeline,
        )
        for machine in machines
    )
    deps += default_deps(spec)
    return Job(spec, deps=deps)


def default_deps(spec: JobSpec) -> Tuple[JobSpec, ...]:
    """The natural upstream specs of a built-in pipeline stage.

    Used both by the job constructors and by the graph when it has to
    materialise a dependency that was only named, never constructed.
    Injected test stages have no implicit dependencies.
    """
    from repro.trace.store import replay_enabled

    profile_alu = bool(spec.param("profile_alu", False))
    with_trace = replay_enabled()
    if spec.stage == "trace":
        return (build_spec(spec.benchmark, spec.scale, spec.pipeline),)
    if spec.stage == "profile":
        deps = (build_spec(spec.benchmark, spec.scale, spec.pipeline),)
        if with_trace:
            deps += (trace_spec(spec.benchmark, spec.scale, spec.pipeline),)
        return deps
    if spec.stage == "compile":
        return (
            build_spec(spec.benchmark, spec.scale, spec.pipeline),
            profile_spec(
                spec.benchmark, spec.scale, profile_alu, spec.pipeline
            ),
        )
    if spec.stage == "simulate":
        if spec.machine is None:
            raise ValueError(f"{spec.job_id}: simulate jobs need a machine")
        deps = (
            compile_spec(
                spec.benchmark, spec.machine, spec.scale,
                spec.spec_config, profile_alu, spec.pipeline,
            ),
        )
        if with_trace:
            deps += (trace_spec(spec.benchmark, spec.scale, spec.pipeline),)
        return deps
    if spec.stage == "batch_simulate":
        # Only the trace dep is derivable from the spec: the compile
        # deps need machine objects, which batch_simulate_job attaches.
        if with_trace:
            return (trace_spec(spec.benchmark, spec.scale, spec.pipeline),)
        return ()
    return ()


def job_for(spec: JobSpec) -> Job:
    """Wrap ``spec`` as a :class:`Job` with its natural dependencies."""
    return Job(spec, deps=default_deps(spec))


def build_job(benchmark: str, scale: float = 1.0, **kw: Any) -> Job:
    return job_for(build_spec(benchmark, scale, **kw))


def trace_job(benchmark: str, scale: float = 1.0, **kw: Any) -> Job:
    return job_for(trace_spec(benchmark, scale, **kw))


def profile_job(benchmark: str, scale: float = 1.0, **kw: Any) -> Job:
    return job_for(profile_spec(benchmark, scale, **kw))


def compile_job(
    benchmark: str, machine: MachineDescription, scale: float = 1.0, **kw: Any
) -> Job:
    return job_for(compile_spec(benchmark, machine, scale, **kw))


def simulate_job(
    benchmark: str, machine: MachineDescription, scale: float = 1.0, **kw: Any
) -> Job:
    return job_for(simulate_spec(benchmark, machine, scale, **kw))


def pipeline_jobs(
    benchmarks: Sequence[str],
    machines: Sequence[MachineDescription],
    scale: float = 1.0,
    spec_config: Optional[SpeculationConfig] = None,
    simulate_variants: Sequence[bool] = (False,),
) -> Tuple[Job, ...]:
    """The full profile -> compile -> simulate graph for a sweep.

    ``simulate_variants`` lists the ``model_icache`` settings to simulate
    per (benchmark, machine) point.
    """
    out = []
    for benchmark in benchmarks:
        out.append(profile_job(benchmark, scale))
        for machine in machines:
            out.append(
                compile_job(benchmark, machine, scale, spec_config=spec_config)
            )
            for model_icache in simulate_variants:
                out.append(
                    simulate_job(
                        benchmark,
                        machine,
                        scale,
                        spec_config=spec_config,
                        model_icache=model_icache,
                    )
                )
    return tuple(out)
