"""Structured progress events: JSON-lines stream + human renderer.

Every significant runner action emits one event.  The JSONL file (opt-in
via ``--events <path>``) is the machine-readable audit trail — it is how
the acceptance check "a warm rerun executes zero simulate jobs" is
verified — while :class:`ProgressRenderer` turns the same stream into
one-line progress output on stderr.

Event schema (one JSON object per line)::

    {"ts": <seconds since run start>, "run_id": <hex id>, "event": <type>,
     ...fields}

Each :class:`EventLog` instance stamps every record with a fresh
``run_id`` and *truncates* the JSONL file it is given, so a rerun with
the same ``--events`` path never interleaves with a previous run's
records.  :func:`read_events` can still filter multi-run files (produced
by external concatenation) by ``run_id``.

Types and their extra fields:

===============  ============================================================
``run_start``    ``total_jobs``, ``jobs`` (worker count)
``job_start``    ``job``, ``stage``, ``key``, ``attempt``
``cache_hit``    ``job``, ``stage``, ``key``
``cache_miss``   ``job``, ``stage``, ``key``
``job_finish``   ``job``, ``stage``, ``key``, ``cached``, ``wall_time``,
                 ``attempt``
``job_retry``    ``job``, ``stage``, ``key``, ``attempt``, ``error``,
                 ``backoff``
``job_failed``   ``job``, ``stage``, ``key``, ``attempts``, ``error``
``fallback``     ``reason`` (pool unavailable / worker died)
``run_finish``   ``executed``, ``cache_hits``, ``retries``, ``failures``,
                 ``wall_time``, ``executed_by_stage``
===============  ============================================================
"""

from __future__ import annotations

import json
import sys
import time
import uuid
from typing import Any, Dict, IO, Iterable, List, Optional


class ProgressRenderer:
    """Human one-liners for the event stream (``[ 7/40] simulate:li ...``)."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream if stream is not None else sys.stderr
        self._total = 0
        self._done = 0

    def handle(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        if kind == "run_start":
            self._total = event["total_jobs"]
            self._done = 0
            print(
                f"runner: {self._total} jobs on {event['jobs']} worker(s)",
                file=self.stream,
            )
        elif kind == "job_finish":
            self._done += 1
            how = "cached" if event["cached"] else f"{event['wall_time']:.2f}s"
            print(
                f"[{self._done:>{len(str(self._total))}}/{self._total}] "
                f"{event['job']} ({how})",
                file=self.stream,
            )
        elif kind == "job_retry":
            print(
                f"retry   {event['job']} (attempt {event['attempt']}): "
                f"{event['error']}",
                file=self.stream,
            )
        elif kind == "job_failed":
            print(
                f"FAILED  {event['job']} after {event['attempts']} attempt(s): "
                f"{event['error']}",
                file=self.stream,
            )
        elif kind == "fallback":
            print(f"runner: falling back to serial — {event['reason']}", file=self.stream)
        elif kind == "run_finish":
            print(
                f"runner: {event['executed']} executed, "
                f"{event['cache_hits']} cached, {event['retries']} retried "
                f"in {event['wall_time']:.2f}s",
                file=self.stream,
            )


class EventLog:
    """Collects runner events; optionally tees them to JSONL and a renderer."""

    def __init__(
        self,
        path: Optional[str] = None,
        renderer: Optional[ProgressRenderer] = None,
    ):
        self.path = path
        self.renderer = renderer
        self.run_id = uuid.uuid4().hex[:12]
        self.events: List[Dict[str, Any]] = []
        self._fh: Optional[IO[str]] = None
        self._t0 = time.monotonic()
        # Session counters, also summarised in ``run_finish``.
        self.executed = 0
        self.executed_by_stage: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.failures = 0
        if path:
            # Truncate: one file = one run.  Appending (the historical
            # behaviour) interleaved reruns and broke any consumer that
            # counted events — e.g. the warm-rerun acceptance check.
            self._fh = open(path, "w", encoding="utf-8")

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        record = {
            "ts": round(time.monotonic() - self._t0, 6),
            "run_id": self.run_id,
            "event": event,
        }
        record.update(fields)
        self.events.append(record)
        if event == "cache_hit":
            self.cache_hits += 1
        elif event == "cache_miss":
            self.cache_misses += 1
        elif event == "job_retry":
            self.retries += 1
        elif event == "job_failed":
            self.failures += 1
        elif event == "job_finish" and not fields.get("cached"):
            self.executed += 1
            stage = fields.get("stage", "unknown")
            self.executed_by_stage[stage] = (
                self.executed_by_stage.get(stage, 0) + 1
            )
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=str) + "\n")
            self._fh.flush()
        if self.renderer is not None:
            self.renderer.handle(record)
        return record

    def replay(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Re-emit an externally-produced record into this log.

        Used by the service client to mirror a broker's per-sweep event
        stream into the local log: the record keeps its payload fields
        but is re-stamped with *this* log's ``run_id`` and clock, and it
        updates the same session counters a locally-emitted event would
        (``cache_hit``/``job_finish``/...), so ``summary()`` and the
        JSONL file describe the remote run as if it were local.
        """
        kind = str(record.get("event", "unknown"))
        fields = {
            k: v for k, v in record.items() if k not in ("ts", "run_id", "event")
        }
        return self.emit(kind, **fields)

    def of_type(self, event: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["event"] == event]

    def summary(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "executed_by_stage": dict(sorted(self.executed_by_stage.items())),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retries": self.retries,
            "failures": self.failures,
        }

    def chrome_trace(self) -> Dict[str, Any]:
        """This run's events as a Chrome trace-event JSON object.

        Job start/finish pairs become spans on per-stage runner tracks;
        see :func:`repro.obs.perfetto.runner_span_events`.
        """
        from repro.obs.perfetto import chrome_trace, runner_span_events

        return chrome_trace(runner_span_events(self.events))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_events(path: str, run_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Parse a JSONL events file (skipping blank and truncated lines).

    ``run_id`` restricts the result to one run's records — useful for
    files that hold several concatenated runs.
    """
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if run_id is not None and record.get("run_id") != run_id:
                continue
            out.append(record)
    return out


def last_run_id(events: Iterable[Dict[str, Any]]) -> Optional[str]:
    """The ``run_id`` of the last record carrying one, or ``None``."""
    found: Optional[str] = None
    for e in events:
        rid = e.get("run_id")
        if rid is not None:
            found = rid
    return found


def executed_jobs(
    events: Iterable[Dict[str, Any]],
    stage: Optional[str] = None,
    run_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """``job_finish`` events that actually ran (not cache hits).

    Optionally filtered to one pipeline ``stage`` and/or one ``run_id``.
    """
    return [
        e
        for e in events
        if e.get("event") == "job_finish"
        and not e.get("cached")
        and (stage is None or e.get("stage") == stage)
        and (run_id is None or e.get("run_id") == run_id)
    ]
