"""Shared retry policy: exponential backoff with deterministic jitter.

Both the executor's per-job retries (:meth:`repro.runner.executor.Runner`)
and the service worker's broker-reconnect loop
(:mod:`repro.service.worker`) need the same shape of policy: delays that
grow exponentially so a persistent fault backs off fast, plus jitter so
a fleet of workers hammered by the same fault does not retry in
lockstep.

The jitter is *deterministic*: it is drawn from a PRNG seeded by the
``(token, attempt)`` pair, so two processes retrying different jobs
spread out, while a test replaying the same job sees the same delays.
Wall-clock sleeps never influence results — only when they happen — so
determinism here is purely about debuggability.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with bounded, deterministically-jittered delays.

    Attributes:
        base: delay before the first retry (seconds).
        factor: growth per attempt (``base * factor**(attempt-1)``).
        jitter: maximum *fractional* extra delay; ``0.5`` stretches each
            delay by up to 50%.  ``0`` disables jitter entirely.
        max_delay: hard ceiling on any single delay.
    """

    base: float = 0.05
    factor: float = 2.0
    jitter: float = 0.5
    max_delay: float = 30.0

    def delay(self, attempt: int, token: str = "") -> float:
        """The delay before retry number ``attempt`` (1-based).

        ``token`` seeds the jitter — pass a job key or worker id so
        concurrent retriers decorrelate.
        """
        raw = self.base * (self.factor ** max(0, attempt - 1))
        raw = min(raw, self.max_delay)
        if self.jitter <= 0 or raw <= 0:
            return raw
        fraction = random.Random(f"{token}:{attempt}").random()
        return min(raw * (1.0 + self.jitter * fraction), self.max_delay)

    def sleep(self, attempt: int, token: str = "") -> float:
        """Sleep for :meth:`delay`; return the slept duration."""
        duration = self.delay(attempt, token)
        if duration > 0:
            time.sleep(duration)
        return duration

    def delays(self, attempts: int, token: str = "") -> Iterator[float]:
        """The delay sequence for ``attempts`` retries (for tests/docs)."""
        for attempt in range(1, attempts + 1):
            yield self.delay(attempt, token)


#: Policy for talking to a broker that may be restarting: patient
#: ceiling, strong jitter so a worker fleet reconnects staggered.
RECONNECT_POLICY = RetryPolicy(base=0.2, factor=2.0, jitter=1.0, max_delay=10.0)
