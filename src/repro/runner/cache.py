"""Content-addressed result stores for pipeline jobs.

:class:`CacheBackend` is the abstraction every store implements: pickled
values addressed by a job's content hash
(:meth:`repro.runner.jobs.JobSpec.key`), which already folds in
:data:`repro.runner.jobs.CODE_VERSION` — so code changes miss naturally.
:data:`FORMAT_VERSION` versions the *store layout* instead: a layout
change moves to a new namespace and strands (rather than misreads) old
entries.

:class:`DiskCache` is the local-directory implementation
(``~/.cache/repro`` by default, overridable with ``--cache-dir`` or
``$REPRO_CACHE_DIR``)::

    <root>/v1/<key[:2]>/<key>.pkl     pickled stage result
    <root>/v1/<key[:2]>/<key>.json    sidecar manifest (human-inspectable)

The shared backends — :class:`repro.service.backends.SQLiteCache` (one
WAL-mode file, safe for concurrent workers) and
:class:`repro.service.backends.HTTPCache` (thin client for a broker's
object-store endpoints) — subclass :class:`CacheBackend` from the
service package; the executor only ever sees the interface.

Every backend is fault-tolerant by construction: disk writes go through
a temporary file and an atomic ``os.replace`` (a concurrent writer
racing on the same key wins-or-noops, never corrupts), and any
unreadable or truncated entry is treated as a miss and evicted.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Bump when the on-disk layout (not the result semantics) changes.
FORMAT_VERSION = 1

#: Exceptions that mean "this payload does not decode to a value".
#: Anything else propagating from ``pickle.loads`` is a real bug.
DECODE_ERRORS = (
    pickle.PickleError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    TypeError,
)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Aggregate view of a store plus this process's hit/miss counters."""

    root: str = ""
    entries: int = 0
    total_bytes: int = 0
    by_stage: Dict[str, int] = field(default_factory=dict)
    #: On-disk bytes per stage — traces and compilations dominate, and
    #: this is what says so without spelunking the shard directories.
    bytes_by_stage: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    #: Which backend produced these numbers (``disk``/``sqlite``/``http``).
    backend: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_stage": dict(sorted(self.by_stage.items())),
            "bytes_by_stage": dict(sorted(self.bytes_by_stage.items())),
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def render(self) -> str:
        lines = []
        if self.backend:
            lines.append(f"backend:    {self.backend}")
        lines += [
            f"cache root: {self.root}",
            f"entries:    {self.entries} ({self.total_bytes / 1024:.1f} KiB)",
        ]
        for stage, count in sorted(self.by_stage.items()):
            size = self.bytes_by_stage.get(stage, 0)
            lines.append(f"  {stage:10s} {count} ({size / 1024:.1f} KiB)")
        lines.append(f"session:    {self.hits} hits / {self.misses} misses")
        return "\n".join(lines)


class CacheBackend:
    """Interface + shared encode/decode logic for result stores.

    Implementations provide the byte-level primitives
    (:meth:`load_bytes` / :meth:`store_bytes` / :meth:`evict` /
    :meth:`stats` / :meth:`clear`); the base class owns value
    (de)serialisation, hit/miss accounting, and the ``enabled=False``
    no-op mode that backs ``--no-cache``.

    ``shared=True`` marks backends that serve several processes or hosts
    at once — CLI maintenance (``repro-eval cache clear``) refuses to
    wipe those without ``--force``.
    """

    name = "backend"
    shared = False

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        # Session byte throughput, feeding the service telemetry layer
        # (``docs/OBSERVABILITY.md``): payload bytes decoded from and
        # encoded into this backend by this process.
        self.bytes_read = 0
        self.bytes_written = 0

    # -- value codec ---------------------------------------------------------

    @staticmethod
    def encode(value: Any) -> bytes:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode(payload: bytes) -> Any:
        return pickle.loads(payload)

    # -- operations ----------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        if not self.enabled:
            self.misses += 1
            return False, None
        payload = self.load_bytes(key)
        if payload is None:
            self.misses += 1
            return False, None
        self.bytes_read += len(payload)
        try:
            value = self.decode(payload)
        except DECODE_ERRORS:
            # Corrupt or stale-unreadable entry: evict it.
            self.evict(key)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(
        self, key: str, value: Any, manifest: Optional[Dict[str, Any]] = None
    ) -> Optional[bytes]:
        """Store ``value``; return the encoded payload (``None`` if disabled).

        Returning the payload lets the executor memoize the *decoded
        round trip* of a fresh result, so downstream stages consume
        exactly what a cache hit would hand them — which is what makes
        artifact bytes identical across serial, pooled, and remote
        execution (a stage fed live objects pickles with different
        internal sharing than one fed separately-unpickled inputs).
        """
        if not self.enabled:
            return None
        payload = self.encode(value)
        self.bytes_written += len(payload)
        meta = {
            "key": key,
            "format_version": FORMAT_VERSION,
            "created": time.time(),
            "size_bytes": len(payload),
            **(manifest or {}),
        }
        self.store_bytes(key, payload, meta)
        return payload

    def has(self, key: str) -> bool:
        """Whether an entry exists, without decoding it."""
        return self.load_bytes(key) is not None

    def telemetry(self) -> Dict[str, int]:
        """This process's session counters, keyed for the metrics layer."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "read_bytes": self.bytes_read,
            "written_bytes": self.bytes_written,
        }

    def describe(self) -> str:
        """One-line human identification (backend + location)."""
        return self.name

    # -- byte-level primitives (implementations) -----------------------------

    def load_bytes(self, key: str) -> Optional[bytes]:
        """The stored payload for ``key``, or ``None``.  Never raises."""
        raise NotImplementedError

    def store_bytes(self, key: str, payload: bytes, manifest: Dict[str, Any]) -> None:
        raise NotImplementedError

    def evict(self, key: str) -> None:
        """Best-effort removal of one entry."""

    def stats(self) -> CacheStats:
        raise NotImplementedError

    def clear(self) -> int:
        """Delete every entry; return the count removed."""
        raise NotImplementedError


class DiskCache(CacheBackend):
    """Durable local pickle store addressed by job content hash.

    ``enabled=False`` turns every lookup into a miss and every store into
    a no-op, which lets callers thread one object through unconditionally
    (the ``--no-cache`` path).
    """

    name = "disk"

    def __init__(self, root: Optional[Path] = None, enabled: bool = True):
        super().__init__(enabled=enabled)
        self.root = Path(root) if root is not None else default_cache_dir()

    # -- paths --------------------------------------------------------------

    @property
    def store(self) -> Path:
        return self.root / f"v{FORMAT_VERSION}"

    def _paths(self, key: str) -> Tuple[Path, Path]:
        shard = self.store / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    def describe(self) -> str:
        return f"disk ({self.root})"

    # -- byte-level primitives ----------------------------------------------

    def load_bytes(self, key: str) -> Optional[bytes]:
        pkl, _ = self._paths(key)
        try:
            return pkl.read_bytes()
        except OSError:
            return None

    def has(self, key: str) -> bool:
        return self._paths(key)[0].exists()

    def store_bytes(self, key: str, payload: bytes, manifest: Dict[str, Any]) -> None:
        pkl, manifest_path = self._paths(key)
        self._atomic_write(pkl, payload)
        self._atomic_write(
            manifest_path, (json.dumps(manifest, indent=2) + "\n").encode("utf-8")
        )

    def evict(self, key: str) -> None:
        for path in self._paths(key):
            try:
                path.unlink()
            except OSError:
                pass

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        """Last-writer-wins atomic replace, safe under concurrent writers.

        Two writers racing on the same key each stage a unique temporary
        file and ``os.replace`` it over the destination — the second
        simply overwrites the first's (identical) entry.  A concurrent
        ``clear()`` can yank the shard directory out from under either
        step; both spots retry once after recreating it, and if the
        directory is lost twice the write is dropped (the entry was
        being deleted anyway).  A replace refused by the OS while a
        complete entry exists means another writer won: noop.
        """
        for _ in range(2):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=path.parent, prefix=path.name, suffix=".tmp"
                )
            except FileNotFoundError:
                continue  # shard removed between mkdir and mkstemp
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                os.replace(tmp, path)
                return
            except FileNotFoundError:
                _unlink_quietly(tmp)
                continue  # shard removed under the replace; retry
            except OSError:
                _unlink_quietly(tmp)
                if path.exists():
                    return  # a concurrent writer already won this key
                raise
            except BaseException:
                _unlink_quietly(tmp)
                raise

    def stats(self) -> CacheStats:
        stats = CacheStats(
            root=str(self.root),
            hits=self.hits,
            misses=self.misses,
            backend=self.name,
        )
        if not self.store.is_dir():
            return stats
        for manifest_path in self.store.glob("*/*.json"):
            pkl = manifest_path.with_suffix(".pkl")
            if not pkl.exists():
                continue
            stats.entries += 1
            size = pkl.stat().st_size
            stats.total_bytes += size
            try:
                meta = json.loads(manifest_path.read_text())
                stage = str(meta.get("stage", "unknown"))
            except (OSError, json.JSONDecodeError):
                stage = "unknown"
            stats.by_stage[stage] = stats.by_stage.get(stage, 0) + 1
            stats.bytes_by_stage[stage] = (
                stats.bytes_by_stage.get(stage, 0) + size
            )
        return stats

    def clear(self) -> int:
        """Delete every entry of the current format version; return the count."""
        removed = 0
        if not self.store.is_dir():
            return removed
        for pkl in self.store.glob("*/*.pkl"):
            try:
                pkl.unlink()
                removed += 1
            except OSError:
                pass
            sidecar = pkl.with_suffix(".json")
            try:
                sidecar.unlink()
            except OSError:
                pass
        for shard in self.store.glob("*"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
