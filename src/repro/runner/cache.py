"""Content-addressed on-disk result store for pipeline jobs.

Layout (``~/.cache/repro`` by default, overridable with ``--cache-dir``
or ``$REPRO_CACHE_DIR``)::

    <root>/v1/<key[:2]>/<key>.pkl     pickled stage result
    <root>/v1/<key[:2]>/<key>.json    sidecar manifest (human-inspectable)

The key is the job's content hash (:meth:`repro.runner.jobs.JobSpec.key`),
which already folds in :data:`repro.runner.jobs.CODE_VERSION` — so code
changes miss naturally.  :data:`FORMAT_VERSION` versions the *store
layout* instead: a layout change moves to ``v2/`` and strands (rather
than misreads) old entries.

The cache is fault-tolerant by construction: writes go through a
temporary file and an atomic ``os.replace``, and any unreadable or
truncated entry is treated as a miss and deleted.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Bump when the on-disk layout (not the result semantics) changes.
FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Aggregate view of the store plus this process's hit/miss counters."""

    root: str = ""
    entries: int = 0
    total_bytes: int = 0
    by_stage: Dict[str, int] = field(default_factory=dict)
    #: On-disk bytes per stage — traces and compilations dominate, and
    #: this is what says so without spelunking the shard directories.
    bytes_by_stage: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "by_stage": dict(sorted(self.by_stage.items())),
            "bytes_by_stage": dict(sorted(self.bytes_by_stage.items())),
            "session_hits": self.hits,
            "session_misses": self.misses,
        }

    def render(self) -> str:
        lines = [
            f"cache root: {self.root}",
            f"entries:    {self.entries} ({self.total_bytes / 1024:.1f} KiB)",
        ]
        for stage, count in sorted(self.by_stage.items()):
            size = self.bytes_by_stage.get(stage, 0)
            lines.append(f"  {stage:10s} {count} ({size / 1024:.1f} KiB)")
        lines.append(f"session:    {self.hits} hits / {self.misses} misses")
        return "\n".join(lines)


class DiskCache:
    """Durable pickle store addressed by job content hash.

    ``enabled=False`` turns every lookup into a miss and every store into
    a no-op, which lets callers thread one object through unconditionally
    (the ``--no-cache`` path).
    """

    def __init__(self, root: Optional[Path] = None, enabled: bool = True):
        self.enabled = enabled
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- paths --------------------------------------------------------------

    @property
    def store(self) -> Path:
        return self.root / f"v{FORMAT_VERSION}"

    def _paths(self, key: str) -> Tuple[Path, Path]:
        shard = self.store / key[:2]
        return shard / f"{key}.pkl", shard / f"{key}.json"

    # -- operations ---------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        if not self.enabled:
            self.misses += 1
            return False, None
        pkl, manifest = self._paths(key)
        try:
            with open(pkl, "rb") as fh:
                value = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, ValueError):
            if pkl.exists():
                # Corrupt or stale-unreadable entry: evict it.
                for path in (pkl, manifest):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any, manifest: Optional[Dict[str, Any]] = None) -> None:
        if not self.enabled:
            return
        pkl, manifest_path = self._paths(key)
        pkl.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "key": key,
            "format_version": FORMAT_VERSION,
            "created": time.time(),
            "size_bytes": len(payload),
            **(manifest or {}),
        }
        self._atomic_write(pkl, payload)
        self._atomic_write(
            manifest_path, (json.dumps(meta, indent=2) + "\n").encode("utf-8")
        )

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> CacheStats:
        stats = CacheStats(root=str(self.root), hits=self.hits, misses=self.misses)
        if not self.store.is_dir():
            return stats
        for manifest_path in self.store.glob("*/*.json"):
            pkl = manifest_path.with_suffix(".pkl")
            if not pkl.exists():
                continue
            stats.entries += 1
            size = pkl.stat().st_size
            stats.total_bytes += size
            try:
                meta = json.loads(manifest_path.read_text())
                stage = str(meta.get("stage", "unknown"))
            except (OSError, json.JSONDecodeError):
                stage = "unknown"
            stats.by_stage[stage] = stats.by_stage.get(stage, 0) + 1
            stats.bytes_by_stage[stage] = (
                stats.bytes_by_stage.get(stage, 0) + size
            )
        return stats

    def clear(self) -> int:
        """Delete every entry of the current format version; return the count."""
        removed = 0
        if not self.store.is_dir():
            return removed
        for pkl in self.store.glob("*/*.pkl"):
            try:
                pkl.unlink()
                removed += 1
            except OSError:
                pass
            sidecar = pkl.with_suffix(".json")
            try:
                sidecar.unlink()
            except OSError:
                pass
        for shard in self.store.glob("*"):
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed
