"""Parallel, disk-cached, fault-tolerant experiment execution engine.

The runner turns the profile -> compile -> simulate pipeline into an
explicit job graph (:mod:`repro.runner.jobs`, :mod:`repro.runner.graph`)
and executes it with worker processes, durable content-addressed caching
(:mod:`repro.runner.cache`) and structured progress events
(:mod:`repro.runner.events`).  See ``docs/RUNNER.md`` for the full
design.

Typical use::

    from repro.runner import DiskCache, Runner
    from repro.evaluation.experiment import Evaluation

    runner = Runner(jobs=4, cache=DiskCache())
    evaluation = Evaluation(runner=runner)
    evaluation.warm()                      # everything runs in parallel
    rows = table2.compute(evaluation)      # served from the warmed caches
"""

from repro.runner.cache import (
    CacheBackend,
    CacheStats,
    DiskCache,
    default_cache_dir,
)
from repro.runner.events import EventLog, ProgressRenderer, executed_jobs, read_events
from repro.runner.executor import JobError, Runner, resolve_workers
from repro.runner.graph import CycleError, JobGraph
from repro.runner.retry import RECONNECT_POLICY, RetryPolicy
from repro.runner.jobs import (
    CODE_VERSION,
    Job,
    JobSpec,
    adopt_program,
    batch_simulate_job,
    batch_simulate_spec,
    build_job,
    build_spec,
    compile_job,
    compile_spec,
    default_deps,
    dep_result,
    execute_spec,
    job_for,
    pipeline_jobs,
    profile_job,
    profile_spec,
    register_stage,
    simulate_job,
    simulate_spec,
    trace_job,
    trace_spec,
)

__all__ = [
    "CODE_VERSION",
    "CacheBackend",
    "CacheStats",
    "CycleError",
    "DiskCache",
    "EventLog",
    "Job",
    "JobError",
    "JobGraph",
    "JobSpec",
    "ProgressRenderer",
    "RECONNECT_POLICY",
    "RetryPolicy",
    "Runner",
    "adopt_program",
    "batch_simulate_job",
    "batch_simulate_spec",
    "build_job",
    "build_spec",
    "compile_job",
    "compile_spec",
    "default_cache_dir",
    "default_deps",
    "dep_result",
    "execute_spec",
    "executed_jobs",
    "job_for",
    "pipeline_jobs",
    "profile_job",
    "profile_spec",
    "read_events",
    "register_stage",
    "resolve_workers",
    "simulate_job",
    "simulate_spec",
    "trace_job",
    "trace_spec",
]
