"""The job executor: process-pool scheduling with graceful degradation.

:class:`Runner` takes :class:`~repro.runner.jobs.Job` instances, closes
them over their dependencies (:class:`~repro.runner.graph.JobGraph`),
and executes wave by wave:

1. every job is first resolved against the in-memory memo and then the
   result cache (any :class:`~repro.runner.cache.CacheBackend` — the
   local :class:`~repro.runner.cache.DiskCache` by default, or a shared
   SQLite/HTTP backend from :mod:`repro.service.backends`) — hits never
   touch a worker;
2. misses run on a ``ProcessPoolExecutor`` when ``jobs > 1``, each with
   a per-job timeout and a bounded, jittered exponential-backoff retry
   budget (:class:`~repro.runner.retry.RetryPolicy`);
3. a worker death (``BrokenProcessPool``), a pool that cannot be created
   (sandboxes, exotic platforms), or repeated timeouts degrade the run
   to in-process serial execution instead of failing it — results are
   identical either way, only slower.

Determinism contract: stage bodies are pure functions of their spec and
dependency results, so ``--jobs 1``, ``--jobs N`` and a warm-cache rerun
produce byte-identical results.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.runner.cache import CacheBackend, DECODE_ERRORS, DiskCache
from repro.runner.events import EventLog
from repro.runner.graph import JobGraph
from repro.runner.jobs import Job, execute_spec
from repro.runner.retry import RetryPolicy


class JobError(RuntimeError):
    """A job exhausted its retry budget."""

    def __init__(self, job: Job, attempts: int, cause: BaseException):
        super().__init__(
            f"job {job.job_id} failed after {attempts} attempt(s): {cause!r}"
        )
        self.job = job
        self.attempts = attempts
        self.cause = cause


def resolve_workers(jobs: Optional[int]) -> int:
    """``None``/``0`` means one worker per CPU; otherwise the given count."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class Runner:
    """Parallel, cached, fault-tolerant executor for pipeline jobs.

    Args:
        jobs: worker processes; ``1`` (default) runs in-process with no
            pool, ``0``/``None`` means one per CPU.
        cache: result cache backend; defaults to an enabled
            :class:`DiskCache` in the standard location.  Pass
            ``DiskCache(enabled=False)`` for ``--no-cache``, or a shared
            backend from :func:`repro.service.backends.make_cache`.
        events: event sink; a silent in-memory log by default.
        timeout: per-job seconds once a worker picks it up (pooled mode
            only — the serial path cannot preempt a running job).
        retries: additional attempts after the first failure.
        backoff: base seconds for exponential backoff between attempts
            (shorthand for ``retry_policy=RetryPolicy(base=backoff)``).
        retry_policy: full control over backoff growth/jitter/ceiling;
            overrides ``backoff``.
        pool_factory: ``fn(max_workers) -> executor`` — injectable for
            tests; defaults to :class:`ProcessPoolExecutor`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CacheBackend] = None,
        events: Optional[EventLog] = None,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
        pool_factory: Optional[Callable[[int], Any]] = None,
    ):
        self.jobs = resolve_workers(jobs)
        self.cache = cache if cache is not None else DiskCache()
        self.events = events if events is not None else EventLog()
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_policy = retry_policy or RetryPolicy(base=backoff)
        self.backoff = self.retry_policy.base
        self._pool_factory = pool_factory or (
            lambda workers: ProcessPoolExecutor(max_workers=workers)
        )
        self._pool: Optional[Any] = None
        self._serial_fallback = False
        self._results: Dict[str, Any] = {}

    # -- public API ---------------------------------------------------------

    def run(self, jobs: Iterable[Job]) -> Dict[str, Any]:
        """Execute ``jobs`` (plus their dependency closure); return key -> result."""
        graph = JobGraph(jobs)
        t0 = time.monotonic()
        self.events.emit("run_start", total_jobs=len(graph), jobs=self.jobs)
        try:
            for wave in graph.waves():
                self._run_wave(wave)
        finally:
            self.events.emit(
                "run_finish",
                wall_time=round(time.monotonic() - t0, 6),
                **self.events.summary(),
            )
        return {job.key(): self._results[job.key()] for job in graph.jobs}

    def run_job(self, job: Job) -> Any:
        """Execute one job (and its deps), via memo and cache when possible."""
        key = job.key()
        if key in self._results:
            return self._results[key]
        return self.run([job])[key]

    def result(self, job: Job) -> Any:
        return self._results[job.key()]

    def close(self) -> None:
        self._shutdown_pool(wait=True)

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- wave execution -----------------------------------------------------

    def _run_wave(self, wave: List[Job]) -> None:
        pending: List[Job] = []
        for job in wave:
            key = job.key()
            if key in self._results:
                self._finish(job, cached=True, wall_time=0.0, attempt=0)
                continue
            hit, value = self.cache.get(key)
            if hit:
                self._results[key] = value
                self.events.emit(
                    "cache_hit", job=job.job_id, stage=job.spec.stage, key=key
                )
                self._finish(job, cached=True, wall_time=0.0, attempt=0)
            else:
                self.events.emit(
                    "cache_miss", job=job.job_id, stage=job.spec.stage, key=key
                )
                pending.append(job)
        if not pending:
            return
        if self.jobs > 1 and not self._serial_fallback:
            self._run_parallel(pending)
        else:
            for job in pending:
                self._run_serial(job)

    def _dep_results(self, job: Job) -> Dict[str, Any]:
        return {dep.key(): self._results[dep.key()] for dep in job.deps}

    def _complete(self, job: Job, value: Any, wall_time: float, attempt: int) -> None:
        key = job.key()
        spec = job.spec
        payload = self.cache.put(
            key,
            value,
            manifest={
                "job": job.job_id,
                "stage": spec.stage,
                "benchmark": spec.benchmark,
                "machine": spec.machine.name if spec.machine else None,
                "scale": spec.scale,
                "wall_time": round(wall_time, 6),
            },
        )
        if payload is not None:
            # Memoize the decoded round trip, not the live object:
            # downstream stages then see the same input a cache hit (or
            # a pool/service hand-off) would give them, and the bytes
            # they produce stop depending on the execution mode.
            try:
                value = self.cache.decode(payload)
            except DECODE_ERRORS:
                pass  # undecodable edge: keep the live value in memory
        self._results[key] = value
        self._finish(job, cached=False, wall_time=wall_time, attempt=attempt)

    def _finish(self, job: Job, cached: bool, wall_time: float, attempt: int) -> None:
        self.events.emit(
            "job_finish",
            job=job.job_id,
            stage=job.spec.stage,
            key=job.key(),
            cached=cached,
            wall_time=round(wall_time, 6),
            attempt=attempt,
        )

    # -- serial path --------------------------------------------------------

    def _run_serial(self, job: Job) -> None:
        attempt = 0
        while True:
            attempt += 1
            self.events.emit(
                "job_start",
                job=job.job_id,
                stage=job.spec.stage,
                key=job.key(),
                attempt=attempt,
            )
            t0 = time.monotonic()
            try:
                value = execute_spec(job.spec, self._dep_results(job))
            except Exception as exc:
                if not self._retry_or_fail(job, attempt, exc):
                    raise JobError(job, attempt, exc) from exc
                continue
            self._complete(job, value, time.monotonic() - t0, attempt)
            return

    # -- pooled path --------------------------------------------------------

    def _ensure_pool(self) -> Optional[Any]:
        if self._serial_fallback:
            return None
        if self._pool is None:
            try:
                self._pool = self._pool_factory(self.jobs)
            except Exception as exc:
                self._degrade(f"cannot create worker pool: {exc!r}")
        return self._pool

    def _shutdown_pool(self, wait: bool, kill: bool = False) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        if kill:
            # A worker is stuck past its timeout; shutdown() alone would
            # let it run to completion in the background.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=wait, cancel_futures=True)
        except TypeError:
            # Minimal pool doubles used in tests may not accept
            # cancel_futures.
            pool.shutdown(wait=wait)

    def _degrade(self, reason: str) -> None:
        if self._serial_fallback:
            return
        self._serial_fallback = True
        self._shutdown_pool(wait=False)
        self.events.emit("fallback", reason=reason)

    def _run_parallel(self, pending: List[Job]) -> None:
        attempts: Dict[str, int] = {job.key(): 0 for job in pending}
        queue = list(pending)
        while queue:
            pool = self._ensure_pool()
            if pool is None:
                # Pool unavailable (creation failed or a worker died):
                # finish everything still outstanding in-process.
                for job in queue:
                    if job.key() not in self._results:
                        self._run_serial(job)
                return
            submitted: List[tuple] = []
            for job in queue:
                attempts[job.key()] += 1
                self.events.emit(
                    "job_start",
                    job=job.job_id,
                    stage=job.spec.stage,
                    key=job.key(),
                    attempt=attempts[job.key()],
                )
                future = pool.submit(execute_spec, job.spec, self._dep_results(job))
                submitted.append((job, future, time.monotonic()))
            queue = []
            pool_lost = False
            for job, future, t0 in submitted:
                attempt = attempts[job.key()]
                if pool_lost and not future.done():
                    queue.append(job)
                    continue
                try:
                    value = future.result(timeout=self.timeout)
                except concurrent.futures.CancelledError:
                    queue.append(job)
                    continue
                except BrokenProcessPool as exc:
                    if pool_lost:
                        # Collateral damage of a pool we tore down on
                        # purpose (timeout): just requeue.
                        queue.append(job)
                        continue
                    # A worker died of its own accord.  Salvage what
                    # already finished, run the rest serially.
                    self._degrade(f"worker process died: {exc!r}")
                    pool_lost = True
                    queue.append(job)
                    continue
                except concurrent.futures.TimeoutError as exc:
                    # The worker is stuck on this job; the only way to
                    # reclaim it is to tear the pool down (killing the
                    # stuck worker) and rebuild it on the next round.
                    self._shutdown_pool(wait=False, kill=True)
                    pool_lost = True
                    timeout_exc = TimeoutError(
                        f"exceeded per-job timeout of {self.timeout}s"
                    )
                    if not self._retry_or_fail(job, attempt, timeout_exc):
                        raise JobError(job, attempt, timeout_exc) from exc
                    queue.append(job)
                    continue
                except Exception as exc:
                    if not self._retry_or_fail(job, attempt, exc):
                        raise JobError(job, attempt, exc) from exc
                    queue.append(job)
                    continue
                self._complete(job, value, time.monotonic() - t0, attempt)

    # -- retry policy -------------------------------------------------------

    def _retry_or_fail(self, job: Job, attempt: int, exc: BaseException) -> bool:
        """Record the failure; return ``True`` if the job should retry."""
        if attempt > self.retries:
            self.events.emit(
                "job_failed",
                job=job.job_id,
                stage=job.spec.stage,
                key=job.key(),
                attempts=attempt,
                error=repr(exc),
            )
            return False
        delay = self.retry_policy.delay(attempt, token=job.key())
        self.events.emit(
            "job_retry",
            job=job.job_id,
            stage=job.spec.stage,
            key=job.key(),
            attempt=attempt,
            error=repr(exc),
            backoff=round(delay, 6),
        )
        if delay > 0:
            time.sleep(delay)
        return True
