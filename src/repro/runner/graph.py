"""The job graph: deduplication, dependency closure, topological waves.

Experiments over-ask — every experiment that needs ``simulate`` also
implies ``compile`` and ``profile``, and eight benchmarks x two machines
x three stages name the same profile job many times.  :class:`JobGraph`
collapses all of that by content key and hands the executor *waves*:
batches of jobs whose dependencies are all satisfied by earlier waves,
so every job inside one wave can run concurrently.

Content-key dedup is also what fans one ``trace`` job out to a whole
sweep: the trace spec excludes the machine and speculation config, so
every simulate job of a threshold/machine ablation materialises the
*same* trace dependency, and the closure collapses the N copies into one
interpretation shared by N replays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.runner.jobs import Job, JobSpec, job_for


class CycleError(ValueError):
    """The job graph contains a dependency cycle."""


class JobGraph:
    """A deduplicated DAG of :class:`Job` instances, keyed by content hash."""

    def __init__(self, jobs: Iterable[Job] = ()):
        self._jobs: Dict[str, Job] = {}
        for job in jobs:
            self.add(job)

    def add(self, job: Job) -> None:
        """Insert ``job`` (idempotent) and the closure of its dependencies.

        A dependency spec that no explicit :class:`Job` provides is
        materialised through :func:`repro.runner.jobs.job_for`, which
        attaches the stage's natural upstream specs — so adding only a
        simulate job still pulls in its compile and profile ancestors.
        """
        key = job.key()
        existing = self._jobs.get(key)
        if existing is None or (not existing.deps and job.deps):
            self._jobs[key] = job
        for dep in job.deps:
            if dep.key() not in self._jobs:
                self.add(job_for(dep))

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, spec: JobSpec) -> bool:
        return spec.key() in self._jobs

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def waves(self) -> List[List[Job]]:
        """Topological batches: wave *n* depends only on waves ``< n``."""
        remaining: Dict[str, Set[str]] = {
            key: {d.key() for d in job.deps if d.key() in self._jobs}
            for key, job in self._jobs.items()
        }
        done: Set[str] = set()
        waves: List[List[Job]] = []
        while remaining:
            ready = [key for key, deps in remaining.items() if deps <= done]
            if not ready:
                stuck = sorted(self._jobs[k].job_id for k in remaining)
                raise CycleError(f"dependency cycle among jobs: {stuck}")
            waves.append([self._jobs[key] for key in ready])
            done.update(ready)
            for key in ready:
                del remaining[key]
        return waves
