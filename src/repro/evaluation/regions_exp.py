"""Region-size experiment (the paper's closing expectation, quantified).

The paper closes: "For larger regions such as hyperblocks [11] and
superblocks [7], we expect to see a further improvement".  This
experiment enlarges each benchmark's hottest speculated loop by
unrolling (with register renaming) and re-runs the Table 3 best-case
measurement at region sizes 1x, 2x and 4x.

The result sharpens the paper's expectation into a mechanism:

* loops whose iterations chain *serially* (li's pointer chase — the next
  iteration's address is this iteration's loaded value) behave as the
  paper predicts: the longer dependence chain gives value prediction
  more to break, and the best-case fraction improves with region size;
* loops whose iterations are *independent* show the opposite: unrolling
  itself harvests the parallelism, shortening the original schedule and
  *diluting* prediction's relative benefit.

Every unrolled variant is validated architecturally (same final
registers and memory as the original) before being measured; variants
whose trip counts are not divisible by the factor fail validation and
are reported as absent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.compiler import standard_pipeline
from repro.ir.printer import format_table
from repro.profiling.interpreter import run_program
from repro.regions.unroll import UnrollError, unroll_program_loop
from repro.evaluation.experiment import Evaluation

FACTORS = (2, 4)

#: Benchmarks whose hottest loop carries a serial dependence from one
#: iteration to the next (the unrolled copies chain instead of running
#: side by side).
SERIAL_CHAIN_BENCHMARKS = frozenset({"li"})


@dataclass(frozen=True)
class RegionRow:
    benchmark: str
    loop_label: str
    serial_chain: bool
    fractions: Dict[int, Optional[float]]  # unroll factor -> best-case fraction

    @property
    def baseline_fraction(self) -> float:
        return self.fractions[1]


def _architecturally_equivalent(original, unrolled) -> bool:
    base = run_program(original)
    variant = run_program(unrolled)
    base_regs = {k: v for k, v in base.registers.items() if "__u" not in k}
    variant_regs = {
        k: v for k, v in variant.registers.items() if "__u" not in k
    }
    return (
        base_regs == variant_regs
        and base.memory.snapshot() == variant.memory.snapshot()
    )


def compute(evaluation: Evaluation) -> List[RegionRow]:
    rows: List[RegionRow] = []
    machine = evaluation.machine_4w
    for name in evaluation.benchmarks:
        program = evaluation.program(name)
        compilation = evaluation.compilation(name, machine)
        if not compilation.speculated_labels:
            continue
        profile = evaluation.profile(name)
        label = max(
            compilation.speculated_labels,
            key=lambda l: profile.blocks.count(l),
        )
        fractions: Dict[int, Optional[float]] = {
            1: compilation.weighted_length_fraction(best=True)
        }
        for factor in FACTORS:
            fractions[factor] = None
            # Validate unrollability and architectural equivalence
            # inline (cheap, and it needs both program versions) ...
            try:
                unrolled = unroll_program_loop(program, label, factor)
            except UnrollError:
                continue
            if not _architecturally_equivalent(program, unrolled):
                continue  # trip count not divisible by the factor
            # ... then compile the variant through the shared pipeline:
            # with a runner, profile+compile are durable cache entries
            # keyed by the pipeline config (one per unroll factor).
            unrolled_compilation = evaluation.variant_compilation(
                name,
                machine,
                standard_pipeline(unroll=(label, factor)),
            )
            if not unrolled_compilation.speculated_labels:
                continue
            fractions[factor] = unrolled_compilation.weighted_length_fraction(
                best=True
            )
        rows.append(
            RegionRow(
                benchmark=name,
                loop_label=label,
                serial_chain=name in SERIAL_CHAIN_BENCHMARKS,
                fractions=fractions,
            )
        )
    return rows


def render(rows: List[RegionRow]) -> str:
    def cell(value: Optional[float]) -> str:
        return f"{value:.2f}" if value is not None else "-"

    body = [
        (
            r.benchmark,
            r.loop_label,
            "serial" if r.serial_chain else "parallel",
            cell(r.fractions.get(1)),
            cell(r.fractions.get(2)),
            cell(r.fractions.get(4)),
        )
        for r in rows
    ]
    table = format_table(
        ["Benchmark", "Loop", "Iteration deps", "1x", "2x", "4x"],
        body,
    )
    return (
        "Region-size study: best-case schedule fraction vs unroll factor\n"
        + table
        + "\n\nSerial-chain loops improve with region size (the paper's "
        "superblock expectation);\nindependent-iteration loops dilute the "
        "benefit because unrolling itself harvests the ILP."
    )


def run(evaluation: Optional[Evaluation] = None) -> str:
    return render(compute(evaluation or Evaluation()))
