"""Experiment drivers regenerating every table and figure of the paper."""

from repro.evaluation.experiment import (
    Evaluation,
    EvaluationSettings,
    arithmetic_mean,
    geometric_mean,
)
from repro.evaluation.report import (
    EXPERIMENTS,
    experiment_names,
    full_report,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Evaluation",
    "EvaluationSettings",
    "arithmetic_mean",
    "experiment_names",
    "full_report",
    "geometric_mean",
    "run_experiment",
]
