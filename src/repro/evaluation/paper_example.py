"""The paper's worked example (Figures 2, 3 and 7).

Builds an 11-operation block with the dependence structure the paper
describes — two 3-cycle loads (operations 4 and 7), consumers 5/6/8/9
speculated, 10/11 non-speculative — schedules it without and with value
prediction, and simulates the four outcome scenarios of Figure 3:

* (b) both predictions correct,
* (c) r7 mispredicted,
* (d) r4 mispredicted,
* (e) both mispredicted.

The paper's qualitative observations are checked by the test suite:
speculation shortens the schedule; the r4-mispredict and both-mispredict
cases produce identical behaviour (the compensation code is the same);
and the r7 case costs no more than the r4 case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.operation import Operation, Reg
from repro.machine.configs import PLAYDOH_4W
from repro.machine.description import MachineDescription
from repro.sched.list_scheduler import schedule_block
from repro.sched.schedule import Schedule
from repro.core.machine_sim import BlockRun, simulate_block
from repro.core.specsched import SpeculativeSchedule, schedule_speculative
from repro.core.speculation import transform_block


@dataclass
class PaperExample:
    """Everything derived from the worked example."""

    function: Function
    block: BasicBlock
    load_r4: Operation
    load_r7: Operation
    original_schedule: Schedule
    spec_schedule: SpeculativeSchedule
    scenarios: Dict[str, BlockRun]

    @property
    def ldpred_r4(self) -> int:
        return self.spec_schedule.spec.ldpred_ids[0]

    @property
    def ldpred_r7(self) -> int:
        return self.spec_schedule.spec.ldpred_ids[1]


def build_example_block() -> Tuple[Function, Operation, Operation]:
    """The 11-op dependence graph of the paper's Figure 2.

    Operations 4 and 7 are the loads; 5 and 6 consume r4; 8 and 9 consume
    both chains (so mispredicting r4 — or both — recovers the same, larger,
    compensation code, while mispredicting only r7 recovers a subset);
    10 and 11 produce the block's live-out results and stay
    non-speculative.
    """
    fb = FunctionBuilder("paper_example")
    fb.block("entry")
    fb.mov("r1", 100)                       # op 1
    fb.add("r2", "r1", 8)                   # op 2
    fb.add("r3", "r2", 4)                   # op 3
    load_r4 = fb.load("r4", "r3")           # op 4 (latency 3)
    fb.add("r5", "r4", 1)                   # op 5
    fb.mov("r6", "r4")                      # op 6
    load_r7 = fb.load("r7", "r1")           # op 7 (latency 3)
    fb.add("r8", "r5", "r7")                # op 8
    fb.mul("r9", "r6", "r7")                # op 9
    fb.add("r10", "r8", "r9")               # op 10 (non-speculative)
    fb.mov("r11", "r5")                     # op 11 (non-speculative)
    fb.halt()
    return fb.build(), load_r4, load_r7


#: Registers live out of the example block (the block's results).
EXAMPLE_LIVE_OUT = frozenset({Reg("r10"), Reg("r11")})


def run_example(
    machine: MachineDescription = PLAYDOH_4W, collect_trace: bool = True
) -> PaperExample:
    """Build, transform, schedule and simulate all four scenarios."""
    function, load_r4, load_r7 = build_example_block()
    block = function.block("entry")
    original = schedule_block(block, machine)
    spec = transform_block(
        block, machine, [load_r4, load_r7], live_out=EXAMPLE_LIVE_OUT
    )
    spec_schedule = schedule_speculative(
        spec, machine, original_length=original.length
    )
    l4, l7 = spec.ldpred_ids
    scenarios = {
        "both correct": {l4: True, l7: True},
        "r7 mispredicted": {l4: True, l7: False},
        "r4 mispredicted": {l4: False, l7: True},
        "both mispredicted": {l4: False, l7: False},
    }
    runs = {
        name: simulate_block(spec_schedule, outcomes, collect_trace=collect_trace)
        for name, outcomes in scenarios.items()
    }
    return PaperExample(
        function=function,
        block=block,
        load_r4=load_r4,
        load_r7=load_r7,
        original_schedule=original,
        spec_schedule=spec_schedule,
        scenarios=runs,
    )


def render(example: PaperExample) -> str:
    from repro.core.timeline import render_timeline

    lines: List[str] = []
    lines.append("The paper's worked example (Figures 2/3)")
    lines.append("")
    lines.append("Original schedule (no prediction):")
    lines.append(str(example.original_schedule))
    lines.append("")
    lines.append("Speculative schedule (r4 and r7 predicted):")
    lines.append(str(example.spec_schedule.schedule))
    lines.append("")
    for name, run in example.scenarios.items():
        lines.append(f"--- Scenario: {name} ---")
        lines.append(render_timeline(example.spec_schedule, run))
        lines.append("")
    return "\n".join(lines)


def run(evaluation=None) -> str:  # signature matches the other experiments
    return render(run_example())
