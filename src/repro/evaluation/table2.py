"""Table 2: fraction of execution time in speculated blocks.

The paper's Table 2 reports, per benchmark, the fraction of total
execution time spent in blocks where predictions were made and (best
case) *all* of them were correct, versus (worst case) *all* of them were
incorrect.  The paper observes roughly half the time in all-correct
blocks and a very small all-incorrect fraction — which is why the
compensation code's impact is small for the proposed architecture.

Our fractions come from the dynamic simulation: every dynamic block
instance is classified by its actual prediction outcomes under the live
stride+FCM hybrid predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.metrics import OutcomeClass
from repro.evaluation.experiment import Evaluation, arithmetic_mean
from repro.ir.printer import format_table


@dataclass(frozen=True)
class Table2Row:
    benchmark: str
    best_case_fraction: float    # time in all-correct speculated blocks
    worst_case_fraction: float   # time in all-incorrect speculated blocks
    mixed_fraction: float


def compute(evaluation: Evaluation) -> List[Table2Row]:
    rows: List[Table2Row] = []
    for name in evaluation.benchmarks:
        sim = evaluation.simulation(name, evaluation.machine_4w)
        rows.append(
            Table2Row(
                benchmark=name,
                best_case_fraction=sim.time_fraction(OutcomeClass.ALL_CORRECT),
                worst_case_fraction=sim.time_fraction(OutcomeClass.ALL_INCORRECT),
                mixed_fraction=sim.time_fraction(OutcomeClass.MIXED),
            )
        )
    return rows


def render(rows: List[Table2Row]) -> str:
    body = [
        (r.benchmark, f"{r.best_case_fraction:.2f}", f"{r.worst_case_fraction:.2f}")
        for r in rows
    ]
    body.append(
        (
            "average",
            f"{arithmetic_mean([r.best_case_fraction for r in rows]):.2f}",
            f"{arithmetic_mean([r.worst_case_fraction for r in rows]):.2f}",
        )
    )
    table = format_table(
        ["Benchmark", "Best case (all correct)", "Worst case (all incorrect)"],
        body,
    )
    return (
        "Table 2: fraction of execution time used by speculated blocks\n"
        + table
    )


def run(evaluation: Evaluation | None = None) -> str:
    return render(compute(evaluation or Evaluation()))
