"""Shared machinery for the evaluation experiments.

:class:`Evaluation` caches profiles, compilations and dynamic simulation
results per (benchmark, machine) so the table/figure generators can share
work — profiling is the expensive step and every experiment needs it.

When constructed with a :class:`repro.runner.Runner`, every pipeline
stage is delegated to the runner as a declarative job: stage results are
then additionally memoised on disk (surviving across processes and
threshold/scale sweeps) and :meth:`Evaluation.warm` can execute the
whole job graph for a set of experiments in parallel before the
experiments read it back.  Without a runner the behaviour is the
original in-process one — no disk I/O, no worker processes.

The ``runner`` argument is duck-typed on ``run``/``run_job``:
:class:`repro.service.client.ServiceRunner` slots in the same way
(``repro-eval --service URL``) and ships the identical job graph to a
remote broker executed by ``repro-worker`` processes — outputs are
byte-identical to local execution because both paths materialise the
same content-hash-keyed jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.compiler import PassManager, PipelineConfig
from repro.ir.program import Program
from repro.machine.configs import by_name, spec_by_name
from repro.machine.description import MachineDescription
from repro.machine.spec import MachineSpec
from repro.profiling.profile_run import ProfileData, profile_program
from repro.core.metrics import ProgramCompilation
from repro.core.program_sim import ProgramSimResult, simulate_program
from repro.core.speculation import SpeculationConfig
from repro.workloads.suite import BENCHMARKS, load_benchmark, resolve_benchmarks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.runner import Job, Runner


#: How an experiment names a machine: a registry name, a spec-file path,
#: or an inline :class:`MachineSpec`.
MachineRef = Union[str, MachineSpec]

#: The default machine roles: the paper's primary 4-wide machine and its
#: doubled Table 4 twin, as registry names.
DEFAULT_MACHINES: Tuple[Tuple[str, MachineRef], ...] = (
    ("base", "playdoh-4w"),
    ("wide", "playdoh-8w"),
)


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs shared by all experiments.

    ``machines`` maps the *roles* experiments reference (``base``,
    ``wide``) to machine specs — registry names, spec-file paths, or
    inline :class:`MachineSpec` objects.  The defaults are the paper's
    machines; :meth:`with_machine` rebinds a role, which is how the
    explore driver sweeps machine axes without touching any experiment
    code.
    """

    scale: float = 1.0
    spec_config: SpeculationConfig = field(default_factory=SpeculationConfig)
    benchmarks: Tuple[str, ...] = tuple(BENCHMARKS)
    machines: Tuple[Tuple[str, MachineRef], ...] = DEFAULT_MACHINES

    def with_threshold(self, threshold: float) -> "EvaluationSettings":
        return replace(
            self, spec_config=replace(self.spec_config, threshold=threshold)
        )

    def with_benchmarks(
        self, benchmarks: Optional[Sequence[str]]
    ) -> "EvaluationSettings":
        """Restrict the suite; names are validated against the registry."""
        if not benchmarks:
            return self
        return replace(self, benchmarks=resolve_benchmarks(benchmarks))

    def with_machine(
        self, role: str, machine: Union[MachineRef, MachineDescription]
    ) -> "EvaluationSettings":
        """Bind ``role`` (e.g. ``"base"``) to a machine spec/name/path."""
        if isinstance(machine, MachineDescription):
            machine = MachineSpec.from_description(machine)
        bound = dict(self.machines)
        bound[role] = machine
        return replace(self, machines=tuple(bound.items()))

    def machine_ref(self, role: str) -> MachineRef:
        refs = dict(self.machines)
        try:
            return refs[role]
        except KeyError:
            raise KeyError(
                f"no machine bound for role {role!r}; bound: {sorted(refs)}"
            ) from None

    def machine_spec(self, role: str) -> MachineSpec:
        """The resolved :class:`MachineSpec` bound to ``role``."""
        ref = self.machine_ref(role)
        if isinstance(ref, MachineSpec):
            return ref
        return spec_by_name(ref)


#: Pipeline products each experiment reads, as (stage, machine role,
#: model_icache, collect_cycles) tuples.  ``warm`` uses this to pre-build
#: the job graph; roles resolve through ``EvaluationSettings.machines``.
#: The baseline comparison always simulates with cycle accounting: its
#: overhead columns are defined in terms of the attributed stacks (see
#: :mod:`repro.evaluation.baseline_cmp`).
EXPERIMENT_NEEDS: Dict[str, Tuple[Tuple[str, str, bool, bool], ...]] = {
    "table2": (("simulate", "base", False, False),),
    "table3": (("compile", "base", False, False),),
    "table4": (
        ("simulate", "base", False, False),
        ("simulate", "wide", False, False),
    ),
    "figure8": (("compile", "base", False, False),),
    "baseline": (("simulate", "base", True, True),),
    "regions": (("compile", "base", False, False),),
    "example": (),
}


# -- process-wide shared build/profile products ------------------------------
#
# A sweep constructs one Evaluation per point, but the build and profile
# stages depend only on (benchmark, scale, pipeline) — not on the
# machine or speculation knobs being swept.  Sharing them process-wide
# means every point of a runner-less sweep sees the *same* Program
# object graph, which in turn lets the identity-keyed per-block compile
# memos (:mod:`repro.core.compile_cache`) and the batched simulation
# context (:mod:`repro.batchsim`) hit across points.  Pure memos:
# ``load_benchmark``/``run_program_passes``/``profile_program`` are
# deterministic, so results are byte-identical with sharing off
# (``REPRO_NO_BATCH=1``).  ``repro.batchsim.reset_shared_state`` clears
# these together with the other process-wide caches.

_SHARED_PROGRAMS: Dict[Tuple[str, float, Optional[str]], Program] = {}
_SHARED_PROFILES: Dict[Tuple[str, float, Optional[str]], ProfileData] = {}


def reset_shared_products() -> None:
    """Drop the process-wide build/profile memos (bench/test isolation)."""
    _SHARED_PROGRAMS.clear()
    _SHARED_PROFILES.clear()


def _shared(store: Dict, key: Tuple, compute):
    from repro.batchsim._compat import sharing_enabled

    if not sharing_enabled():
        return compute()
    if key not in store:
        store[key] = compute()
    return store[key]


class Evaluation:
    """Caching front end over profile -> compile -> simulate."""

    def __init__(
        self,
        settings: Optional[EvaluationSettings] = None,
        runner: Optional["Runner"] = None,
        collect_metrics: bool = False,
        collect_cycles: bool = False,
        trace_store=None,
    ):
        self.settings = settings or EvaluationSettings()
        self.runner = runner
        #: When set, every simulate stage aggregates an observability
        #: snapshot into its result (``ProgramSimResult.metrics``); see
        #: :meth:`metrics_snapshot`.  Off by default — simulate job keys
        #: and timing outputs are unchanged.
        self.collect_metrics = collect_metrics
        #: When set, every simulate stage attributes each simulated cycle
        #: to one cause (``ProgramSimResult.cycle_stacks``; see
        #: :mod:`repro.obs.cycles`).  Off by default — simulate job keys
        #: and timing outputs are unchanged.
        self.collect_cycles = collect_cycles
        #: Trace cache for runner-less execution (the runner path caches
        #: traces as jobs instead).  ``None`` uses the process-wide
        #: default store, so *separate* Evaluation instances over the
        #: same built program — a threshold sweep — still interpret it
        #: only once.  Pass a fresh :class:`repro.trace.TraceStore` to
        #: isolate, or set ``REPRO_NO_TRACE=1`` to disable replay.
        self.trace_store = trace_store
        self._machines: Dict[str, MachineDescription] = {}
        self._programs: Dict[str, Program] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._compilations: Dict[Tuple[str, str], ProgramCompilation] = {}
        self._simulations: Dict[
            Tuple[str, str, bool, bool], ProgramSimResult
        ] = {}
        # Non-standard-pipeline products, keyed by pipeline fingerprint.
        self._variant_programs: Dict[Tuple[str, str], Program] = {}
        self._variant_profiles: Dict[Tuple[str, str], ProfileData] = {}
        self._variant_compilations: Dict[
            Tuple[str, str, str], ProgramCompilation
        ] = {}

    # -- pipeline stages ----------------------------------------------------

    def _trace_of(self, program: Program):
        """The cached value trace for ``program``, or ``None``.

        Capture-on-first-use through the configured (or default
        process-wide) :class:`repro.trace.TraceStore`; disabled entirely
        by ``REPRO_NO_TRACE=1``.
        """
        from repro.trace.store import default_store, replay_enabled

        if not replay_enabled():
            return None
        store = self.trace_store if self.trace_store is not None else default_store()
        return store.get_or_capture(program)

    def program(self, name: str) -> Program:
        if name not in self._programs:
            if self.runner is not None:
                # The runner's build job is the canonical program: its op
                # ids are what the cached profiles and compilations
                # reference, so the parent must use the same object graph.
                # adopt_program keeps later op-creating passes (regions
                # unrolling) from minting ids that collide with it.
                from repro.runner import adopt_program, build_job

                self._programs[name] = adopt_program(
                    self.runner.run_job(
                        build_job(name, scale=self.settings.scale)
                    )
                )
            else:
                self._programs[name] = _shared(
                    _SHARED_PROGRAMS,
                    (name, self.settings.scale, None),
                    lambda: load_benchmark(name, scale=self.settings.scale),
                )
        return self._programs[name]

    def profile(self, name: str) -> ProfileData:
        if name not in self._profiles:
            if self.runner is not None:
                from repro.runner import profile_job

                self._profiles[name] = self.runner.run_job(
                    profile_job(name, scale=self.settings.scale)
                )
            else:
                program = self.program(name)
                self._profiles[name] = _shared(
                    _SHARED_PROFILES,
                    (name, self.settings.scale, None),
                    lambda: profile_program(
                        program, trace=self._trace_of(program), batch=True
                    ),
                )
        return self._profiles[name]

    def compilation(
        self, name: str, machine: MachineDescription
    ) -> ProgramCompilation:
        key = (name, machine.name)
        if key not in self._compilations:
            if self.runner is not None:
                from repro.runner import compile_job

                self._compilations[key] = self.runner.run_job(
                    compile_job(
                        name,
                        machine,
                        scale=self.settings.scale,
                        spec_config=self.settings.spec_config,
                    )
                )
            else:
                self._compilations[key] = PassManager().compile(
                    self.program(name),
                    machine,
                    self.profile(name),
                    spec_config=self.settings.spec_config,
                )
        return self._compilations[key]

    # -- pipeline variants ---------------------------------------------------
    #
    # A *variant* is the same benchmark compiled under a non-standard
    # :class:`repro.compiler.PipelineConfig` — e.g. the region-size
    # sweeps' unrolled loops.  With a runner, variants are ordinary
    # build/profile/compile jobs (so every unroll factor is a durable
    # on-disk cache entry); without one, the pass manager runs inline.

    def variant_program(self, name: str, pipeline: PipelineConfig) -> Program:
        key = (name, pipeline.fingerprint())
        if key not in self._variant_programs:
            if self.runner is not None:
                from repro.runner import adopt_program, build_job

                self._variant_programs[key] = adopt_program(
                    self.runner.run_job(
                        build_job(
                            name, scale=self.settings.scale, pipeline=pipeline
                        )
                    )
                )
            else:
                self._variant_programs[key] = _shared(
                    _SHARED_PROGRAMS,
                    (name, self.settings.scale, pipeline.fingerprint()),
                    lambda: PassManager(pipeline).run_program_passes(
                        self.program(name)
                    ),
                )
        return self._variant_programs[key]

    def variant_profile(self, name: str, pipeline: PipelineConfig) -> ProfileData:
        key = (name, pipeline.fingerprint())
        if key not in self._variant_profiles:
            if self.runner is not None:
                from repro.runner import profile_job

                self._variant_profiles[key] = self.runner.run_job(
                    profile_job(
                        name, scale=self.settings.scale, pipeline=pipeline
                    )
                )
            else:
                program = self.variant_program(name, pipeline)
                self._variant_profiles[key] = _shared(
                    _SHARED_PROFILES,
                    (name, self.settings.scale, pipeline.fingerprint()),
                    lambda: profile_program(
                        program, trace=self._trace_of(program), batch=True
                    ),
                )
        return self._variant_profiles[key]

    def variant_compilation(
        self, name: str, machine: MachineDescription, pipeline: PipelineConfig
    ) -> ProgramCompilation:
        key = (name, machine.name, pipeline.fingerprint())
        if key not in self._variant_compilations:
            if self.runner is not None:
                from repro.runner import compile_job

                self._variant_compilations[key] = self.runner.run_job(
                    compile_job(
                        name,
                        machine,
                        scale=self.settings.scale,
                        spec_config=self.settings.spec_config,
                        pipeline=pipeline,
                    )
                )
            else:
                self._variant_compilations[key] = PassManager(pipeline).compile(
                    self.variant_program(name, pipeline),
                    machine,
                    self.variant_profile(name, pipeline),
                    spec_config=self.settings.spec_config,
                )
        return self._variant_compilations[key]

    def simulation(
        self,
        name: str,
        machine: MachineDescription,
        model_icache: bool = False,
        collect_cycles: Optional[bool] = None,
    ) -> ProgramSimResult:
        """One dynamic simulation (memoised per parameter point).

        ``collect_cycles=None`` inherits the evaluation-wide setting;
        ``True`` forces cycle accounting for this read regardless (the
        baseline-comparison experiment does this — its overhead columns
        need the attributed stacks).
        """
        cycles = self.collect_cycles if collect_cycles is None else collect_cycles
        key = (name, machine.name, model_icache, cycles)
        if key not in self._simulations:
            if self.runner is not None:
                from repro.runner import simulate_job

                self._simulations[key] = self.runner.run_job(
                    simulate_job(
                        name,
                        machine,
                        scale=self.settings.scale,
                        spec_config=self.settings.spec_config,
                        model_icache=model_icache,
                        collect_metrics=self.collect_metrics,
                        collect_cycles=cycles,
                    )
                )
            else:
                from repro.trace.format import TraceMismatch

                compilation = self.compilation(name, machine)
                trace = self._trace_of(compilation.program)
                if trace is not None:
                    try:
                        # batch=True opts into the struct-of-arrays
                        # engine via the process-wide context, sharing
                        # trace decodes and predictor outcome columns
                        # with the other points of a sweep; it falls
                        # back to the scalar engine (byte-identically)
                        # whenever the configuration is off the batched
                        # common path.
                        self._simulations[key] = simulate_program(
                            compilation,
                            model_icache=model_icache,
                            collect_metrics=self.collect_metrics,
                            collect_cycles=cycles,
                            trace=trace,
                            batch=True,
                        )
                    except TraceMismatch:
                        trace = None
                if trace is None:
                    self._simulations[key] = simulate_program(
                        compilation,
                        model_icache=model_icache,
                        collect_metrics=self.collect_metrics,
                        collect_cycles=cycles,
                    )
        return self._simulations[key]

    # -- runner integration -------------------------------------------------

    def required_jobs(
        self, experiments: Optional[Iterable[str]] = None
    ) -> List["Job"]:
        """The job graph covering ``experiments`` (default: all of them)."""
        from repro.runner import compile_job, simulate_job

        names = list(experiments) if experiments is not None else list(
            EXPERIMENT_NEEDS
        )
        jobs: List["Job"] = []
        seen = set()
        for experiment in names:
            for stage, role, model_icache, force_cycles in EXPERIMENT_NEEDS.get(
                experiment, ()
            ):
                machine = self.machine_for(role)
                for benchmark in self.settings.benchmarks:
                    if stage == "simulate":
                        # Mirror simulation()'s spec exactly, or warmed
                        # jobs would miss the keys the reads use.
                        job = simulate_job(
                            benchmark,
                            machine,
                            scale=self.settings.scale,
                            spec_config=self.settings.spec_config,
                            model_icache=model_icache,
                            collect_metrics=self.collect_metrics,
                            collect_cycles=force_cycles or self.collect_cycles,
                        )
                    else:
                        job = compile_job(
                            benchmark,
                            machine,
                            scale=self.settings.scale,
                            spec_config=self.settings.spec_config,
                        )
                    if job.key() not in seen:
                        seen.add(job.key())
                        jobs.append(job)
        return jobs

    def warm(self, experiments: Optional[Iterable[str]] = None) -> int:
        """Execute (in parallel, when the runner allows) every pipeline job
        the given experiments will need, so subsequent ``compute`` calls
        are pure cache reads.  Returns the number of jobs in the graph.
        No-op without a runner."""
        if self.runner is None:
            return 0
        jobs = self.required_jobs(experiments)
        if jobs:
            self.runner.run(jobs)
        return len(jobs)

    # -- observability --------------------------------------------------------

    def seed_from(self, other: "Evaluation") -> "Evaluation":
        """Adopt another evaluation's cached programs and profiles.

        Lets a benchmark harness pay the (expensive, compiler-unrelated)
        build/profile stages once and then time compile/simulate from a
        cold start repeatedly.  Compilations and simulations are *not*
        copied — those are the stages being measured.
        """
        self._programs.update(other._programs)
        self._profiles.update(other._profiles)
        return self

    @property
    def simulation_results(self) -> List[ProgramSimResult]:
        """Every simulation result this evaluation has produced so far."""
        return list(self._simulations.values())

    def cycle_stack_results(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Cycle stacks of every simulation run so far.

        Keyed ``benchmark@machine`` (icache-modelled simulations get an
        ``+icache`` suffix); values are the per-machine-model stacks from
        :attr:`repro.core.program_sim.ProgramSimResult.cycle_stacks`.
        Simulations run without cycle accounting are skipped.
        """
        out: Dict[str, Dict[str, Dict[str, int]]] = {}
        for (name, machine, icache, _cycles), result in sorted(
            self._simulations.items()
        ):
            stacks = getattr(result, "cycle_stacks", None)
            if not stacks:
                continue
            out[f"{name}@{machine}" + ("+icache" if icache else "")] = stacks
        return out

    def metrics_snapshot(self):
        """Merge of every collected simulation metrics snapshot so far.

        Requires ``collect_metrics=True``; returns a
        :class:`repro.obs.metrics.MetricsSnapshot` covering all
        (benchmark, machine) simulations this evaluation has run.
        """
        from repro.obs.metrics import MetricsSnapshot

        if not self.collect_metrics:
            raise RuntimeError(
                "metrics_snapshot() needs Evaluation(collect_metrics=True)"
            )
        total = MetricsSnapshot.empty()
        for result in self._simulations.values():
            if result.metrics is not None:
                total = total.merged(result.metrics)
        return total

    # -- convenience ----------------------------------------------------------

    @property
    def benchmarks(self) -> List[str]:
        return list(self.settings.benchmarks)

    def machine_for(self, role: str) -> MachineDescription:
        """The built machine bound to ``role`` in the settings.

        Registry names resolve to the shared module constants (so the
        default evaluation uses the identical ``PLAYDOH_4W`` object the
        rest of the codebase does); specs and spec files build once per
        evaluation.
        """
        if role not in self._machines:
            ref = self.settings.machine_ref(role)
            if isinstance(ref, MachineSpec):
                self._machines[role] = ref.build()
            else:
                self._machines[role] = by_name(ref)
        return self._machines[role]

    @property
    def machine_4w(self) -> MachineDescription:
        """The machine bound to the ``base`` role (``playdoh-4w`` by
        default); kept for callers written against the paper's names."""
        return self.machine_for("base")

    @property
    def machine_8w(self) -> MachineDescription:
        """The machine bound to the ``wide`` role (``playdoh-8w`` by
        default)."""
        return self.machine_for("wide")


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (safe for the ratio metrics used throughout).

    Raises ``ValueError`` for an empty input — a silently-empty
    experiment must not report a 0.0 geomean as if it were data.
    """
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
