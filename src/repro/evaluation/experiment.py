"""Shared machinery for the evaluation experiments.

:class:`Evaluation` caches profiles, compilations and dynamic simulation
results per (benchmark, machine) so the table/figure generators can share
work — profiling is the expensive step and every experiment needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.ir.program import Program
from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.machine.description import MachineDescription
from repro.profiling.profile_run import ProfileData, profile_program
from repro.core.metrics import ProgramCompilation, compile_program
from repro.core.program_sim import ProgramSimResult, simulate_program
from repro.core.speculation import SpeculationConfig
from repro.workloads.suite import BENCHMARKS, load_benchmark


@dataclass(frozen=True)
class EvaluationSettings:
    """Knobs shared by all experiments."""

    scale: float = 1.0
    spec_config: SpeculationConfig = field(default_factory=SpeculationConfig)
    benchmarks: Tuple[str, ...] = tuple(BENCHMARKS)

    def with_threshold(self, threshold: float) -> "EvaluationSettings":
        return replace(
            self, spec_config=replace(self.spec_config, threshold=threshold)
        )


class Evaluation:
    """Caching front end over profile -> compile -> simulate."""

    def __init__(self, settings: Optional[EvaluationSettings] = None):
        self.settings = settings or EvaluationSettings()
        self._programs: Dict[str, Program] = {}
        self._profiles: Dict[str, ProfileData] = {}
        self._compilations: Dict[Tuple[str, str], ProgramCompilation] = {}
        self._simulations: Dict[Tuple[str, str, bool], ProgramSimResult] = {}

    # -- pipeline stages ----------------------------------------------------

    def program(self, name: str) -> Program:
        if name not in self._programs:
            self._programs[name] = load_benchmark(name, scale=self.settings.scale)
        return self._programs[name]

    def profile(self, name: str) -> ProfileData:
        if name not in self._profiles:
            self._profiles[name] = profile_program(self.program(name))
        return self._profiles[name]

    def compilation(
        self, name: str, machine: MachineDescription
    ) -> ProgramCompilation:
        key = (name, machine.name)
        if key not in self._compilations:
            self._compilations[key] = compile_program(
                self.program(name),
                machine,
                self.profile(name),
                config=self.settings.spec_config,
            )
        return self._compilations[key]

    def simulation(
        self,
        name: str,
        machine: MachineDescription,
        model_icache: bool = False,
    ) -> ProgramSimResult:
        key = (name, machine.name, model_icache)
        if key not in self._simulations:
            self._simulations[key] = simulate_program(
                self.compilation(name, machine), model_icache=model_icache
            )
        return self._simulations[key]

    # -- convenience ----------------------------------------------------------

    @property
    def benchmarks(self) -> List[str]:
        return list(self.settings.benchmarks)

    @property
    def machine_4w(self) -> MachineDescription:
        return PLAYDOH_4W

    @property
    def machine_8w(self) -> MachineDescription:
        return PLAYDOH_8W


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (safe for the ratio metrics used throughout)."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= v
    return product ** (1.0 / len(values))


def arithmetic_mean(values: List[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
