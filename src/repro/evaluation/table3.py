"""Table 3: effective schedule lengths as fractions of the original.

The paper's Table 3 reports, per benchmark, the effective schedule length
of speculated blocks — after incorporating compensation — as a fraction
of the original (no-prediction) schedule length, in the best case (all
predictions correct; ~20% reduction on average) and the worst case (all
incorrect; "the schedule still manages to improve for most of the cases"
thanks to the parallel Compensation Code Engine).

Fractions are weighted by profiled block execution frequency, matching
the paper's use of profile parameters to estimate execution cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.evaluation.experiment import Evaluation, arithmetic_mean
from repro.ir.printer import format_table


@dataclass(frozen=True)
class Table3Row:
    benchmark: str
    best_case_fraction: float
    worst_case_fraction: float


def compute(evaluation: Evaluation) -> List[Table3Row]:
    rows: List[Table3Row] = []
    for name in evaluation.benchmarks:
        comp = evaluation.compilation(name, evaluation.machine_4w)
        rows.append(
            Table3Row(
                benchmark=name,
                best_case_fraction=comp.weighted_length_fraction(best=True),
                worst_case_fraction=comp.weighted_length_fraction(best=False),
            )
        )
    return rows


def render(rows: List[Table3Row]) -> str:
    body = [
        (r.benchmark, f"{r.best_case_fraction:.2f}", f"{r.worst_case_fraction:.2f}")
        for r in rows
    ]
    body.append(
        (
            "average",
            f"{arithmetic_mean([r.best_case_fraction for r in rows]):.2f}",
            f"{arithmetic_mean([r.worst_case_fraction for r in rows]):.2f}",
        )
    )
    table = format_table(
        ["Benchmark", "Best case (all correct)", "Worst case (all incorrect)"],
        body,
    )
    return (
        "Table 3: effective schedule length as a fraction of the original\n"
        + table
    )


def run(evaluation: Evaluation | None = None) -> str:
    return render(compute(evaluation or Evaluation()))
