"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation all
    python -m repro.evaluation table2 table4 --scale 0.5
    repro-eval figure8 --threshold 0.8
    repro-eval all --jobs 4                  # parallel pipeline execution
    repro-eval table2 --benchmarks swim,li   # restrict the suite
    repro-eval all --events run.jsonl        # JSONL progress events (one run per file)
    repro-eval all --metrics metrics.json    # merged observability snapshot
    repro-eval all --bench bench.json        # repro.bench timing artifact
    repro-eval all --no-cache                # bypass the on-disk result cache
    repro-eval all --cache-dir /tmp/repro    # relocate it
    repro-eval all --cache-backend sqlite:/tmp/cache.db   # shared backend
    repro-eval all --service http://broker:8731           # remote sweep service
    repro-eval cache stats                   # inspect it
    repro-eval cache stats --backend sqlite:/tmp/cache.db # ...another backend
    repro-eval cache clear                   # empty it (--force for shared ones)
    repro-eval --list-passes                 # resolved compiler pipeline

Pipeline execution (profile -> compile -> simulate per benchmark and
machine) is delegated to :mod:`repro.runner`: ``--jobs N`` runs the job
graph on ``N`` worker processes (``0`` = one per CPU), and results are
cached keyed by a content hash of every relevant knob, so a rerun with
identical settings executes zero pipeline jobs.  ``--cache-backend``
(or ``$REPRO_CACHE_URL``) swaps the local directory store for a shared
SQLite file or a broker's HTTP object store, and ``--service URL``
ships the whole job graph to a ``repro-serve`` broker executed by
``repro-worker`` processes (:mod:`repro.service`).  Output is
byte-identical regardless of ``--jobs``, cache temperature, backend,
and local-vs-service execution.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.evaluation import baseline_cmp, figure8, regions_exp, table2, table3, table4
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.evaluation.report import EXPERIMENTS, full_report, run_experiment
from repro.runner import EventLog, ProgressRenderer, Runner

#: Experiments with structured row output available as JSON.
_COMPUTE = {
    "table2": table2.compute,
    "table3": table3.compute,
    "table4": table4.compute,
    "figure8": figure8.compute,
    "baseline": baseline_cmp.compute,
    "regions": regions_exp.compute,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description=(
            "Reproduce the evaluation of 'Value Prediction in VLIW "
            "Machines' (Nakra, Gupta, Soffa)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=(
            f"experiments to run: {', '.join(EXPERIMENTS)} or 'all'; "
            "or the cache maintenance commands 'cache stats' / 'cache clear'"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.65,
        help="profile prediction-rate threshold (paper: 0.65)",
    )
    parser.add_argument(
        "--benchmarks",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict the suite to these benchmarks (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="pipeline worker processes (1 = serial, 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="on-disk result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-backend",
        "--backend",
        dest="cache_backend",
        metavar="SPEC",
        default=None,
        help=(
            "result cache backend: disk[:/path], sqlite[:/path.db], or an "
            "http(s) URL (default: $REPRO_CACHE_URL, else the disk cache)"
        ),
    )
    parser.add_argument(
        "--service",
        metavar="URL",
        default=None,
        help=(
            "execute the pipeline on a remote repro-serve broker instead of "
            "locally; --jobs/--cache-* then apply on the workers, not here"
        ),
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow 'cache clear' to wipe a shared (sqlite/http) backend",
    )
    parser.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help=(
            "write structured JSON-lines progress events to PATH "
            "(truncated per run; every record carries this run's run_id)"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "collect simulator observability metrics and write the merged "
            "snapshot (plus the runner summary) to PATH as JSON"
        ),
    )
    parser.add_argument(
        "--bench",
        metavar="PATH",
        default=None,
        help=(
            "time this invocation's pipeline + experiment generation and "
            "write a repro.bench artifact (schema-versioned BENCH JSON) to "
            "PATH; a directory gets a stamped BENCH_*.json inside"
        ),
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help=(
            "print the resolved compiler pipeline (pass order and "
            "effective per-pass options) and exit"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-job progress lines to stderr",
    )
    parser.add_argument(
        "--cpi",
        action="store_true",
        help=(
            "collect cycle accounting during simulation and append a CPI-"
            "stack section beside the tables (cause fractions per "
            "benchmark/machine; see repro-cycles for the full reports)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured rows as JSON instead of rendered tables",
    )
    return parser


def _parse_benchmarks(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names: List[str] = []
    for chunk in values:
        names.extend(name for name in chunk.split(",") if name)
    return names


def _make_cache(args: argparse.Namespace):
    """The result-cache backend this invocation should use."""
    from repro.service.backends import make_cache

    return make_cache(
        args.cache_backend,
        enabled=not args.no_cache,
        default_root=Path(args.cache_dir) if args.cache_dir else None,
    )


def _cache_command(args: argparse.Namespace) -> int:
    cache = _make_cache(args)
    subcommand = args.experiments[1] if len(args.experiments) > 1 else "stats"
    if subcommand == "stats":
        stats = cache.stats()
        print(json.dumps(stats.as_dict(), indent=2) if args.json else stats.render())
        return 0
    if subcommand == "clear":
        if cache.shared and not args.force:
            print(
                f"cache clear: {cache.describe()} is a *shared* backend — "
                "other workers and users may be relying on it; pass --force "
                "to wipe it anyway",
                file=sys.stderr,
            )
            return 2
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.describe()}")
        return 0
    print(
        f"unknown cache command {subcommand!r}; available: stats, clear",
        file=sys.stderr,
    )
    return 2


def _write_metrics(path: Optional[str], evaluation: Evaluation, events: EventLog) -> None:
    """Dump the merged simulator metrics snapshot plus runner summary."""
    if path is None:
        return
    payload = {
        "run_id": events.run_id,
        "metrics": evaluation.metrics_snapshot().as_dict(),
        "runner": events.summary(),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _write_bench(
    path: str,
    evaluation: Evaluation,
    events: EventLog,
    names: List[str],
    elapsed: float,
) -> None:
    """Wrap this invocation in a single-scenario repro.bench artifact."""
    import json as _json
    from pathlib import Path

    from repro.bench.harness import (
        BenchConfig,
        make_artifact,
        scenario_entry,
        write_artifact,
    )
    from repro.bench.scenarios import ScenarioRun, engine_counters
    from repro.bench.stats import robust_stats

    run = ScenarioRun(
        counters=engine_counters(evaluation),
        extra={"runner": events.summary()},
    )
    scenario = scenario_entry(
        robust_stats([elapsed]),
        [run],
        subsystems=("evaluation",),
        description=f"repro-eval {' '.join(names)} (single timed invocation)",
    )
    config = BenchConfig(
        preset="repro-eval",
        workload_scale=evaluation.settings.scale,
        repeats=1,
        warmup=0,
        scenario_names=(f"repro-eval:{'+'.join(names)}",),
        benchmarks=tuple(evaluation.settings.benchmarks),
        threshold=evaluation.settings.spec_config.threshold,
    )
    artifact = make_artifact(
        config, {f"repro-eval:{'+'.join(names)}": scenario}
    )
    target = Path(path)
    if target.is_dir():
        written = write_artifact(artifact, target)
    else:
        with open(target, "w", encoding="utf-8") as fh:
            _json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written = target
    print(f"bench artifact: {written}", file=sys.stderr)


def _render_cpi(evaluation: Evaluation) -> str:
    """CPI-stack columns for every cycle-accounted simulation so far."""
    from repro.ir.printer import format_table
    from repro.obs.cycles import CAUSES, CPIStack

    body = []
    for key, models in evaluation.cycle_stack_results().items():
        proposed = CPIStack.of(models.get("proposed", {}))
        breakdown = ", ".join(
            f"{cause} {proposed.fraction(cause) * 100:.1f}%"
            for cause in CAUSES
            if proposed.get(cause)
        )
        body.append(
            (
                key,
                str(proposed.total),
                proposed.dominant() or "-",
                breakdown,
            )
        )
    table = format_table(
        ["Simulation", "Proposed cycles", "Dominant", "CPI stack"], body
    )
    return (
        "CPI stacks (--cpi): proposed-machine cycle attribution; 'dominant'\n"
        "is the largest non-issue cause (see repro-cycles for diffs)\n" + table
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.experiments and args.experiments[0] == "cache":
        return _cache_command(args)

    settings = EvaluationSettings(scale=args.scale).with_threshold(args.threshold)
    if args.list_passes:
        from repro.compiler import standard_pipeline

        print(standard_pipeline().describe(spec_config=settings.spec_config))
        return 0
    try:
        settings = settings.with_benchmarks(_parse_benchmarks(args.benchmarks))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    events = EventLog(
        path=args.events,
        renderer=ProgressRenderer() if args.progress else None,
    )
    if args.service:
        from repro.service.client import ServiceRunner

        runner = ServiceRunner(args.service, events=events)
    else:
        runner = Runner(jobs=args.jobs, cache=_make_cache(args), events=events)
    evaluation = Evaluation(
        settings,
        runner=runner,
        collect_metrics=args.metrics is not None or args.bench is not None,
        collect_cycles=args.cpi,
    )

    names = args.experiments
    run_all = names == ["all"] or "all" in names
    try:
        for name in names:
            if not run_all and name not in EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; available: "
                    f"{', '.join(EXPERIMENTS)} or 'all'",
                    file=sys.stderr,
                )
                return 2
        # Execute the whole pipeline job graph up front — in parallel when
        # --jobs allows — so the experiment generators below only read
        # warmed caches.
        bench_start = time.perf_counter()
        evaluation.warm(None if run_all else names)

        if run_all:
            if args.json:
                payload = {
                    name: [dataclasses.asdict(row) for row in compute(evaluation)]
                    for name, compute in _COMPUTE.items()
                }
                if args.cpi:
                    payload["cpi"] = evaluation.cycle_stack_results()
                print(json.dumps(payload, indent=2, default=str))
            else:
                print(full_report(evaluation))
                if args.cpi:
                    print()
                    print(_render_cpi(evaluation))
            if args.bench is not None:
                _write_bench(
                    args.bench,
                    evaluation,
                    events,
                    ["all"],
                    time.perf_counter() - bench_start,
                )
            _write_metrics(args.metrics, evaluation, events)
            return 0
        for name in names:
            if args.json:
                if name not in _COMPUTE:
                    print(f"experiment {name!r} has no JSON form", file=sys.stderr)
                    return 2
                rows = [dataclasses.asdict(row) for row in _COMPUTE[name](evaluation)]
                print(json.dumps(rows, indent=2, default=str))
            else:
                print(run_experiment(name, evaluation))
                print()
        if args.cpi:
            if args.json:
                print(json.dumps({"cpi": evaluation.cycle_stack_results()}, indent=2))
            else:
                print(_render_cpi(evaluation))
        if args.bench is not None:
            _write_bench(
                args.bench,
                evaluation,
                events,
                names,
                time.perf_counter() - bench_start,
            )
        _write_metrics(args.metrics, evaluation, events)
        return 0
    finally:
        runner.close()
        events.close()


if __name__ == "__main__":
    raise SystemExit(main())
