"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation all
    python -m repro.evaluation table2 table4 --scale 0.5
    repro-eval figure8 --threshold 0.8
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.evaluation import baseline_cmp, figure8, regions_exp, table2, table3, table4
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.evaluation.report import EXPERIMENTS, full_report, run_experiment

#: Experiments with structured row output available as JSON.
_COMPUTE = {
    "table2": table2.compute,
    "table3": table3.compute,
    "table4": table4.compute,
    "figure8": figure8.compute,
    "baseline": baseline_cmp.compute,
    "regions": regions_exp.compute,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description=(
            "Reproduce the evaluation of 'Value Prediction in VLIW "
            "Machines' (Nakra, Gupta, Soffa)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiments to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.65,
        help="profile prediction-rate threshold (paper: 0.65)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured rows as JSON instead of rendered tables",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = EvaluationSettings(scale=args.scale).with_threshold(args.threshold)
    evaluation = Evaluation(settings)

    names = args.experiments
    if names == ["all"] or "all" in names:
        if args.json:
            payload = {
                name: [dataclasses.asdict(row) for row in compute(evaluation)]
                for name, compute in _COMPUTE.items()
            }
            print(json.dumps(payload, indent=2, default=str))
        else:
            print(full_report(evaluation))
        return 0
    for name in names:
        if name not in EXPERIMENTS:
            print(
                f"unknown experiment {name!r}; available: "
                f"{', '.join(EXPERIMENTS)} or 'all'",
                file=sys.stderr,
            )
            return 2
        if args.json:
            if name not in _COMPUTE:
                print(f"experiment {name!r} has no JSON form", file=sys.stderr)
                return 2
            rows = [dataclasses.asdict(row) for row in _COMPUTE[name](evaluation)]
            print(json.dumps(rows, indent=2, default=str))
        else:
            print(run_experiment(name, evaluation))
            print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
