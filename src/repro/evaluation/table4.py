"""Table 4: best-case fractions at issue width 4 versus issue width 8.

The paper's Table 4 repeats the best-case columns of Tables 2 and 3 for a
4-wide and an 8-wide machine.  The headline observations it supports:

* wider machines perform *more* speculation (free slots absorb the
  LdPred/check overhead, so additional predictions keep paying off);
* the improvement in block schedule length is *higher* for the wider
  machine — which also means compensation code matters more there,
  reinforcing the case for executing it in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.metrics import OutcomeClass
from repro.evaluation.experiment import Evaluation, arithmetic_mean
from repro.ir.printer import format_table


@dataclass(frozen=True)
class Table4Row:
    benchmark: str
    time_fraction_4w: float
    length_fraction_4w: float
    predictions_4w: int
    time_fraction_8w: float
    length_fraction_8w: float
    predictions_8w: int


def _static_predictions(comp) -> int:
    return sum(
        len(comp.block(label).predicted_load_ids) for label in comp.speculated_labels
    )


def compute(evaluation: Evaluation) -> List[Table4Row]:
    rows: List[Table4Row] = []
    for name in evaluation.benchmarks:
        cells = {}
        for suffix, machine in (("4w", evaluation.machine_4w), ("8w", evaluation.machine_8w)):
            comp = evaluation.compilation(name, machine)
            sim = evaluation.simulation(name, machine)
            cells[f"tf_{suffix}"] = sim.time_fraction(OutcomeClass.ALL_CORRECT)
            cells[f"len_{suffix}"] = comp.weighted_length_fraction(best=True)
            cells[f"np_{suffix}"] = _static_predictions(comp)
        rows.append(
            Table4Row(
                benchmark=name,
                time_fraction_4w=cells["tf_4w"],
                length_fraction_4w=cells["len_4w"],
                predictions_4w=cells["np_4w"],
                time_fraction_8w=cells["tf_8w"],
                length_fraction_8w=cells["len_8w"],
                predictions_8w=cells["np_8w"],
            )
        )
    return rows


def render(rows: List[Table4Row]) -> str:
    body = [
        (
            r.benchmark,
            f"{r.time_fraction_4w:.2f}",
            f"{r.length_fraction_4w:.2f}",
            str(r.predictions_4w),
            f"{r.time_fraction_8w:.2f}",
            f"{r.length_fraction_8w:.2f}",
            str(r.predictions_8w),
        )
        for r in rows
    ]
    body.append(
        (
            "average",
            f"{arithmetic_mean([r.time_fraction_4w for r in rows]):.2f}",
            f"{arithmetic_mean([r.length_fraction_4w for r in rows]):.2f}",
            "",
            f"{arithmetic_mean([r.time_fraction_8w for r in rows]):.2f}",
            f"{arithmetic_mean([r.length_fraction_8w for r in rows]):.2f}",
            "",
        )
    )
    table = format_table(
        [
            "Benchmark",
            "Ex. time fraction (4w)",
            "Schedule fraction (4w)",
            "#pred (4w)",
            "Ex. time fraction (8w)",
            "Schedule fraction (8w)",
            "#pred (8w)",
        ],
        body,
    )
    return "Table 4: best case at issue widths 4 and 8\n" + table


def run(evaluation: Evaluation | None = None) -> str:
    return render(compute(evaluation or Evaluation()))
