"""Comparison with the statically-scheduled recovery scheme of [4].

The paper reimplements the recovery scheme of its reference [4] —
compensation code statically scheduled into separate blocks, entered and
left through branches on each misprediction — and reports that, under it,
compensation code "was observed to be taking a significant fraction of
the total execution time, compared to our scheme where this percentage
was negligible", with effective block schedule lengths significantly
higher.

This experiment reproduces that comparison with the instruction-cache
model enabled, so the baseline also pays the cache pollution the paper's
introduction describes (compensation blocks evicting useful lines).

A third machine is included for context: superscalar-style **squash**
recovery, which restarts the whole block on any misprediction — the
model the original value-prediction literature assumed, and the one a
statically scheduled machine can least afford.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.evaluation.experiment import Evaluation, arithmetic_mean
from repro.ir.printer import format_table

#: Cycle-stack causes counted as speculation overhead on the proposed
#: machine (see :mod:`repro.obs.cycles`): verification issue slots plus
#: every dynamic stall/recovery cause.  ``issue``/``load_wait``/
#: ``dep_stall``/``icache_miss`` are work the no-prediction machine pays
#: too, so they are not overhead.
OVERHEAD_CAUSES = (
    "check_compare",
    "sync_stall",
    "reexec",
    "flush_recovery",
    "ccb_pressure",
)


@dataclass(frozen=True)
class BaselineRow:
    benchmark: str
    cycles_nopred: int
    cycles_proposed: int
    cycles_baseline: int
    cycles_squash: int
    proposed_overhead_fraction: float   # attributed overhead / total (proposed)
    baseline_overhead_fraction: float   # recovery cycles / total (baseline)
    baseline_icache_cycles: int
    proposed_speedup: float
    baseline_speedup: float
    squash_speedup: float


def _proposed_overhead(sim) -> float:
    """Fraction of proposed-machine time attributed to speculation.

    Semantic change from earlier revisions: this used to be
    ``stall_cycles / cycles_proposed`` — only the sync-register stalls —
    which under-reported the scheme's cost.  It now sums the *full*
    attributed overhead from the cycle stack (:data:`OVERHEAD_CAUSES`:
    check-compare issue cycles, sync stalls, re-execution and flush
    recovery, CCB pressure) over total proposed cycles, which is
    comparable to the baseline machine's recovery fraction.  Falls back
    to the old stall-only ratio when the simulation carries no cycle
    stacks.
    """
    if not sim.cycles_proposed:
        return 0.0
    stacks = getattr(sim, "cycle_stacks", None)
    if stacks and "proposed" in stacks:
        proposed = stacks["proposed"]
        overhead = sum(proposed.get(cause, 0) for cause in OVERHEAD_CAUSES)
        return overhead / sim.cycles_proposed
    return sim.stall_cycles / sim.cycles_proposed


def compute(evaluation: Evaluation) -> List[BaselineRow]:
    rows: List[BaselineRow] = []
    for name in evaluation.benchmarks:
        sim = evaluation.simulation(
            name, evaluation.machine_4w, model_icache=True, collect_cycles=True
        )
        proposed_overhead = _proposed_overhead(sim)
        rows.append(
            BaselineRow(
                benchmark=name,
                cycles_nopred=sim.cycles_nopred,
                cycles_proposed=sim.cycles_proposed,
                cycles_baseline=sim.cycles_baseline,
                cycles_squash=sim.cycles_squash,
                proposed_overhead_fraction=proposed_overhead,
                baseline_overhead_fraction=sim.baseline_compensation_fraction,
                baseline_icache_cycles=sim.baseline_icache_cycles,
                proposed_speedup=sim.speedup_proposed,
                baseline_speedup=sim.speedup_baseline,
                squash_speedup=sim.speedup_squash,
            )
        )
    return rows


def render(rows: List[BaselineRow]) -> str:
    body = [
        (
            r.benchmark,
            str(r.cycles_nopred),
            str(r.cycles_proposed),
            str(r.cycles_baseline),
            str(r.cycles_squash),
            f"{r.proposed_overhead_fraction:.3f}",
            f"{r.baseline_overhead_fraction:.3f}",
            f"{r.proposed_speedup:.3f}",
            f"{r.baseline_speedup:.3f}",
            f"{r.squash_speedup:.3f}",
        )
        for r in rows
    ]
    body.append(
        (
            "average",
            "",
            "",
            "",
            "",
            f"{arithmetic_mean([r.proposed_overhead_fraction for r in rows]):.3f}",
            f"{arithmetic_mean([r.baseline_overhead_fraction for r in rows]):.3f}",
            f"{arithmetic_mean([r.proposed_speedup for r in rows]):.3f}",
            f"{arithmetic_mean([r.baseline_speedup for r in rows]):.3f}",
            f"{arithmetic_mean([r.squash_speedup for r in rows]):.3f}",
        )
    )
    table = format_table(
        [
            "Benchmark",
            "No-pred cycles",
            "Proposed cycles",
            "Baseline [4] cycles",
            "Squash cycles",
            "Proposed overhead",
            "Baseline overhead",
            "Proposed speedup",
            "Baseline speedup",
            "Squash speedup",
        ],
        body,
    )
    return (
        "Recovery comparison: proposed architecture vs statically scheduled\n"
        "compensation blocks ([4]), instruction cache modelled\n" + table
    )


def run(evaluation: Evaluation | None = None) -> str:
    return render(compute(evaluation or Evaluation()))
