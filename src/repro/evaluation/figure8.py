"""Figure 8: distribution of change in schedule lengths due to prediction.

The paper's Figure 8 buckets the *executed* blocks by how many cycles
value prediction changes their schedule length in the all-correct case:
degradations, no change, and improvements of 1-4, 5-8 or more cycles.
The key observation is that a large share of executed blocks improve by
1-4 cycles — significant at basic-block granularity.

The distribution here is over *dynamic* block instances (weighting each
static block by its execution frequency, as the paper's "percentage of
the total blocks executed" does), with the delta computed for the
all-correct case exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.evaluation.experiment import Evaluation
from repro.ir.printer import format_table

#: Figure buckets: (label, lower bound, upper bound) on cycles improved.
BUCKETS: Tuple[Tuple[str, float, float], ...] = (
    ("degraded", float("-inf"), -1),
    ("unchanged", 0, 0),
    ("improved 1-4", 1, 4),
    ("improved 5-8", 5, 8),
    ("improved >8", 9, float("inf")),
)


@dataclass(frozen=True)
class Figure8Row:
    benchmark: str
    percentages: Dict[str, float]  # bucket label -> % of executed blocks


def bucket_of(delta: int) -> str:
    for label, lo, hi in BUCKETS:
        if lo <= delta <= hi:
            return label
    raise AssertionError(f"delta {delta} fell through the buckets")


def compute(evaluation: Evaluation) -> List[Figure8Row]:
    rows: List[Figure8Row] = []
    for name in evaluation.benchmarks:
        comp = evaluation.compilation(name, evaluation.machine_4w)
        counts = {label: 0 for label, _, _ in BUCKETS}
        total = 0
        # All-correct delta per static block, weighted by profiled
        # execution count.
        for label_name, block_comp in comp.blocks.items():
            weight = comp.profile.blocks.count(label_name)
            if weight == 0:
                continue
            if block_comp.speculated:
                delta = (
                    block_comp.original_length
                    - block_comp.best_case().effective_length
                )
            else:
                delta = 0
            counts[bucket_of(delta)] += weight
            total += weight
        rows.append(
            Figure8Row(
                benchmark=name,
                percentages={
                    label: (100.0 * count / total if total else 0.0)
                    for label, count in counts.items()
                },
            )
        )
    return rows


def render(rows: List[Figure8Row]) -> str:
    labels = [label for label, _, _ in BUCKETS]
    body = [
        tuple([r.benchmark] + [f"{r.percentages[label]:.1f}%" for label in labels])
        for r in rows
    ]
    # Suite-wide distribution (equal benchmark weighting).
    suite_pcts = {
        label: sum(r.percentages[label] for r in rows) / len(rows)
        for label in labels
    }
    suite = tuple(["suite"] + [f"{suite_pcts[label]:.1f}%" for label in labels])
    table = format_table(["Benchmark"] + labels, body + [suite])
    bars = "\n".join(
        f"  {label:13s} {_bar(suite_pcts[label])} {suite_pcts[label]:5.1f}%"
        for label in labels
    )
    return (
        "Figure 8: distribution of schedule-length change (all-correct case)\n"
        + table
        + "\n\nsuite distribution:\n"
        + bars
    )


def _bar(percent: float, width: int = 40) -> str:
    filled = round(width * percent / 100.0)
    return "#" * filled + "." * (width - filled)


def run(evaluation: Evaluation | None = None) -> str:
    return render(compute(evaluation or Evaluation()))
