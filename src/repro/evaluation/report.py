"""Run every experiment and assemble the full evaluation report."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.evaluation import baseline_cmp, figure8, paper_example, regions_exp, table2, table3, table4
from repro.evaluation.experiment import Evaluation

EXPERIMENTS: Dict[str, Callable[[Optional[Evaluation]], str]] = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure8": figure8.run,
    "baseline": baseline_cmp.run,
    "example": paper_example.run,
    "regions": regions_exp.run,
}


def experiment_names() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(name: str, evaluation: Optional[Evaluation] = None) -> str:
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {experiment_names()}"
        ) from None
    return runner(evaluation)


def full_report(evaluation: Optional[Evaluation] = None) -> str:
    evaluation = evaluation or Evaluation()
    sections = [run_experiment(name, evaluation) for name in EXPERIMENTS]
    header = (
        "Value Prediction in VLIW Machines — reproduction report\n"
        "========================================================\n"
    )
    return header + "\n\n".join(sections)
