"""``repro-cycles``: CPI-stack reports, diffs and JSON artifacts.

Front end over the cycle-accounting engine (:mod:`repro.obs.cycles`):
simulates the requested benchmarks with ``collect_cycles=True`` and
renders per-cause cycle breakdowns for the three machines the simulator
times (``nopred``, ``proposed``, ``baseline``).

Usage::

    repro-cycles report                          # bar charts per benchmark/machine
    repro-cycles report --out cycles.json        # + schema-versioned artifact
    repro-cycles diff                            # proposed vs no-prediction story
    repro-cycles diff old.json new.json          # delta between two artifacts
    repro-cycles json                            # artifact JSON on stdout
    repro-cycles report --benchmarks compress,swim --machines base --scale 0.25

The artifact is deterministic (sorted keys, no timestamps): two runs of
the same tree at the same settings are byte-identical, which CI uses as
a reproducibility check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.obs.cycles import (
    CPI_SCHEMA_VERSION,
    CPIStack,
    render_diff,
    render_stack,
)

#: Artifact schema version; bump together with the payload shape.
ARTIFACT_SCHEMA_VERSION = 1

#: Machine-model order used by every renderer (simulation order).
MODELS = ("nopred", "proposed", "baseline")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cycles",
        description=(
            "Cycle-accounting reports: attribute every simulated cycle "
            "to one cause and render CPI stacks, diffs and artifacts."
        ),
    )
    parser.add_argument(
        "command",
        choices=("report", "diff", "json"),
        help=(
            "report: per-benchmark bar charts; diff: proposed-vs-"
            "no-prediction deltas (or between two artifact files); "
            "json: artifact JSON on stdout"
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="FILE",
        help="for diff: two artifact files (OLD NEW) written by --out",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.65,
        help="profile prediction-rate threshold (paper: 0.65)",
    )
    parser.add_argument(
        "--benchmarks",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict the suite (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--machines",
        default="base,wide",
        metavar="ROLE[,ROLE...]",
        help="machine roles to simulate (default: base,wide)",
    )
    parser.add_argument(
        "--models",
        default=",".join(MODELS),
        metavar="MODEL[,MODEL...]",
        help=(
            "machine models to render: nopred, proposed, baseline "
            "(default: all three; the artifact always carries all)"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the schema-versioned JSON artifact to PATH",
    )
    parser.add_argument(
        "--width", type=int, default=40, help="bar width (default 40)"
    )
    return parser


def _parse_names(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names: List[str] = []
    for chunk in values:
        names.extend(name for name in chunk.split(",") if name)
    return names


def collect_stacks(
    settings: EvaluationSettings, roles: List[str]
) -> Dict[str, Dict[str, Dict[str, int]]]:
    """Simulate every benchmark on every role with cycle accounting.

    Returns ``{"bench@machine": {model: {cause: cycles}}}``, sorted by
    key — the artifact's ``stacks`` payload.
    """
    evaluation = Evaluation(settings, collect_cycles=True)
    for role in roles:
        machine = evaluation.machine_for(role)
        for benchmark in evaluation.benchmarks:
            evaluation.simulation(benchmark, machine)
    return evaluation.cycle_stack_results()


def artifact_payload(
    settings: EvaluationSettings,
    roles: List[str],
    stacks: Dict[str, Dict[str, Dict[str, int]]],
) -> Dict:
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "cpi_schema": CPI_SCHEMA_VERSION,
        "settings": {
            "scale": settings.scale,
            "threshold": settings.spec_config.threshold,
            "benchmarks": list(settings.benchmarks),
            "machines": list(roles),
        },
        "stacks": {
            key: {model: dict(sorted(counts.items())) for model, counts in models.items()}
            for key, models in sorted(stacks.items())
        },
    }


def dump_artifact(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_artifact(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    schema = payload.get("schema")
    if schema != ARTIFACT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: artifact schema v{schema} unsupported "
            f"(this tool reads v{ARTIFACT_SCHEMA_VERSION})"
        )
    return payload


def render_report(
    stacks: Dict[str, Dict[str, Dict[str, int]]],
    models: List[str],
    width: int,
) -> str:
    sections: List[str] = []
    for key, per_model in sorted(stacks.items()):
        for model in models:
            counts = per_model.get(model)
            if counts is None:
                continue
            sections.append(
                render_stack(
                    CPIStack.of(counts), title=f"{key} [{model}]", width=width
                )
            )
    return "\n\n".join(sections)


def render_story_diff(
    stacks: Dict[str, Dict[str, Dict[str, int]]], width: int
) -> str:
    """The paper's story, per simulation point: speculative (proposed)
    minus no-prediction — load-wait cycles shrink, recovery causes
    (sync_stall/reexec/flush_recovery) appear."""
    sections: List[str] = []
    for key, per_model in sorted(stacks.items()):
        proposed = CPIStack.of(per_model.get("proposed", {}))
        nopred = CPIStack.of(per_model.get("nopred", {}))
        sections.append(
            render_diff(
                proposed,
                nopred,
                title=f"{key}: proposed - no-prediction",
                width=width,
            )
        )
    return "\n\n".join(sections)


def render_artifact_diff(old: Dict, new: Dict, width: int) -> str:
    old_stacks = old.get("stacks", {})
    new_stacks = new.get("stacks", {})
    sections: List[str] = []
    for key in sorted(set(old_stacks) | set(new_stacks)):
        old_models = old_stacks.get(key, {})
        new_models = new_stacks.get(key, {})
        for model in MODELS:
            if model not in old_models and model not in new_models:
                continue
            sections.append(
                render_diff(
                    CPIStack.of(new_models.get(model, {})),
                    CPIStack.of(old_models.get(model, {})),
                    title=f"{key} [{model}]",
                    width=width,
                )
            )
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "diff" and args.artifacts:
        if len(args.artifacts) != 2:
            print(
                "repro-cycles diff takes exactly two artifact files (OLD NEW)",
                file=sys.stderr,
            )
            return 2
        try:
            old = load_artifact(args.artifacts[0])
            new = load_artifact(args.artifacts[1])
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(render_artifact_diff(old, new, args.width))
        return 0
    if args.artifacts:
        print(
            f"unexpected positional argument(s) for {args.command!r}: "
            f"{' '.join(args.artifacts)}",
            file=sys.stderr,
        )
        return 2

    settings = EvaluationSettings(scale=args.scale).with_threshold(args.threshold)
    try:
        settings = settings.with_benchmarks(_parse_names(args.benchmarks))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    roles = _parse_names([args.machines]) or ["base", "wide"]
    models = _parse_names([args.models]) or list(MODELS)
    unknown = [m for m in models if m not in MODELS]
    if unknown:
        print(
            f"unknown model(s) {', '.join(unknown)}; "
            f"available: {', '.join(MODELS)}",
            file=sys.stderr,
        )
        return 2

    stacks = collect_stacks(settings, roles)
    payload = artifact_payload(settings, roles, stacks)
    if args.out:
        dump_artifact(payload, args.out)

    if args.command == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.command == "diff":
        print(render_story_diff(stacks, args.width))
    else:
        print(render_report(stacks, models, args.width))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
