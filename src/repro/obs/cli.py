"""``repro-trace``: export simulator activity as a Perfetto trace.

Usage::

    repro-trace                               # the paper's worked example
    repro-trace --scenario "r4 mispredicted"  # another Figure 3 scenario
    repro-trace compress --scale 0.25         # a benchmark's hottest blocks
    repro-trace li --pattern best --max-blocks 2
    repro-trace --metrics metrics.json        # also dump the metrics snapshot
    repro-trace --runner-events run.jsonl     # add runner pipeline-stage spans
    repro-trace --sweep-events sweep.jsonl    # add a sweep's distributed timeline

The default target is the paper's worked example: the chosen scenario is
re-simulated with tracing and metrics enabled, exported as Chrome
trace-event JSON (open it at https://ui.perfetto.dev), and the metrics
snapshot is cross-checked against the simulator's own counters
(``cce.flush + cce.reexec`` must equal flushed + executed).

With a benchmark name the full in-process pipeline runs (build, profile,
compile), the program is simulated once with ``collect_metrics=True``,
and the top ``--max-blocks`` speculated blocks (by profiled frequency)
are each traced under the chosen outcome pattern on their own pair of
process tracks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.perfetto import (
    block_run_events,
    chrome_trace,
    runner_span_events,
    sweep_span_events,
    write_trace,
)

_MACHINES = {"4w": PLAYDOH_4W, "8w": PLAYDOH_8W}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Export dual-engine simulator activity (and optionally runner "
            "pipeline stages) as Chrome trace-event / Perfetto JSON."
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default="example",
        help=(
            "'example' (default: the paper's worked example) or a "
            "benchmark name from the workload suite"
        ),
    )
    parser.add_argument(
        "--scenario",
        default="r7 mispredicted",
        help=(
            "worked-example scenario to trace: 'both correct', "
            "'r7 mispredicted' (default), 'r4 mispredicted', "
            "'both mispredicted'"
        ),
    )
    parser.add_argument(
        "--pattern",
        choices=("worst", "best"),
        default="worst",
        help=(
            "benchmark mode: outcome pattern for the traced blocks "
            "(worst = all mispredicted, default; best = all correct)"
        ),
    )
    parser.add_argument(
        "--machine",
        choices=sorted(_MACHINES),
        default="4w",
        help="target machine (default: 4w)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0, help="workload size multiplier"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.65,
        help="profile prediction-rate threshold (paper: 0.65)",
    )
    parser.add_argument(
        "--max-blocks",
        type=int,
        default=4,
        help="benchmark mode: trace at most this many hottest speculated blocks",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="trace output path (default: <target>.trace.json)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also write the collected metrics snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--runner-events",
        metavar="PATH",
        default=None,
        help=(
            "runner --events JSONL file; its job spans are added to the "
            "trace on a separate runner process track"
        ),
    )
    parser.add_argument(
        "--sweep-events",
        metavar="PATH",
        default=None,
        help=(
            "sweep service event JSONL (raw broker records, e.g. from "
            "repro-top --events-out); rendered as a distributed timeline "
            "with one track per worker plus queue-wait spans"
        ),
    )
    return parser


def _write_metrics(path: Optional[str], snapshot: MetricsSnapshot) -> None:
    if path is None:
        return
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def _family_total(snapshot: MetricsSnapshot, name: str) -> int:
    """Sum of the bare counter and all labelled series of one name."""
    return snapshot.counter(name) + sum(snapshot.counter_family(name).values())


def _check_consistency(snapshot: MetricsSnapshot, flushed: int, executed: int) -> bool:
    """The metrics snapshot must agree with the simulator's own counters."""
    flush = _family_total(snapshot, "cce.flush")
    reexec = _family_total(snapshot, "cce.reexec")
    ok = flush + reexec == flushed + executed
    verdict = "OK" if ok else "MISMATCH"
    print(
        f"consistency: cce.flush({flush}) + cce.reexec({reexec}) "
        f"vs simulator flushed({flushed}) + executed({executed}) -> {verdict}"
    )
    return ok


def _trace_example(args: argparse.Namespace) -> int:
    from repro.core.machine_sim import simulate_block
    from repro.evaluation.paper_example import run_example

    machine = _MACHINES[args.machine]
    example = run_example(machine=machine)
    if args.scenario not in example.scenarios:
        print(
            f"unknown scenario {args.scenario!r}; available: "
            f"{', '.join(example.scenarios)}",
            file=sys.stderr,
        )
        return 2
    l4, l7 = example.spec_schedule.spec.ldpred_ids
    outcomes = {
        "both correct": {l4: True, l7: True},
        "r7 mispredicted": {l4: True, l7: False},
        "r4 mispredicted": {l4: False, l7: True},
        "both mispredicted": {l4: False, l7: False},
    }[args.scenario]

    registry = MetricsRegistry()
    run = simulate_block(
        example.spec_schedule,
        outcomes,
        collect_trace=True,
        collect_cycles=True,
        metrics=registry,
    )
    snapshot = registry.snapshot()

    events = block_run_events(
        example.spec_schedule,
        run,
        title=f"paper example [{args.scenario}]",
    )
    events.extend(_runner_events(args))
    out = args.out or "example.trace.json"
    write_trace(out, chrome_trace(events, other_data={"scenario": args.scenario}))
    _write_metrics(args.metrics, snapshot)

    print(f"wrote {out}: {len(events)} trace events ({args.scenario})")
    print(
        f"  {run.effective_length} cycles, {run.mispredictions}/"
        f"{run.predictions} mispredicted, {run.flushed} flushed, "
        f"{run.executed} re-executed"
    )
    if args.metrics:
        print(f"wrote {args.metrics}")
    return 0 if _check_consistency(snapshot, run.flushed, run.executed) else 1


def _trace_benchmark(args: argparse.Namespace) -> int:
    from repro.core.machine_sim import simulate_block
    from repro.core.program_sim import simulate_program
    from repro.evaluation.experiment import Evaluation, EvaluationSettings
    from repro.workloads.suite import resolve_benchmarks

    try:
        resolve_benchmarks([args.target])
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    machine = _MACHINES[args.machine]
    settings = EvaluationSettings(scale=args.scale).with_threshold(args.threshold)
    settings = settings.with_benchmarks([args.target])
    evaluation = Evaluation(settings)
    compilation = evaluation.compilation(args.target, machine)
    result = simulate_program(compilation, collect_metrics=True)
    snapshot = result.metrics

    # Hottest speculated blocks by profiled frequency.
    weighted = sorted(
        (
            (compilation.profile.blocks.count(label), label)
            for label in compilation.speculated_labels
        ),
        reverse=True,
    )
    chosen = [label for weight, label in weighted[: args.max_blocks] if weight > 0]
    events: List[Dict[str, Any]] = []
    for index, label in enumerate(chosen):
        comp = compilation.block(label)
        correct = args.pattern == "best"
        outcomes = {l: correct for l in comp.spec_schedule.spec.ldpred_ids}
        run = simulate_block(
            comp.spec_schedule, outcomes, collect_trace=True, collect_cycles=True
        )
        events.extend(
            block_run_events(
                comp.spec_schedule,
                run,
                base_pid=index * 10,
                title=f"{args.target}:{label} [{args.pattern}]",
            )
        )
    events.extend(_runner_events(args))

    out = args.out or f"{args.target}.trace.json"
    write_trace(
        out,
        chrome_trace(
            events,
            other_data={
                "benchmark": args.target,
                "machine": machine.name,
                "pattern": args.pattern,
                "blocks": chosen,
            },
        ),
    )
    _write_metrics(args.metrics, snapshot)

    skipped = len(compilation.speculated_labels) - len(chosen)
    print(
        f"wrote {out}: {len(events)} trace events over {len(chosen)} "
        f"speculated block(s)" + (f" ({skipped} not traced)" if skipped > 0 else "")
    )
    print(
        f"  {args.target}@{machine.name}: speedup {result.speedup_proposed:.3f}, "
        f"accuracy {result.prediction_accuracy:.3f}, "
        f"{result.cc_flushed} flushed, {result.cc_executed} re-executed"
    )
    if args.metrics:
        print(f"wrote {args.metrics}")
    return 0 if _check_consistency(snapshot, result.cc_flushed, result.cc_executed) else 1


def _runner_events(args: argparse.Namespace) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    if args.runner_events is not None:
        from repro.runner.events import read_events

        out.extend(runner_span_events(read_events(args.runner_events)))
    if args.sweep_events is not None:
        from repro.runner.events import read_events

        out.extend(sweep_span_events(read_events(args.sweep_events)))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.target == "example":
        return _trace_example(args)
    return _trace_benchmark(args)


if __name__ == "__main__":
    raise SystemExit(main())
