"""Cycle accounting: attribute every simulated cycle to one cause.

The paper's whole argument is a cycle ledger — value speculation trades
load-dependence stall cycles for (hopefully fewer) check/flush/re-exec
recovery cycles — so the simulator must be able to say not just *how
many* cycles a block cost but *why*.  This module provides:

* :class:`CycleLedger` — the write side the engines charge into, with
  the same zero-cost-when-disabled discipline as
  :class:`repro.obs.metrics.MetricsRegistry` (:data:`NULL_CYCLES` is the
  shared disabled instance);
* :func:`attribute_schedule` — static attribution of a
  :class:`~repro.sched.schedule.Schedule`: every cycle of the schedule
  length goes to exactly one cause, by construction;
* :class:`CPIStack` — the schema-versioned aggregate artifact, with
  merge/scale/diff and JSON round-trips (baseline vs. speculative is a
  first-class delta view);
* text renderers for the ``repro-cycles`` CLI bar charts.

Causes (:data:`CAUSES`) and precedence when several coincide:

``issue``
    A cycle in which a long instruction issued (useful work).  An
    instruction whose slots are *all* check-compares is charged to
    ``check_compare`` instead — the cycle exists only to verify.
``check_compare``
    Check-compare issue cycles, plus gap/tail cycles bound by an
    in-flight check's latency.
``load_wait``
    Gap or tail cycles bound by an in-flight load (or LdPred): the
    schedule is waiting on memory latency.
``dep_stall``
    Remaining schedule bubbles — gaps bound by a non-load, non-check
    operation (or by nothing at all): plain dependence height.
``sync_stall``
    Dynamic cycles the VLIW engine stalled on sync bits that were
    cleared by a *check* (waiting for verification).
``reexec``
    Dynamic sync-bit stalls whose binding bit was cleared by a CC-engine
    *re-execution* — recovery compute on the second engine, and the
    baseline machine's serial compensation-block cycles.
``flush_recovery``
    Dynamic sync-bit stalls whose binding bit was cleared by a CC-engine
    *flush* (correct speculation retired from the CCB).
``ccb_pressure``
    Issue stalled because the Compensation Code Buffer was full and the
    engine had to wait for the CCE to free entries.
``branch_penalty``
    Baseline-machine branch redirects into/out of compensation blocks.
``icache_miss``
    Instruction-cache miss penalties (any machine, when modelled).

When one stall has several plausible causes the *binding* event wins:
for sync stalls the bit with the latest clear time (ties broken
``execute`` > ``flush`` > ``check``), for schedule gaps and tails the
in-flight operation with the latest completion (ties broken
``load_wait`` > ``check_compare`` > ``dep_stall``).

The hard invariant — ``sum(stack) == total cycles`` — is asserted in
debug runs by :func:`repro.core.machine_sim.simulate_block` and
:func:`repro.core.program_sim.simulate_program`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ir.opcodes import Opcode

#: Every cause the engines charge, in display order.
CAUSES: Tuple[str, ...] = (
    "issue",
    "check_compare",
    "load_wait",
    "dep_stall",
    "sync_stall",
    "reexec",
    "flush_recovery",
    "ccb_pressure",
    "branch_penalty",
    "icache_miss",
)

#: Bump when the CPI-stack artifact shape changes.
CPI_SCHEMA_VERSION = 1

#: Tie-break rank for gap/tail binding operations.
BIND_RANK = {"load_wait": 2, "check_compare": 1, "dep_stall": 0}

#: Sync-stall cause by who cleared the binding bit.
SYNC_CLEAR_CAUSES: Dict[Optional[str], str] = {
    "execute": "reexec",
    "flush": "flush_recovery",
    "check": "sync_stall",
    None: "sync_stall",
}

#: Tie-break rank for the binding sync bit (latest clear wins first).
SYNC_SOURCE_RANK = {"execute": 3, "flush": 2, "check": 1, None: 0}


def operation_wait_cause(opcode: Opcode) -> str:
    """The cause charged when this in-flight operation binds a gap/tail."""
    if opcode in (Opcode.LOAD, Opcode.LDPRED):
        return "load_wait"
    if opcode is Opcode.CHKPRED:
        return "check_compare"
    return "dep_stall"


def instruction_cause(instr: Any) -> str:
    """The cause of an instruction's own issue cycle."""
    if instr.slots and all(
        slot.operation.opcode is Opcode.CHKPRED for slot in instr.slots
    ):
        return "check_compare"
    return "issue"


class CycleLedger:
    """Write side of cycle accounting.

    Engines call :meth:`charge` once per attributed chunk.  A disabled
    ledger (the shared :data:`NULL_CYCLES`) rejects every charge after a
    single branch, so the hot loops stay instrumented unconditionally.
    With ``record_events=True`` each charge is also kept as an
    ``(at, cause, cycles)`` event for Perfetto counter tracks.
    """

    __slots__ = ("enabled", "counts", "events", "record_events")

    def __init__(self, enabled: bool = True, record_events: bool = False):
        self.enabled = enabled
        self.record_events = record_events
        self.counts: Dict[str, int] = {}
        self.events: List[Tuple[int, str, int]] = []

    def charge(self, cause: str, cycles: int, at: Optional[int] = None) -> None:
        """Attribute ``cycles`` to ``cause`` (no-op when disabled or 0)."""
        if not self.enabled or cycles <= 0:
            return
        self.counts[cause] = self.counts.get(cause, 0) + cycles
        if self.record_events and at is not None:
            self.events.append((at, cause, cycles))

    def total(self) -> int:
        return sum(self.counts.values())


#: Shared disabled ledger: the default for every instrumented code path.
NULL_CYCLES = CycleLedger(enabled=False)


def attribute_schedule(schedule: Any) -> Dict[str, int]:
    """Statically attribute every cycle of a schedule to one cause.

    Decomposes ``schedule.length`` as *leading gap + inner gaps + one
    issue cycle per instruction + completion tail*; each gap/tail is
    charged to the in-flight operation with the latest completion (see
    module docstring for precedence).  The returned counts sum to
    ``schedule.length`` by construction.
    """
    counts: Dict[str, int] = {}

    def charge(cause: str, cycles: int) -> None:
        if cycles > 0:
            counts[cause] = counts.get(cause, 0) + cycles

    prev_cycle = -1
    # Longest-completion operation issued so far (the binding op).
    best_completion = -1
    best_rank = -1
    best_cause = "dep_stall"
    for instr in schedule.instructions():
        gap = instr.cycle - prev_cycle - 1
        if gap > 0:
            # The gap is bound by the longest in-flight op, if any is
            # still executing when the gap starts.
            if best_completion > prev_cycle + 1:
                charge(best_cause, gap)
            else:
                charge("dep_stall", gap)
        charge(instruction_cause(instr), 1)
        for slot in instr.slots:
            completion = instr.cycle + slot.latency
            cause = operation_wait_cause(slot.operation.opcode)
            rank = BIND_RANK.get(cause, 0)
            if completion > best_completion or (
                completion == best_completion and rank > best_rank
            ):
                best_completion = completion
                best_rank = rank
                best_cause = cause
        prev_cycle = instr.cycle
    charge(best_cause, schedule.length - prev_cycle - 1)
    return counts


@dataclass(frozen=True)
class CPIStack:
    """Schema-versioned per-cause cycle breakdown (immutable aggregate)."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, counts: Mapping[str, int]) -> "CPIStack":
        return cls(counts={k: int(v) for k, v in counts.items() if v})

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def get(self, cause: str) -> int:
        return self.counts.get(cause, 0)

    def fraction(self, cause: str) -> float:
        total = self.total
        return self.counts.get(cause, 0) / total if total else 0.0

    def merged(self, other: "CPIStack") -> "CPIStack":
        counts = dict(self.counts)
        for cause, cycles in other.counts.items():
            counts[cause] = counts.get(cause, 0) + cycles
        return CPIStack.of(counts)

    def scaled(self, factor: int) -> "CPIStack":
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return CPIStack.of({k: v * factor for k, v in self.counts.items()})

    def diff(self, other: "CPIStack") -> Dict[str, int]:
        """Per-cause delta ``self - other`` over the union of causes.

        Keys with a zero delta are dropped, so an empty dict means the
        stacks are identical.
        """
        out: Dict[str, int] = {}
        for cause in set(self.counts) | set(other.counts):
            delta = self.counts.get(cause, 0) - other.counts.get(cause, 0)
            if delta:
                out[cause] = delta
        return out

    def dominant(self, exclude: Sequence[str] = ("issue",)) -> Optional[str]:
        """The largest cause outside ``exclude`` (ties broken by the
        :data:`CAUSES` display order, then name); ``None`` if empty."""

        def order(cause: str) -> Tuple[int, str]:
            try:
                return (CAUSES.index(cause), cause)
            except ValueError:
                return (len(CAUSES), cause)

        candidates = [
            (cycles, cause)
            for cause, cycles in self.counts.items()
            if cause not in exclude and cycles > 0
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda cv: (-cv[0], order(cv[1])))[1]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": CPI_SCHEMA_VERSION,
            "total": self.total,
            "counts": dict(sorted(self.counts.items())),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CPIStack":
        schema = data.get("schema", CPI_SCHEMA_VERSION)
        if schema != CPI_SCHEMA_VERSION:
            raise ValueError(
                f"CPI stack schema v{schema} unsupported "
                f"(this code reads v{CPI_SCHEMA_VERSION})"
            )
        return cls.of({k: int(v) for k, v in data.get("counts", {}).items()})


def _ordered_causes(counts: Mapping[str, int]) -> List[str]:
    """Known causes in display order, then unknown extras alphabetically."""
    extras = sorted(set(counts) - set(CAUSES))
    return [c for c in CAUSES if c in counts] + extras


def render_stack(
    stack: CPIStack, title: Optional[str] = None, width: int = 40
) -> str:
    """Text bar chart of one stack (largest-known-cause bar = ``width``)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    total = stack.total
    lines.append(f"  total cycles: {total}")
    peak = max(stack.counts.values(), default=0)
    for cause in _ordered_causes(stack.counts):
        cycles = stack.counts[cause]
        bar = "#" * max(1, round(cycles / peak * width)) if peak else ""
        lines.append(
            f"  {cause:<14} {cycles:>12}  {stack.fraction(cause) * 100:5.1f}%  {bar}"
        )
    return "\n".join(lines)


def render_diff(
    new: CPIStack,
    old: CPIStack,
    title: Optional[str] = None,
    width: int = 40,
) -> str:
    """Text view of ``new - old``: signed bars, shrinking causes ``-``."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"  total cycles: {old.total} -> {new.total} "
        f"({new.total - old.total:+d})"
    )
    deltas = new.diff(old)
    if not deltas:
        lines.append("  (identical)")
        return "\n".join(lines)
    peak = max(abs(d) for d in deltas.values())
    for cause in _ordered_causes(deltas):
        delta = deltas[cause]
        glyph = "+" if delta > 0 else "-"
        bar = glyph * max(1, round(abs(delta) / peak * width))
        lines.append(f"  {cause:<14} {delta:>+12}  {bar}")
    return "\n".join(lines)
