"""Typed structured trace events for the dual-engine simulator.

These dataclasses replace the former ``(cycle, "free-form string")``
tuples: every event carries a machine-readable ``kind``, the engine that
produced it, a ``cycle``, and whatever identifiers the event is about
(``op_id``, sync bit, verdict).  Consumers that want the old human text
call :meth:`TraceEvent.describe`; consumers that want structure (the
timeline renderer, the Perfetto exporter, tests) match on the event
classes or ``kind`` and never parse strings.

Events are collected by a :class:`TraceSink`, which the block simulator
threads through the VLIW engine, the Compensation Code Engine, the OVB
and the Synchronization register.  A ``None`` sink disables tracing
entirely (the default for bulk simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Iterator, List, Tuple

#: Engine/track identifiers, used by the Perfetto exporter for grouping.
ENGINE_VLIW = "vliw"
ENGINE_CCE = "cce"
ENGINE_OVB = "ovb"
ENGINE_SYNC = "sync"

_ENGINE_PREFIX = {
    ENGINE_VLIW: "VLIW",
    ENGINE_CCE: "CCE",
    ENGINE_OVB: "OVB",
    ENGINE_SYNC: "SYNC",
}


@dataclass(frozen=True)
class TraceEvent:
    """Base class: one thing that happened at one cycle."""

    kind: ClassVar[str] = "event"
    engine: ClassVar[str] = ""

    cycle: int

    def describe(self) -> str:
        """Human-readable body (no engine prefix)."""
        return self.kind

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form, ``kind``/``engine`` included."""
        out: Dict[str, Any] = {"kind": self.kind, "engine": self.engine}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    def __str__(self) -> str:
        prefix = _ENGINE_PREFIX.get(self.engine, self.engine)
        return f"{prefix}: {self.describe()}" if prefix else self.describe()


# -- VLIW Engine events ------------------------------------------------------

@dataclass(frozen=True)
class StallEvent(TraceEvent):
    """An instruction stalled on Synchronization bits before issuing."""

    kind: ClassVar[str] = "stall"
    engine: ClassVar[str] = ENGINE_VLIW

    bits: Tuple[int, ...]
    stall: int

    def describe(self) -> str:
        return f"stall {self.stall} cycle(s) on bits {list(self.bits)}"


@dataclass(frozen=True)
class BufferStallEvent(TraceEvent):
    """Issue stalled (or overflowed) on a full speculation buffer.

    ``buffer`` is ``"ccb"`` or ``"ovb"``.  For the CCB the VLIW engine
    stalls issue until the Compensation Code Engine frees entries and
    ``stall`` is the cycles lost; a structural overflow (no frees can
    ever help) raises instead and ``stall`` is 0.  The OVB has no stall
    path — overflow always raises — so its events carry ``stall=0``.
    """

    kind: ClassVar[str] = "buffer_stall"
    engine: ClassVar[str] = ENGINE_VLIW

    buffer: str
    op_id: int
    stall: int

    def describe(self) -> str:
        if self.stall:
            return (
                f"stall {self.stall} cycle(s): {self.buffer.upper()} full "
                f"at op{self.op_id}"
            )
        return f"{self.buffer.upper()} full at op{self.op_id}"


@dataclass(frozen=True)
class LdPredEvent(TraceEvent):
    """An ``LdPred`` issued: predicted value deposited, sync bit set."""

    kind: ClassVar[str] = "ldpred"
    engine: ClassVar[str] = ENGINE_VLIW

    op_id: int
    sync_bit: int

    def describe(self) -> str:
        return f"LdPred op{self.op_id} sets bit {self.sync_bit}"


@dataclass(frozen=True)
class SpeculateEvent(TraceEvent):
    """A speculated op issued and shipped into the CCB."""

    kind: ClassVar[str] = "speculate"
    engine: ClassVar[str] = ENGINE_VLIW

    op_id: int
    sync_bit: int

    def describe(self) -> str:
        return f"speculate op{self.op_id} (bit {self.sync_bit}) -> CCB"


@dataclass(frozen=True)
class CheckEvent(TraceEvent):
    """A check-prediction op completed with a verdict."""

    kind: ClassVar[str] = "check"
    engine: ClassVar[str] = ENGINE_VLIW

    op_id: int
    ldpred_id: int
    correct: bool

    def describe(self) -> str:
        verdict = "correct" if self.correct else "MISPREDICT"
        return f"check op{self.op_id}: {verdict} (LdPred op{self.ldpred_id})"


@dataclass(frozen=True)
class BitClearEvent(TraceEvent):
    """A successful check cleared a dependent speculated op's bit."""

    kind: ClassVar[str] = "bit_clear"
    engine: ClassVar[str] = ENGINE_VLIW

    op_id: int
    sync_bit: int

    def describe(self) -> str:
        return f"check clears bit of op{self.op_id} (all origins correct)"


# -- Compensation Code Engine events ----------------------------------------

@dataclass(frozen=True)
class FlushEvent(TraceEvent):
    """A correctly speculated CCB entry drained in one pipeline slot."""

    kind: ClassVar[str] = "flush"
    engine: ClassVar[str] = ENGINE_CCE

    op_id: int
    completion: int

    def describe(self) -> str:
        return f"flush op{self.op_id}"


@dataclass(frozen=True)
class ExecuteEvent(TraceEvent):
    """A CCB entry re-executed with corrected operand values."""

    kind: ClassVar[str] = "execute"
    engine: ClassVar[str] = ENGINE_CCE

    op_id: int
    completion: int

    def describe(self) -> str:
        return f"execute op{self.op_id} -> done @{self.completion}"


# -- Operand Value Buffer events --------------------------------------------

@dataclass(frozen=True)
class OvbTransitionEvent(TraceEvent):
    """An OVB record entered a verification state (PN/RN/C/R)."""

    kind: ClassVar[str] = "ovb_transition"
    engine: ClassVar[str] = ENGINE_OVB

    op_id: int
    state: str

    def describe(self) -> str:
        return f"op{self.op_id} -> {self.state}"


# -- Synchronization register events ----------------------------------------

@dataclass(frozen=True)
class SyncSetEvent(TraceEvent):
    """A Synchronization bit was set by its producer."""

    kind: ClassVar[str] = "sync_set"
    engine: ClassVar[str] = ENGINE_SYNC

    bit: int

    def describe(self) -> str:
        return f"set bit {self.bit}"


@dataclass(frozen=True)
class SyncClearEvent(TraceEvent):
    """A Synchronization bit's clear time was recorded (or improved)."""

    kind: ClassVar[str] = "sync_clear"
    engine: ClassVar[str] = ENGINE_SYNC

    bit: int

    def describe(self) -> str:
        return f"clear bit {self.bit}"


class TraceSink:
    """Ordered collector of :class:`TraceEvent`.

    Events arrive in emission order, which is chronological per engine
    but only loosely so across engines; consumers that need a global
    order sort by ``cycle`` (Python's stable sort preserves emission
    order within a cycle).
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def sorted(self) -> List[TraceEvent]:
        return sorted(self.events, key=lambda e: e.cycle)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
