"""Chrome trace-event / Perfetto JSON export.

Renders the dual-engine simulation and the runner's pipeline stages in
the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
which both ``chrome://tracing`` and https://ui.perfetto.dev open
directly.

Track layout for one simulated block (:func:`block_run_events`):

* a **VLIW Engine** process with one thread per issue slot (operation
  spans, duration = latency), a *stalls* thread (sync-bit stall spans),
  a *verify* thread (check verdicts as instants) and a *sync bits*
  thread (set/clear instants);
* a **Compensation Code Engine** process whose *pipeline* thread carries
  flush/execute spans.

Simulator timestamps are cycles, exported 1 cycle = 1 µs so Perfetto's
zoom and duration readouts show cycle counts directly.

:func:`runner_span_events` converts a :mod:`repro.runner.events` stream
(the ``--events`` JSONL) into per-stage spans: each ``job_start`` /
``job_finish`` pair becomes a span on its stage's thread, cache hits
become instants, and the whole run is one enclosing span.

:func:`sweep_span_events` renders a *sweep service* event log (the raw
broker records from ``GET /sweeps/<id>/events``, which carry wall-clock
timestamps and worker identities) as a distributed timeline: one thread
per worker carrying execution spans, plus a *queue* thread whose spans
show how long each job sat pending before a worker picked it up —
queue-wait made visible is the whole point.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.trace import (
    BitClearEvent,
    BufferStallEvent,
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    StallEvent,
    SyncClearEvent,
    SyncSetEvent,
    TraceEvent,
)

#: pid reserved for the runner's pipeline-stage tracks.
RUNNER_PID = 1000

#: pid reserved for the sweep service's distributed-timeline tracks.
WORKERS_PID = 2000


def _meta(name: str, pid: int, tid: Optional[int] = None, label: str = "") -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid if tid is not None else 0,
        "ts": 0,
        "args": {"name": label},
    }
    return event


def _span(
    name: str,
    ts: float,
    dur: float,
    pid: int,
    tid: int,
    cat: str = "sim",
    args: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = dict(args)
    return event


def _instant(
    name: str,
    ts: float,
    pid: int,
    tid: int,
    cat: str = "sim",
    args: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": name,
        "cat": cat,
        "ph": "i",
        "s": "t",
        "ts": ts,
        "pid": pid,
        "tid": tid,
    }
    if args:
        event["args"] = dict(args)
    return event


def _counter(
    name: str, ts: float, pid: int, value: float, cat: str = "cpi"
) -> Dict[str, Any]:
    """A counter-track sample (``ph: "C"``); one track per ``name``."""
    return {
        "name": name,
        "cat": cat,
        "ph": "C",
        "ts": ts,
        "pid": pid,
        "tid": 0,
        "args": {"cycles": value},
    }


def block_run_events(
    spec_schedule: Any,
    run: Any,
    base_pid: int = 0,
    title: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Trace events for one traced :class:`~repro.core.machine_sim.BlockRun`.

    ``run`` must come from ``simulate_block(..., collect_trace=True)``.
    ``base_pid`` offsets the process ids so several blocks can coexist in
    one trace file (each block claims ``base_pid+1`` and ``base_pid+2``).
    """
    if not run.issue_times:
        raise ValueError(
            "trace export needs a run simulated with collect_trace=True"
        )
    label = title or run.label
    pid_vliw = base_pid + 1
    pid_cce = base_pid + 2

    # Static facts per op: issue-slot index, latency, opcode, form.
    slot_of: Dict[int, int] = {}
    latency_of: Dict[int, int] = {}
    max_slots = 1
    for instr in spec_schedule.schedule.instructions():
        for index, slot in enumerate(instr.slots):
            slot_of[slot.operation.op_id] = index
            latency_of[slot.operation.op_id] = slot.latency
            max_slots = max(max_slots, index + 1)
    spec = spec_schedule.spec
    by_id = {op.op_id: op for op in spec.operations}

    tid_stalls = max_slots
    tid_verify = max_slots + 1
    tid_sync = max_slots + 2

    events: List[Dict[str, Any]] = [
        _meta("process_name", pid_vliw, label=f"{label}: VLIW Engine"),
        _meta("process_name", pid_cce, label=f"{label}: Compensation Code Engine"),
        _meta("thread_name", pid_cce, 0, "pipeline"),
        _meta("thread_name", pid_vliw, tid_stalls, "stalls"),
        _meta("thread_name", pid_vliw, tid_verify, "verify"),
        _meta("thread_name", pid_vliw, tid_sync, "sync bits"),
    ]
    for index in range(max_slots):
        events.append(_meta("thread_name", pid_vliw, index, f"issue slot {index}"))

    for op_id, issue in run.issue_times:
        op = by_id[op_id]
        info = spec.info[op_id]
        latency = latency_of.get(op_id, 1)
        events.append(
            _span(
                f"op{op_id} {op.opcode.name.lower()}",
                ts=issue,
                dur=max(latency, 1),
                pid=pid_vliw,
                tid=slot_of.get(op_id, 0),
                cat=info.form.name.lower(),
                args={"form": info.form.name, "sync_bit": info.sync_bit},
            )
        )

    for event in run.trace:
        if isinstance(event, StallEvent):
            events.append(
                _span(
                    f"stall on bits {list(event.bits)}",
                    ts=event.cycle - event.stall,
                    dur=event.stall,
                    pid=pid_vliw,
                    tid=tid_stalls,
                    cat="stall",
                    args={"bits": list(event.bits)},
                )
            )
        elif isinstance(event, BufferStallEvent):
            if event.stall > 0:
                events.append(
                    _span(
                        event.describe(),
                        ts=event.cycle - event.stall,
                        dur=event.stall,
                        pid=pid_vliw,
                        tid=tid_stalls,
                        cat="buffer",
                        args={"buffer": event.buffer, "op": event.op_id},
                    )
                )
            else:
                # Overflow (structural failure), not a timed wait.
                events.append(
                    _instant(
                        event.describe(),
                        ts=event.cycle,
                        pid=pid_vliw,
                        tid=tid_stalls,
                        cat="buffer",
                        args={"buffer": event.buffer, "op": event.op_id},
                    )
                )
        elif isinstance(event, CheckEvent):
            verdict = "correct" if event.correct else "MISPREDICT"
            events.append(
                _instant(
                    f"op{event.op_id}: {verdict} (LdPred op{event.ldpred_id})",
                    ts=event.cycle,
                    pid=pid_vliw,
                    tid=tid_verify,
                    cat="check",
                )
            )
        elif isinstance(event, BitClearEvent):
            events.append(
                _instant(
                    f"b{event.sync_bit} cleared for op{event.op_id}",
                    ts=event.cycle,
                    pid=pid_vliw,
                    tid=tid_verify,
                    cat="check",
                )
            )
        elif isinstance(event, (SyncSetEvent, SyncClearEvent)):
            events.append(
                _instant(
                    event.describe(),
                    ts=event.cycle,
                    pid=pid_vliw,
                    tid=tid_sync,
                    cat="sync",
                )
            )
        elif isinstance(event, (FlushEvent, ExecuteEvent)):
            events.append(
                _span(
                    f"{event.kind} op{event.op_id}",
                    ts=event.cycle,
                    dur=max(event.completion - event.cycle, 1),
                    pid=pid_cce,
                    tid=0,
                    cat=event.kind,
                )
            )

    # One counter track per cycle-accounting cause (cumulative cycles);
    # present when the run was simulated with collect_cycles as well.
    cycle_events = getattr(run, "cycle_events", ()) or ()
    totals: Dict[str, int] = {}
    for cycle, cause, cycles in sorted(cycle_events):
        totals[cause] = totals.get(cause, 0) + cycles
        events.append(
            _counter(f"cpi:{cause}", ts=cycle, pid=pid_vliw, value=totals[cause])
        )
    return events


def runner_span_events(events: Iterable[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Pipeline-stage timing spans from a runner event stream.

    Accepts the dictionaries of :class:`repro.runner.events.EventLog`
    (in-memory or parsed back from JSONL by ``read_events``).  Event
    timestamps are seconds since run start and export as microseconds.
    """
    stage_tids: Dict[str, int] = {}

    def tid_for(stage: str) -> int:
        if stage not in stage_tids:
            stage_tids[stage] = len(stage_tids) + 1
        return stage_tids[stage]

    out: List[Dict[str, Any]] = [_meta("process_name", RUNNER_PID, label="repro.runner")]
    open_starts: Dict[Any, float] = {}
    for event in events:
        kind = event.get("event")
        ts = float(event.get("ts", 0.0)) * 1e6
        stage = event.get("stage", "run")
        job = event.get("job", "")
        if kind == "job_start":
            open_starts[(job, event.get("attempt"))] = ts
        elif kind == "job_finish":
            if event.get("cached"):
                out.append(
                    _instant(
                        f"{job} (cached)", ts, RUNNER_PID, tid_for(stage), cat="cache"
                    )
                )
                continue
            start = open_starts.pop((job, event.get("attempt")), None)
            if start is None:
                start = ts - float(event.get("wall_time", 0.0)) * 1e6
            out.append(
                _span(
                    job,
                    ts=start,
                    dur=max(ts - start, 1.0),
                    pid=RUNNER_PID,
                    tid=tid_for(stage),
                    cat="job",
                    args={"attempt": event.get("attempt"), "key": event.get("key")},
                )
            )
        elif kind == "job_failed":
            out.append(
                _instant(
                    f"FAILED {job}: {event.get('error')}",
                    ts,
                    RUNNER_PID,
                    tid_for(stage),
                    cat="failure",
                )
            )
        elif kind == "run_finish":
            out.append(
                _span(
                    "run",
                    ts=0.0,
                    dur=max(float(event.get("wall_time", 0.0)) * 1e6, 1.0),
                    pid=RUNNER_PID,
                    tid=0,
                    cat="run",
                    args={"executed": event.get("executed"), "cache_hits": event.get("cache_hits")},
                )
            )
    for stage, tid in stage_tids.items():
        out.append(_meta("thread_name", RUNNER_PID, tid, stage))
    out.append(_meta("thread_name", RUNNER_PID, 0, "run"))
    return out


def sweep_span_events(
    records: Iterable[Mapping[str, Any]],
    base_pid: int = WORKERS_PID,
    title: str = "sweep service",
) -> List[Dict[str, Any]]:
    """A sweep's broker event log as a distributed timeline.

    ``records`` are the raw broker records from
    ``GET /sweeps/<id>/events`` (``ServiceClient.events`` or a JSONL
    dump of them; ``repro-top --events-out`` writes one) — *not* the
    client's mirrored local log, whose timestamps are re-stamped with
    the client clock.  Broker records carry one coherent wall clock, so
    cross-worker ordering is meaningful.

    Track layout: one process, a *queue* thread (tid 0) whose spans are
    each job's pending time (``sweep_submitted``/``job_retry``/
    ``job_requeued`` → ``job_start``) and whose instants are jobs
    settled straight from the result cache, plus one thread per worker
    carrying execution spans (``job_start`` → ``job_finish`` /
    ``job_failed``).  Timestamps are normalised to the earliest record
    and exported as wall-clock microseconds.
    """
    records = [dict(r) for r in records]
    if not records:
        return []
    t0 = min(float(r.get("ts", 0.0)) for r in records)

    def us(ts: Any) -> float:
        return max(0.0, (float(ts) - t0) * 1e6)

    tid_queue = 0
    worker_tids: Dict[str, int] = {}

    def tid_for(worker: str) -> int:
        if worker not in worker_tids:
            worker_tids[worker] = len(worker_tids) + 1
        return worker_tids[worker]

    out: List[Dict[str, Any]] = [
        _meta("process_name", base_pid, label=title),
        _meta("thread_name", base_pid, tid_queue, "queue"),
    ]
    #: When each key last became pending (sweep submit, retry, requeue).
    pending_since: Dict[str, float] = {}
    #: Open leases: key -> (start ts, worker, attempt).
    open_leases: Dict[str, Any] = {}
    sweep_ts: Optional[float] = None

    for record in records:
        kind = record.get("event")
        ts = float(record.get("ts", t0))
        key = str(record.get("key", ""))
        job = str(record.get("job", key[:12]))
        stage = record.get("stage", "")
        worker = str(record.get("worker", "") or "")
        if kind == "sweep_submitted":
            sweep_ts = ts
        elif kind == "job_start":
            since = pending_since.pop(key, sweep_ts)
            if since is not None:
                out.append(
                    _span(
                        f"{job} queued",
                        ts=us(since),
                        dur=max(us(ts) - us(since), 1.0),
                        pid=base_pid,
                        tid=tid_queue,
                        cat="queue_wait",
                        args={"stage": stage, "key": key},
                    )
                )
            open_leases[key] = (ts, worker, record.get("attempt"))
        elif kind in ("job_finish", "job_failed"):
            lease = open_leases.pop(key, None)
            if lease is None:
                # Settled without a lease in this log: a submit-time
                # cache hit (or a dep-failure cascade) — an instant on
                # the queue track.
                label = (
                    f"{job} (cached)"
                    if kind == "job_finish"
                    else f"FAILED {job}: {record.get('error')}"
                )
                out.append(
                    _instant(
                        label,
                        us(ts),
                        base_pid,
                        tid_queue,
                        cat="cache" if kind == "job_finish" else "failure",
                        args={"stage": stage, "key": key},
                    )
                )
                continue
            start_ts, lease_worker, attempt = lease
            span_worker = worker or lease_worker or "?"
            name = job if kind == "job_finish" else f"FAILED {job}"
            args = {
                "stage": stage,
                "key": key,
                "attempt": attempt,
                "worker": span_worker,
            }
            if kind == "job_finish":
                args["cached"] = record.get("cached")
                args["wall_time"] = record.get("wall_time")
            else:
                args["error"] = record.get("error")
            out.append(
                _span(
                    name,
                    ts=us(start_ts),
                    dur=max(us(ts) - us(start_ts), 1.0),
                    pid=base_pid,
                    tid=tid_for(span_worker),
                    cat="job" if kind == "job_finish" else "failure",
                    args=args,
                )
            )
        elif kind in ("job_retry", "job_requeued"):
            lease = open_leases.pop(key, None)
            if lease is not None and kind == "job_requeued":
                # Lease expired mid-flight: close the span at the
                # requeue so the dead worker's track shows the loss.
                start_ts, lease_worker, attempt = lease
                out.append(
                    _span(
                        f"{job} (lease expired)",
                        ts=us(start_ts),
                        dur=max(us(ts) - us(start_ts), 1.0),
                        pid=base_pid,
                        tid=tid_for(worker or lease_worker or "?"),
                        cat="expired",
                        args={"stage": stage, "key": key},
                    )
                )
            pending_since[key] = ts
            out.append(
                _instant(
                    f"{job} {kind.replace('job_', '')}",
                    us(ts),
                    base_pid,
                    tid_queue,
                    cat="requeue",
                    args={"reason": record.get("reason") or record.get("error")},
                )
            )
    for worker, tid in worker_tids.items():
        out.append(_meta("thread_name", base_pid, tid, f"worker {worker}"))
    return out


def chrome_trace(
    events: Sequence[Mapping[str, Any]],
    other_data: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Wrap trace events in the JSON-object container format."""
    payload: Dict[str, Any] = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if other_data:
        payload["otherData"] = dict(other_data)
    return payload


def write_trace(path: str, payload: Mapping[str, Any]) -> None:
    """Write a trace to disk after validating it."""
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(f"invalid chrome trace: {problems[0]}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural check; returns a list of problems (empty = valid).

    Accepts both container formats: a JSON object with ``traceEvents``
    or a bare JSON array of events.
    """
    problems: List[str] = []
    if isinstance(payload, Mapping):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["'traceEvents' missing or not a list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"trace must be an object or array, got {type(payload).__name__}"]
    for index, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event {index} is not an object")
            continue
        for field in ("name", "ph", "pid", "tid", "ts"):
            if field not in event:
                problems.append(f"event {index} lacks {field!r}")
        if event.get("ph") == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: 'X' span needs dur >= 0")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serialisable: {exc}")
    return problems
