"""Structured JSON logging with propagated correlation IDs.

The sweep service is a distributed system; grepping interleaved prints
from a broker and a fleet of workers is how stuck sweeps stay stuck.
This module replaces the ad-hoc ``print(..., file=sys.stderr)`` calls
with one-line JSON records::

    {"ts": 1754500000.123, "level": "info", "logger": "repro.worker",
     "msg": "job finished", "worker_id": "host-a1b2c3",
     "job_key": "9f86d081...", "sweep_id": "4c7a...", "wall_time": 0.41}

Three pieces:

* :func:`get_logger` — a named :class:`JsonLogger` with optional bound
  fields, levels gated by ``$REPRO_LOG_LEVEL`` (default ``info``).
* :func:`log_context` — a context manager pushing correlation fields
  (``sweep_id`` / ``job_key`` / ``worker_id``) onto a
  :mod:`contextvars` stack; every record emitted inside the ``with``
  carries them.  Plain threads start with a fresh context — carry
  fields across with ``contextvars.copy_context().run(...)``, or have
  the thread bind its own identity (what the worker does).  They also
  cross the wire: :class:`~repro.service.client.ServiceClient` serialises the
  current context into an ``X-Repro-Context`` request header, and the
  broker merges it into its own request logs — one ``job_key`` greps
  the client submit, the broker lease, and the worker execution.
* ``$REPRO_LOG_FORMAT=text`` — a human fallback rendering the same
  records as ``LEVEL logger: msg k=v ...`` for interactive terminals.

Records go to ``sys.stderr`` (resolved at write time, so test capture
and redirection work) under a process-wide lock, one ``write()`` call
per record so concurrent threads never interleave partial lines.
"""

from __future__ import annotations

import contextvars
import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, Optional, Tuple

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_context: contextvars.ContextVar[Tuple[Tuple[str, Any], ...]] = (
    contextvars.ContextVar("repro_log_context", default=())
)
_write_lock = threading.Lock()


def context_fields() -> Dict[str, Any]:
    """The correlation fields currently in scope (innermost wins)."""
    return dict(_context.get())


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Push correlation fields for every record emitted inside the block."""
    token = _context.set(_context.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _context.reset(token)


def bind_context(**fields: Any) -> contextvars.Token:
    """Non-scoped variant for long-lived owners (a worker's identity)."""
    return _context.set(_context.get() + tuple(fields.items()))


def _default_level() -> int:
    name = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    return LEVELS.get(name, LEVELS["info"])


def _text_format() -> bool:
    return os.environ.get("REPRO_LOG_FORMAT", "").strip().lower() == "text"


class JsonLogger:
    """A named emitter of one-line JSON records.

    ``stream=None`` resolves ``sys.stderr`` at *write* time, so pytest
    capture, ``contextlib.redirect_stderr`` and daemonised processes all
    see the records where they expect them.
    """

    def __init__(
        self,
        name: str,
        stream: Optional[IO[str]] = None,
        level: Optional[int] = None,
        **bound: Any,
    ):
        self.name = name
        self.stream = stream
        self.level = level if level is not None else _default_level()
        self.bound = dict(bound)

    def child(self, **bound: Any) -> "JsonLogger":
        """A logger sharing this one's config with extra bound fields."""
        merged = {**self.bound, **bound}
        return JsonLogger(self.name, self.stream, self.level, **merged)

    # -- emission -----------------------------------------------------------

    def log(self, level: str, msg: str, **fields: Any) -> Optional[Dict[str, Any]]:
        if LEVELS.get(level, 0) < self.level:
            return None
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "msg": msg,
        }
        record.update(context_fields())
        record.update(self.bound)
        record.update(fields)
        stream = self.stream if self.stream is not None else sys.stderr
        if _text_format():
            extras = " ".join(
                f"{k}={v}"
                for k, v in record.items()
                if k not in ("ts", "level", "logger", "msg")
            )
            line = f"{level.upper():7s} {self.name}: {msg}"
            if extras:
                line += f" [{extras}]"
            line += "\n"
        else:
            line = json.dumps(record, default=str, sort_keys=False) + "\n"
        with _write_lock:
            try:
                stream.write(line)
                stream.flush()
            except (OSError, ValueError):
                pass  # stderr gone (interpreter teardown); drop the record
        return record

    def debug(self, msg: str, **fields: Any) -> None:
        self.log("debug", msg, **fields)

    def info(self, msg: str, **fields: Any) -> None:
        self.log("info", msg, **fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self.log("warning", msg, **fields)

    def error(self, msg: str, **fields: Any) -> None:
        self.log("error", msg, **fields)


def get_logger(name: str, **bound: Any) -> JsonLogger:
    """A fresh :class:`JsonLogger`; cheap enough not to need a registry."""
    return JsonLogger(name, **bound)
