"""Prometheus text exposition for :class:`~repro.obs.metrics.MetricsSnapshot`.

:func:`encode_exposition` renders a snapshot in the `text exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) that any Prometheus-compatible scraper ingests, and that
``GET /metrics`` on the sweep broker serves.  The encoding is fully
deterministic — families sorted by output name, series sorted by their
rendered label set, label pairs sorted by key — so golden-file tests and
``diff`` between two scrapes are meaningful.

Mapping from the registry's ``name{label}`` keys:

* dots become underscores and everything is prefixed with a namespace:
  ``service.leases`` → ``repro_service_leases_total`` (counters get the
  conventional ``_total`` suffix, gauges none);
* a label string of the form ``k=v,k2=v2`` becomes proper Prometheus
  label pairs; a bare label string ``X`` (the simulator's historical
  style, e.g. ``predict.hit{stride+fcm}``) is rendered as
  ``label="X"``;
* histograms export as *summaries*: ``{quantile="0.5"|"0.95"|"0.99"}``
  sample lines from the reservoir percentiles plus ``_sum`` and
  ``_count``, and ``_min``/``_max`` companion gauges.

Label values are escaped per the spec (``\\`` → ``\\\\``, ``"`` →
``\\"``, newline → ``\\n``).  :func:`parse_exposition` is the minimal
inverse — sample lines back into a ``{series: value}`` dict — used by
``repro-top`` and the round-trip tests; it is not a general Prometheus
parser.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import HistogramSummary, MetricsSnapshot

#: Content type a compliant scraper expects from ``GET /metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{.*\})?\s+(?P<value>\S+)\s*$"
)

#: Reservoir percentiles exported as summary quantiles.
QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def sanitize_name(name: str, namespace: str = "repro") -> str:
    """A metric-registry name as a legal Prometheus metric name."""
    flat = _INVALID_NAME_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if flat[:1].isdigit():
        flat = f"_{flat}"
    return flat


def split_key(key: str) -> Tuple[str, Optional[str]]:
    """``name{label}`` → ``(name, label)``; bare keys have label ``None``."""
    if key.endswith("}") and "{" in key:
        name, _, label = key.partition("{")
        return name, label[:-1]
    return key, None


def escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def label_pairs(label: Optional[str]) -> List[Tuple[str, str]]:
    """Parse a registry label string into sorted Prometheus label pairs.

    ``"worker=w1,stage=simulate"`` → ``[("stage", "simulate"),
    ("worker", "w1")]``; a bare value (no ``=``) is a single pair under
    the generic key ``label``.
    """
    if label is None or label == "":
        return []
    if "=" not in label:
        return [("label", label)]
    pairs = []
    for part in label.split(","):
        key, _, value = part.partition("=")
        pairs.append((key.strip() or "label", value))
    return sorted(pairs)


def render_labels(
    pairs: List[Tuple[str, str]], extra: List[Tuple[str, str]] = []
) -> str:
    merged = sorted(dict([*pairs, *extra]).items())
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"' for key, value in merged
    )
    return "{" + inner + "}"


def format_value(value: float) -> str:
    """Numbers formatted so the encoding is stable and round-trips."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def encode_exposition(
    snapshot: MetricsSnapshot, namespace: str = "repro"
) -> str:
    """The snapshot as Prometheus text exposition (one trailing newline).

    Series ordering is deterministic: families sorted by exported name
    (counters, gauges, then summaries, interleaved alphabetically since
    names rarely collide across kinds), samples within a family sorted
    by rendered labels.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(out_name: str, kind: str) -> Dict[str, object]:
        entry = families.setdefault(
            out_name, {"kind": kind, "samples": []}
        )
        if entry["kind"] != kind:
            # Same exported name from two metric kinds: keep the first
            # TYPE, the samples still carry correct values.
            entry = families[out_name]
        return entry

    for key, value in snapshot.counters.items():
        name, label = split_key(key)
        out = sanitize_name(name, namespace) + "_total"
        family(out, "counter")["samples"].append(  # type: ignore[union-attr]
            (render_labels(label_pairs(label)), value)
        )
    for key, value in snapshot.gauges.items():
        name, label = split_key(key)
        out = sanitize_name(name, namespace)
        family(out, "gauge")["samples"].append(  # type: ignore[union-attr]
            (render_labels(label_pairs(label)), value)
        )
    for key, summary in snapshot.histograms.items():
        name, label = split_key(key)
        out = sanitize_name(name, namespace)
        pairs = label_pairs(label)
        entry = family(out, "summary")
        for quantile, attr in QUANTILES:
            q_value = getattr(summary, attr)
            if q_value is None:
                continue
            entry["samples"].append(  # type: ignore[union-attr]
                (
                    render_labels(pairs, [("quantile", format_value(quantile))]),
                    q_value,
                )
            )
        rendered = render_labels(pairs)
        entry.setdefault("companions", []).append(  # type: ignore[union-attr]
            (rendered, summary)
        )

    lines: List[str] = []
    for out_name in sorted(families):
        entry = families[out_name]
        kind = entry["kind"]
        lines.append(f"# TYPE {out_name} {kind}")
        for labels, value in sorted(entry["samples"]):  # type: ignore[union-attr]
            lines.append(f"{out_name}{labels} {format_value(value)}")
        for labels, summary in sorted(
            entry.get("companions", []), key=lambda item: item[0]
        ):  # type: ignore[union-attr]
            lines.append(f"{out_name}_sum{labels} {format_value(summary.total)}")
            lines.append(f"{out_name}_count{labels} {format_value(summary.count)}")
        for labels, summary in sorted(
            entry.get("companions", []), key=lambda item: item[0]
        ):  # type: ignore[union-attr]
            if summary.min is not None:
                lines.append(
                    f"{out_name}_min{labels} {format_value(summary.min)}"
                )
            if summary.max is not None:
                lines.append(
                    f"{out_name}_max{labels} {format_value(summary.max)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_exposition(text: str) -> Dict[str, float]:
    """Sample lines back into ``{"name{labels}": value}``.

    Comment and ``# TYPE`` lines are skipped; label strings are kept
    verbatim (they were rendered deterministically, so exact-string keys
    are stable).  Malformed lines are ignored rather than fatal — this
    feeds a live dashboard, not a validator.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if not match:
            continue
        labels = match.group("labels") or ""
        try:
            out[match.group("name") + labels] = _parse_number(
                match.group("value")
            )
        except ValueError:
            continue
    return out


def histogram_from_samples(
    samples: Dict[str, float], name: str, labels: str = ""
) -> HistogramSummary:
    """Reassemble count/total from parsed ``_sum``/``_count`` samples.

    The quantile samples cannot reconstruct the reservoir, so the
    returned summary carries exact count/total only — enough for rate
    and mean computations in ``repro-top``.
    """
    return HistogramSummary(
        count=int(samples.get(f"{name}_count{labels}", 0)),
        total=float(samples.get(f"{name}_sum{labels}", 0.0)),
    )
