"""repro.obs — unified observability for the simulator and the runner.

Three layers, each usable alone:

* :mod:`repro.obs.metrics` — a lightweight counter/gauge/histogram
  registry with near-zero disabled overhead and a snapshot/merge API,
  so per-block metrics aggregate up through program compilation and
  dynamic simulation (``vliw.stall_cycles``, ``cce.flush``,
  ``cce.reexec``, ``ovb.state_transitions{PN,RN,C,R}``, ...).
* :mod:`repro.obs.trace` — typed structured trace events (dataclasses
  with ``kind``/``cycle``/``op_id``) emitted by the VLIW engine, the
  Compensation Code Engine, the OVB and the Synchronization register.
* :mod:`repro.obs.perfetto` — a Chrome trace-event / Perfetto JSON
  exporter rendering the two engines as parallel tracks, plus
  runner-stage timing spans.

The ``repro-trace`` CLI (:mod:`repro.obs.cli`) ties them together: run a
benchmark or the paper's worked example and emit a metrics snapshot and
a ``.trace.json`` that https://ui.perfetto.dev opens directly.
"""

from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    metric_key,
)
from repro.obs.perfetto import (
    RUNNER_PID,
    block_run_events,
    chrome_trace,
    runner_span_events,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.trace import (
    BitClearEvent,
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    LdPredEvent,
    OvbTransitionEvent,
    SpeculateEvent,
    StallEvent,
    SyncClearEvent,
    SyncSetEvent,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "BitClearEvent",
    "CheckEvent",
    "ExecuteEvent",
    "FlushEvent",
    "HistogramSummary",
    "LdPredEvent",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "OvbTransitionEvent",
    "RUNNER_PID",
    "SpeculateEvent",
    "StallEvent",
    "SyncClearEvent",
    "SyncSetEvent",
    "TraceEvent",
    "TraceSink",
    "block_run_events",
    "chrome_trace",
    "metric_key",
    "runner_span_events",
    "validate_chrome_trace",
    "write_trace",
]
