"""repro.obs — unified observability for the simulator and the runner.

Three layers, each usable alone:

* :mod:`repro.obs.metrics` — a lightweight counter/gauge/histogram
  registry with near-zero disabled overhead and a snapshot/merge API,
  so per-block metrics aggregate up through program compilation and
  dynamic simulation (``vliw.stall_cycles``, ``cce.flush``,
  ``cce.reexec``, ``ovb.state_transitions{PN,RN,C,R}``, ...).
* :mod:`repro.obs.trace` — typed structured trace events (dataclasses
  with ``kind``/``cycle``/``op_id``) emitted by the VLIW engine, the
  Compensation Code Engine, the OVB and the Synchronization register.
* :mod:`repro.obs.perfetto` — a Chrome trace-event / Perfetto JSON
  exporter rendering the two engines as parallel tracks, plus
  runner-stage timing spans and the sweep service's distributed
  timeline (one track per worker).
* :mod:`repro.obs.prometheus` — deterministic Prometheus text
  exposition for metrics snapshots, served at ``GET /metrics`` by the
  sweep broker (plus the minimal parser ``repro-top`` uses).
* :mod:`repro.obs.logging` — structured one-line-JSON logging with
  contextvars-propagated correlation IDs (``sweep_id`` / ``job_key`` /
  ``worker_id``) shared by broker, workers, and clients.

The ``repro-trace`` CLI (:mod:`repro.obs.cli`) ties them together: run a
benchmark or the paper's worked example and emit a metrics snapshot and
a ``.trace.json`` that https://ui.perfetto.dev opens directly.  See
``docs/OBSERVABILITY.md`` for the service-telemetry catalog.
"""

from repro.obs.logging import (
    JsonLogger,
    bind_context,
    context_fields,
    get_logger,
    log_context,
)
from repro.obs.metrics import (
    HistogramSummary,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_METRICS,
    metric_key,
)
from repro.obs.perfetto import (
    RUNNER_PID,
    WORKERS_PID,
    block_run_events,
    chrome_trace,
    runner_span_events,
    sweep_span_events,
    validate_chrome_trace,
    write_trace,
)
from repro.obs.prometheus import (
    CONTENT_TYPE,
    encode_exposition,
    parse_exposition,
)
from repro.obs.trace import (
    BitClearEvent,
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    LdPredEvent,
    OvbTransitionEvent,
    SpeculateEvent,
    StallEvent,
    SyncClearEvent,
    SyncSetEvent,
    TraceEvent,
    TraceSink,
)

__all__ = [
    "BitClearEvent",
    "CONTENT_TYPE",
    "CheckEvent",
    "ExecuteEvent",
    "FlushEvent",
    "HistogramSummary",
    "JsonLogger",
    "LdPredEvent",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_METRICS",
    "OvbTransitionEvent",
    "RUNNER_PID",
    "SpeculateEvent",
    "StallEvent",
    "SyncClearEvent",
    "SyncSetEvent",
    "TraceEvent",
    "TraceSink",
    "WORKERS_PID",
    "bind_context",
    "block_run_events",
    "chrome_trace",
    "context_fields",
    "encode_exposition",
    "get_logger",
    "log_context",
    "metric_key",
    "parse_exposition",
    "runner_span_events",
    "sweep_span_events",
    "validate_chrome_trace",
    "write_trace",
]
