"""A lightweight metrics layer: counters, gauges, histograms.

The simulator and the experiment pipeline are instrumented against a
:class:`MetricsRegistry`.  The registry is deliberately tiny:

* **counters** accumulate integer increments (``cce.flush``,
  ``vliw.stall_cycles``);
* **gauges** record a level and keep the maximum seen (``ovb.size``);
* **histograms** keep a running summary — count, total, min, max, and
  approximate percentiles from a bounded deterministic reservoir — of
  observed values (``cce.ccb_occupancy``).

Metric keys are a dotted name plus an optional label rendered as
``name{label}`` (``ovb.state_transitions{PN}``,
``predict.hit{stride+fcm}``), so a family of related series shares one
name and snapshots stay plain string-keyed dictionaries.

Instrumented code paths take a registry argument defaulting to
:data:`NULL_METRICS`, a process-wide disabled registry whose update
methods return after a single attribute check — the overhead of
disabled metrics is one branch per site, which is what lets the hot
simulation loops stay instrumented unconditionally.

:class:`MetricsSnapshot` is the immutable read side: ``snapshot()`` the
registry, ``merged()`` snapshots across blocks or benchmarks,
``scaled()`` one by an execution frequency, and ``as_dict()`` /
``from_dict()`` for JSON round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Upper bound on the per-histogram percentile reservoir.  Overflow is
#: handled by deterministic systematic decimation (keep evenly spaced
#: order statistics), so percentile estimates stay reproducible run to
#: run — no random sampling anywhere.
RESERVOIR_CAP = 512


def metric_key(name: str, label: Optional[str] = None) -> str:
    """Canonical series key: ``name`` or ``name{label}``."""
    if label is None:
        return name
    return f"{name}{{{label}}}"


def _decimate(samples: List[float], cap: int = RESERVOIR_CAP) -> List[float]:
    """Shrink an over-full reservoir to ``cap`` evenly spaced order
    statistics (always keeping the extremes), preserving quantiles."""
    if len(samples) <= cap:
        return samples
    ordered = sorted(samples)
    last = len(ordered) - 1
    return [ordered[round(i * last / (cap - 1))] for i in range(cap)]


@dataclass
class HistogramSummary:
    """Running summary of one observed series.

    Exact count/total/min/max plus a bounded reservoir of observed
    values for approximate percentiles (:meth:`percentile`, ``p50`` /
    ``p95`` / ``p99``).  The reservoir survives :meth:`merged`,
    :meth:`scaled` and the :meth:`as_dict`/:meth:`from_dict` round-trip;
    merging pools both reservoirs and re-decimates, which treats every
    kept sample with equal weight (an approximation once either side has
    decimated).
    """

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples.append(value)
        if len(self.samples) > RESERVOIR_CAP:
            self.samples = _decimate(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Approximate ``q``-th percentile (``0 <= q <= 100``) from the
        reservoir; ``None`` for an empty series."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = q / 100.0 * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50.0)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95.0)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99.0)

    def copy(self) -> "HistogramSummary":
        return HistogramSummary(
            self.count, self.total, self.min, self.max, list(self.samples)
        )

    def merged(self, other: "HistogramSummary") -> "HistogramSummary":
        if other.count == 0:
            return self.copy()
        if self.count == 0:
            return other.copy()
        return HistogramSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
            samples=_decimate(self.samples + other.samples),
        )

    def scaled(self, factor: int) -> "HistogramSummary":
        """The summary of this series repeated ``factor`` times.

        Percentiles of a population repeated whole are the population's
        percentiles, so the reservoir carries over unchanged."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        if factor == 0 or self.count == 0:
            return HistogramSummary()
        return HistogramSummary(
            count=self.count * factor,
            total=self.total * factor,
            min=self.min,
            max=self.max,
            samples=list(self.samples),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistogramSummary":
        return cls(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
            min=data.get("min"),
            max=data.get("max"),
            samples=[float(v) for v in data.get("samples", [])],
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable point-in-time view of a registry (or a merge of many)."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricsSnapshot":
        return cls()

    def counter(self, name: str, label: Optional[str] = None) -> int:
        return self.counters.get(metric_key(name, label), 0)

    def gauge(self, name: str, label: Optional[str] = None) -> Optional[float]:
        return self.gauges.get(metric_key(name, label))

    def histogram(
        self, name: str, label: Optional[str] = None
    ) -> HistogramSummary:
        return self.histograms.get(metric_key(name, label), HistogramSummary())

    def counter_family(self, name: str) -> Dict[str, int]:
        """All labelled series of one counter name, keyed by label."""
        prefix = name + "{"
        out: Dict[str, int] = {}
        for key, value in self.counters.items():
            if key.startswith(prefix) and key.endswith("}"):
                out[key[len(prefix):-1]] = value
        return out

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine two snapshots: counters add, gauges keep the max
        (gauges here record peaks), histograms pool."""
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        histograms = {k: v.copy() for k, v in self.histograms.items()}
        for key, value in other.histograms.items():
            histograms[key] = histograms.get(key, HistogramSummary()).merged(value)
        return MetricsSnapshot(counters, gauges, histograms)

    def scaled(self, factor: int) -> "MetricsSnapshot":
        """This snapshot repeated ``factor`` times (frequency weighting):
        counters and histogram populations multiply, gauges are levels
        and stay put."""
        return MetricsSnapshot(
            counters={k: v * factor for k, v in self.counters.items()},
            gauges=dict(self.gauges),
            histograms={k: v.scaled(factor) for k, v in self.histograms.items()},
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                k: v.as_dict() for k, v in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                k: HistogramSummary.from_dict(v)
                for k, v in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """Mutable metric store the instrumentation writes into.

    A disabled registry (``enabled=False``) rejects every update after a
    single branch and never allocates; :data:`NULL_METRICS` is the shared
    disabled instance used as the default argument throughout the
    simulator.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramSummary] = {}

    # -- write side -------------------------------------------------------

    def inc(self, name: str, value: int = 1, label: Optional[str] = None) -> None:
        """Add ``value`` to a counter."""
        if not self.enabled:
            return
        key = metric_key(name, label)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(
        self, name: str, value: float, label: Optional[str] = None
    ) -> None:
        """Record a level; the registry keeps the maximum seen."""
        if not self.enabled:
            return
        key = metric_key(name, label)
        prior = self._gauges.get(key)
        self._gauges[key] = value if prior is None else max(prior, value)

    def observe(
        self, name: str, value: float, label: Optional[str] = None
    ) -> None:
        """Feed one sample into a histogram series."""
        if not self.enabled:
            return
        key = metric_key(name, label)
        summary = self._histograms.get(key)
        if summary is None:
            summary = self._histograms[key] = HistogramSummary()
        summary.observe(value)

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold an already-aggregated snapshot into this registry
        (how per-block metrics roll up into a program-level registry)."""
        if not self.enabled:
            return
        for key, value in snapshot.counters.items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.gauges.items():
            prior = self._gauges.get(key)
            self._gauges[key] = value if prior is None else max(prior, value)
        for key, value in snapshot.histograms.items():
            self._histograms[key] = self._histograms.get(
                key, HistogramSummary()
            ).merged(value)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- read side --------------------------------------------------------

    def counter(self, name: str, label: Optional[str] = None) -> int:
        return self._counters.get(metric_key(name, label), 0)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: v.copy() for k, v in self._histograms.items()},
        )

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<MetricsRegistry {state}: {len(self._counters)} counter(s), "
            f"{len(self._gauges)} gauge(s), {len(self._histograms)} histogram(s)>"
        )


#: Shared disabled registry: the default for every instrumented code path.
NULL_METRICS = MetricsRegistry(enabled=False)
