"""Synthetic ``li`` (SPEC INT 95 130.li, the XLISP interpreter, stand-in).

Pointer-chasing over cons cells: a list-walk loop following ``cdr``
pointers and touching ``car`` payloads, and a tag-dispatch loop modelled
on the interpreter's eval switch.  The cons heap is mostly sequentially
allocated with some fragmentation, so next-pointer loads are stride-
predictable at a moderate rate — the classic li behaviour.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

HEAP_BASE = 10_000
TAGS_BASE = 60_000
ENV_BASE = 70_000
RESULT_BASE = 80_000
MARKS_BASE = 90_000

_NODE_SIZE = 4


def _walk_body(fb: FunctionBuilder) -> None:
    # Follow the cdr pointer: the address for everything below.
    fb.load("r_next", "r_ptr")
    # Touch the car payload of the *next* cell (depends on r_next).
    fb.load("r_car", "r_next", offset=1)
    # Interpreter work on the payload.
    fb.add("r_v1", "r_car", "r_sum")
    fb.and_("r_v2", "r_v1", 4095)
    fb.add("r_sum", "r_v2", 1)
    fb.add("r_r_addr", "r_i", RESULT_BASE)
    fb.store("r_sum", "r_r_addr")
    fb.mov("r_ptr", "r_next")


def _gc_body(fb: FunctionBuilder) -> None:
    # Mark phase of a stop-the-world collection: visit cells in address
    # order and test their mark words (effectively unpredictable).
    fb.add("r_g_addr", "r_k", MARKS_BASE)
    fb.load("r_mark", "r_g_addr")
    fb.and_("r_m1", "r_mark", 1)
    fb.add("r_live", "r_live", "r_m1")
    fb.xor("r_m2", "r_mark", "r_live")
    fb.store("r_m2", "r_g_addr", offset=8192)


def _eval_body(fb: FunctionBuilder) -> None:
    # Load an expression tag: interpreters see highly repetitive tag
    # streams (FIXNUM, CONS, SYMBOL, ...), an FCM sweet spot.
    fb.add("r_t_addr", "r_j", TAGS_BASE)
    fb.load("r_tag", "r_t_addr")
    # Dispatch chain on the tag: handler index computation.
    fb.and_("r_kind", "r_tag", 7)
    fb.shl("r_slot", "r_kind", 2)
    fb.add("r_h1", "r_slot", "r_kind")
    fb.mul("r_h2", "r_h1", 3)
    # Environment read indexed by position (not tag-dependent).
    fb.and_("r_e_idx", "r_j", 63)
    fb.add("r_e_addr", "r_e_idx", ENV_BASE)
    fb.load("r_env", "r_e_addr")
    fb.add("r_acc", "r_env", "r_h2")
    fb.add("r_w_addr", "r_j", RESULT_BASE)
    fb.store("r_acc", "r_w_addr", offset=2048)


def build(scale: float = 1.0) -> Program:
    """Build the li stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x11597)
    trips = max(8, int(280 * scale))

    pb = ProgramBuilder("li")
    fb = pb.function()

    def prologue(fb: FunctionBuilder) -> None:
        fb.mov("r_ptr", HEAP_BASE)
        fb.mov("r_sum", 0)
        fb.mov("r_live", 0)

    chain_loops(
        fb,
        [
            LoopSpec("walk", trips, "r_i", _walk_body),
            LoopSpec("eval", trips, "r_j", _eval_body),
            LoopSpec("gc", trips * 2, "r_k", _gc_body),
        ],
        prologue=prologue,
    )
    pb.add(fb.build())

    # A cons heap: mostly sequential allocation, a quarter fragmented.
    node_count = max(trips + 1, 16)
    heap = values.linked_list_nodes(
        count=node_count,
        base=HEAP_BASE,
        node_size=_NODE_SIZE,
        rng=rng,
        fragmentation=0.25,
        payload_values=values.noisy_strided(
            node_count, rng, start=4, stride=3, break_rate=0.08, jump=100
        ),
    )
    for address, value in heap.items():
        pb.memory(address, [value])
    # Tag stream: heavily repetitive with occasional surprises.
    tags = values.repeating(trips, [1, 3, 1, 5])
    for i in range(trips):
        if rng.random() < 0.05:
            tags[i] = rng.randrange(8)
    pb.memory(TAGS_BASE, tags)
    pb.memory(ENV_BASE, values.strided(64, start=900, stride=13))
    pb.memory(MARKS_BASE, values.random_values(trips * 2, rng, 0, 4096))
    return pb.build()
