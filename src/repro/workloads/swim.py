"""Synthetic ``swim`` (SPEC FP 95 102.swim stand-in).

Shallow-water equations on a grid.  The loop bodies are *wide*: several
independent FP chains of similar depth run in parallel, so the critical
path is set by FP latency rather than by any single load.  Predicting
the (highly predictable) coefficient load only trims the longest chain by
a cycle or two — which is exactly why the paper measures swim's best-case
schedule fraction at 0.98, the weakest improvement in the suite.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

U_BASE = 10_000
V_BASE = 20_000
P_BASE = 30_000
CORIOLIS_BASE = 40_000
UNEW_BASE = 50_000
VNEW_BASE = 60_000


def _momentum_body(fb: FunctionBuilder) -> None:
    # Chain A (longest): coriolis coefficient -> three dependent FP ops.
    fb.add("r_c_addr", "r_i", CORIOLIS_BASE)
    fb.load("f_cor", "r_c_addr")
    fb.fmul("f_a1", "f_cor", "f_cor")
    fb.fadd("f_a2", "f_a1", 0.25)
    fb.fmul("f_a3", "f_a2", 2.0)
    # Chain B (independent): u-velocity update.
    fb.add("r_u_addr", "r_i", U_BASE)
    fb.load("f_u", "r_u_addr")
    fb.fadd("f_b1", "f_u", 1.0)
    fb.fmul("f_b2", "f_b1", 0.5)
    # Chain C (independent): v-velocity update.
    fb.add("r_v_addr", "r_i", V_BASE)
    fb.load("f_v", "r_v_addr")
    fb.fadd("f_c1", "f_v", 2.0)
    fb.fmul("f_c2", "f_c1", 0.5)
    # Join and store.
    fb.fadd("f_un", "f_a3", "f_b2")
    fb.fadd("f_vn", "f_a3", "f_c2")
    fb.add("r_un_addr", "r_i", UNEW_BASE)
    fb.store("f_un", "r_un_addr")
    fb.add("r_vn_addr", "r_i", VNEW_BASE)
    fb.store("f_vn", "r_vn_addr")


def _pressure_body(fb: FunctionBuilder) -> None:
    fb.add("r_p_addr", "r_j", P_BASE)
    fb.load("f_p", "r_p_addr")
    fb.add("r_u2_addr", "r_j", UNEW_BASE)
    fb.load("f_u2", "r_u2_addr")
    fb.fmul("f_q1", "f_p", 0.9)
    fb.fadd("f_q2", "f_q1", "f_u2")
    fb.add("r_pn_addr", "r_j", P_BASE)
    fb.store("f_q2", "r_pn_addr", offset=4096)


def build(scale: float = 1.0) -> Program:
    """Build the swim stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x102511)
    trips = max(16, int(300 * scale))

    pb = ProgramBuilder("swim")
    fb = pb.function()

    chain_loops(
        fb,
        [
            LoopSpec("momentum", trips, "r_i", _momentum_body),
            LoopSpec("pressure", trips, "r_j", _pressure_body),
        ],
    )
    pb.add(fb.build())

    # Coriolis force: constant per latitude band (long constant runs).
    coriolis = []
    f = 0.5
    for i in range(trips):
        if i % 64 == 63:
            f += 0.01
        coriolis.append(f)
    pb.memory(CORIOLIS_BASE, coriolis)
    pb.memory(U_BASE, values.smooth_field(trips, rng, scale=10.0))
    pb.memory(V_BASE, values.smooth_field(trips, rng, scale=10.0))
    pb.memory(P_BASE, values.smooth_field(trips, rng, scale=100.0))
    return pb.build()
