"""Synthetic ``hydro2d`` (SPEC FP 95 104.hydro2d stand-in).

A hydrodynamical Navier-Stokes solver: sweep loops combine a physical
field with per-cell coefficients.  The coefficient table is piecewise
constant over the grid (boundary factors, gamma constants), so the
coefficient loads predict extremely well; the field itself is smooth but
not bit-identical, so field loads sit below the prediction threshold —
together they give hydro2d its high fraction of time in correctly
predicted blocks (0.63 in the paper) with a solid but not extreme
schedule improvement (0.80).
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

FIELD_BASE = 10_000
COEF_BASE = 20_000
FLUX_BASE = 30_000
NEW_BASE = 40_000


def _sweep_body(fb: FunctionBuilder) -> None:
    # Per-cell coefficient: piecewise constant across the grid.
    fb.add("r_c_addr", "r_i", COEF_BASE)
    fb.load("f_gam", "r_c_addr")
    # Field stencil: u[i] and u[i+1] (ready before the gamma chain needs
    # them, so the coefficient load heads the critical path).
    fb.add("r_u_addr", "r_i", FIELD_BASE)
    fb.load("f_u0", "r_u_addr")
    fb.load("f_u1", "r_u_addr", offset=1)
    # Flux computation: gamma heads the long serial FP chain (equation of
    # state first, then the flux terms).
    fb.fmul("f_g2", "f_gam", "f_gam")
    fb.fadd("f_p1", "f_g2", "f_u0")
    fb.fmul("f_p2", "f_p1", "f_gam")
    fb.fadd("f_flux", "f_p2", "f_u1")
    fb.add("r_x_addr", "r_i", FLUX_BASE)
    fb.store("f_flux", "r_x_addr")


def _update_body(fb: FunctionBuilder) -> None:
    # Advance the field by the computed flux.
    fb.add("r_f_addr", "r_j", FLUX_BASE)
    fb.load("f_fx", "r_f_addr")
    fb.add("r_o_addr", "r_j", FIELD_BASE)
    fb.load("f_old", "r_o_addr")
    fb.fmul("f_d1", "f_fx", 0.5)
    fb.fadd("f_new", "f_old", "f_d1")
    fb.add("r_n_addr", "r_j", NEW_BASE)
    fb.store("f_new", "r_n_addr")


def build(scale: float = 1.0) -> Program:
    """Build the hydro2d stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x104D20)
    trips = max(16, int(300 * scale))

    pb = ProgramBuilder("hydro2d")
    fb = pb.function()

    chain_loops(
        fb,
        [
            LoopSpec("sweep", trips, "r_i", _sweep_body),
            LoopSpec("update", max(8, trips // 2), "r_j", _update_body),
        ],
    )
    pb.add(fb.build())

    # Piecewise-constant coefficients: long runs of gamma = 1.4 with
    # occasional boundary cells.
    coefs = []
    gamma = 1.4
    for i in range(trips):
        if rng.random() < 0.05:
            gamma = rng.choice([1.4, 1.4, 1.67, 1.2])
        coefs.append(gamma)
    pb.memory(COEF_BASE, coefs)
    # A smooth field: physically continuous, bit-wise unpredictable.
    pb.memory(FIELD_BASE, values.smooth_field(trips + 2, rng, scale=50.0))
    return pb.build()
