"""Synthetic ``tomcatv`` (SPEC FP 95 101.tomcatv stand-in).

Vectorised mesh generation: residual loops over x/y coordinate arrays
with wide, mostly independent FP chains, plus a relaxation loop carrying
per-row weights that are constant across the sweep (predictable).  Like
swim, the abundant ILP leaves value prediction little to improve — the
paper reports a best-case schedule fraction of 0.95.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

X_BASE = 10_000
Y_BASE = 20_000
WEIGHT_BASE = 30_000
RX_BASE = 40_000
RY_BASE = 50_000


def _residual_body(fb: FunctionBuilder) -> None:
    # Relaxation weight: constant across the sweep (row-invariant).
    fb.add("r_w_addr", "r_i", WEIGHT_BASE)
    fb.load("f_w", "r_w_addr")
    fb.fmul("f_w1", "f_w", "f_w")
    fb.fadd("f_w2", "f_w1", 0.125)
    fb.fadd("f_w3", "f_w2", 4.0)
    # Coordinate chains (independent of the weight chain).
    fb.add("r_x_addr", "r_i", X_BASE)
    fb.load("f_x", "r_x_addr")
    fb.fmul("f_x1", "f_x", 2.0)
    fb.fsub("f_x2", "f_x1", 1.0)
    fb.add("r_y_addr", "r_i", Y_BASE)
    fb.load("f_y", "r_y_addr")
    fb.fmul("f_y1", "f_y", 2.0)
    fb.fsub("f_y2", "f_y1", 1.0)
    # Residuals.
    fb.fadd("f_rx", "f_w3", "f_x2")
    fb.fadd("f_ry", "f_w3", "f_y2")
    fb.add("r_rx_addr", "r_i", RX_BASE)
    fb.store("f_rx", "r_rx_addr")
    fb.add("r_ry_addr", "r_i", RY_BASE)
    fb.store("f_ry", "r_ry_addr")


def _relax_body(fb: FunctionBuilder) -> None:
    fb.add("r_r_addr", "r_j", RX_BASE)
    fb.load("f_r", "r_r_addr")
    fb.add("r_c_addr", "r_j", X_BASE)
    fb.load("f_c", "r_c_addr")
    fb.fmul("f_s1", "f_r", 0.7)
    fb.fadd("f_s2", "f_s1", "f_c")
    fb.add("r_o_addr", "r_j", X_BASE)
    fb.store("f_s2", "r_o_addr", offset=4096)


def build(scale: float = 1.0) -> Program:
    """Build the tomcatv stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x101F01)
    trips = max(16, int(300 * scale))

    pb = ProgramBuilder("tomcatv")
    fb = pb.function()

    chain_loops(
        fb,
        [
            LoopSpec("residual", trips, "r_i", _residual_body),
            LoopSpec("relax", trips, "r_j", _relax_body),
        ],
    )
    pb.add(fb.build())

    # Row weights: constant for a whole row of the mesh (128 cells).
    weights = []
    w = 0.3
    for i in range(trips):
        if i % 128 == 127:
            w += 0.05
        weights.append(w)
    pb.memory(WEIGHT_BASE, weights)
    pb.memory(X_BASE, values.smooth_field(trips, rng, scale=5.0))
    pb.memory(Y_BASE, values.smooth_field(trips, rng, scale=5.0))
    return pb.build()
