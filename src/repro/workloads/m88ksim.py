"""Synthetic ``m88ksim`` (SPEC INT 95 124.m88ksim stand-in).

A CPU simulator simulating a CPU: the fetch/decode/execute loop reads an
instruction word from the simulated instruction memory (the simulated
program is itself a loop, so the instruction-word stream repeats —
extremely FCM-predictable, which is exactly why m88ksim was a famous
value-prediction winner), decodes it through a long chain of shifts and
masks, reads a simulated register, executes and writes back.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

IMEM_BASE = 10_000
REGS_BASE = 20_000
DMEM_BASE = 30_000
STATS_BASE = 40_000
TRACE_BASE = 50_000

_SIM_LOOP_LEN = 16  # length of the simulated program's inner loop (power of two)


def _cycle_body(fb: FunctionBuilder) -> None:
    # Fetch: the simulated pc comes from a branch-resolved trace (the
    # simulated program mostly loops but occasionally takes a branch, so
    # the pc stream — and with it the fetched instruction word — repeats
    # imperfectly).
    fb.add("r_t_addr", "r_i", TRACE_BASE)
    fb.load("r_pc", "r_t_addr")
    fb.add("r_f_addr", "r_pc", IMEM_BASE)
    fb.load("r_insn", "r_f_addr")
    # Decode: a long dependent chain over the fetched word.  Every stage
    # needs the previous one, so predicting the instruction word removes
    # a deep serial bottleneck.
    fb.shr("r_rs_raw", "r_insn", 21)
    fb.and_("r_rs", "r_rs_raw", 31)
    fb.xor("r_d1", "r_rs", "r_insn")
    fb.and_("r_d2", "r_d1", 1023)
    fb.or_("r_d3", "r_d2", 64)
    # Register read (depends on the decoded source register number).
    fb.add("r_rf_addr", "r_d3", REGS_BASE)
    fb.load("r_rsval", "r_rf_addr")
    # Execute.
    fb.and_("r_imm", "r_insn", 65_535)
    fb.add("r_alu", "r_rsval", "r_imm")
    fb.mul("r_res", "r_alu", 3)
    fb.add("r_wb", "r_res", "r_icount")
    # Writeback + statistics.
    fb.add("r_d_addr", "r_rs", DMEM_BASE)
    fb.store("r_wb", "r_d_addr")
    fb.add("r_icount", "r_icount", 1)


def _stats_body(fb: FunctionBuilder) -> None:
    # Histogram pass over executed-opcode counters.
    fb.add("r_s_addr", "r_j", STATS_BASE)
    fb.load("r_cnt", "r_s_addr")
    fb.add("r_c1", "r_cnt", 1)
    fb.mul("r_c2", "r_c1", 2)
    fb.shr("r_c3", "r_c2", 1)
    fb.store("r_c3", "r_s_addr")


def build(scale: float = 1.0) -> Program:
    """Build the m88ksim stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x88000)
    trips = max(_SIM_LOOP_LEN * 2, int(336 * scale))

    pb = ProgramBuilder("m88ksim")
    fb = pb.function()

    def prologue(fb: FunctionBuilder) -> None:
        fb.mov("r_icount", 0)

    chain_loops(
        fb,
        [
            LoopSpec("cycle", trips, "r_i", _cycle_body),
            LoopSpec("stats", trips, "r_j", _stats_body),
        ],
        prologue=prologue,
    )
    pb.add(fb.build())

    # The simulated program: a fixed loop of instruction words, so the
    # fetch load's value stream has period _SIM_LOOP_LEN.
    sim_program = [
        (op << 26) | (rs << 21) | imm
        for op, rs, imm in [
            (2, 1, 4), (2, 2, 8), (5, 1, 0), (2, 3, 1),
            (9, 2, 12), (2, 1, 5), (5, 3, 2), (2, 4, 16),
            (9, 1, 0), (2, 2, 9), (5, 4, 6), (7, 0, 0),
            (2, 5, 3), (5, 2, 11), (9, 3, 1), (7, 1, 2),
        ]
    ]
    pb.memory(IMEM_BASE, sim_program)
    # The pc trace: the simulated program's loop body in order, with a
    # taken branch (jump back or out) about one iteration in seven.
    trace = []
    pc = 0
    for _ in range(trips):
        trace.append(pc)
        if rng.random() < 0.06:
            pc = rng.randrange(_SIM_LOOP_LEN)
        else:
            pc = (pc + 1) % _SIM_LOOP_LEN
    pb.memory(TRACE_BASE, trace)
    # Simulated register file: mostly stable values (registers hold loop
    # invariants), occasionally rewritten.
    pb.memory(REGS_BASE, values.mostly_constant(1100, rng, value=77, flip_rate=0.2, other=5))
    pb.memory(STATS_BASE, values.random_values(trips, rng, 0, 50))
    return pb.build()
