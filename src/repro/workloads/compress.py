"""Synthetic ``compress`` (SPEC INT 95 129.compress stand-in).

LZW-style compression: a scan loop hashes input bytes and probes a code
table (two chained loads — the classic compress bottleneck), and an
output loop packs codes into a bit stream.  Input bytes cycle through a
short alphabet with occasional noise (text-like, FCM-friendly); the code
table is warm and mostly stable, so table-probe loads predict well.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

INPUT_BASE = 10_000
TABLE_BASE = 20_000
CODES_BASE = 30_000
OUTPUT_BASE = 40_000

_TABLE_MASK = 255


def _scan_body(fb: FunctionBuilder) -> None:
    # Read the next input byte (address strides with the counter).
    fb.add("r_in_addr", "r_i", INPUT_BASE)
    fb.load("r_byte", "r_in_addr")
    # Hash: ((byte << 3) ^ prefix) & mask — a dependent integer chain.
    fb.shl("r_h1", "r_byte", 3)
    fb.xor("r_h2", "r_h1", "r_prefix")
    fb.and_("r_hash", "r_h2", _TABLE_MASK)
    # Probe the code table: the second load depends on the first load's
    # value through the hash (the chain value prediction breaks).
    fb.add("r_t_addr", "r_hash", TABLE_BASE)
    fb.load("r_code", "r_t_addr")
    # New prefix and output code computation: a serial chain on the
    # probed code (entry comparison, ratio update, code packing).
    fb.add("r_sum", "r_code", "r_byte")
    fb.mul("r_out2", "r_sum", 9)
    fb.and_("r_prefix", "r_sum", 1023)
    # Emit the code.
    fb.add("r_o_addr", "r_i", CODES_BASE)
    fb.store("r_out2", "r_o_addr")


def _pack_body(fb: FunctionBuilder) -> None:
    # Read back an emitted code (value stream written by the scan loop).
    fb.add("r_c_addr", "r_j", CODES_BASE)
    fb.load("r_cval", "r_c_addr")
    # Bit packing: shift into the accumulator, mask, store a word.
    fb.shl("r_sh", "r_cval", 4)
    fb.or_("r_acc", "r_acc", "r_sh")
    fb.and_("r_word", "r_acc", 65_535)
    fb.shr("r_acc", "r_acc", 8)
    fb.add("r_p_addr", "r_j", OUTPUT_BASE)
    fb.store("r_word", "r_p_addr")


def build(scale: float = 1.0) -> Program:
    """Build the compress stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0xC0_4E55)
    trips = max(8, int(320 * scale))

    pb = ProgramBuilder("compress")
    fb = pb.function()

    def prologue(fb: FunctionBuilder) -> None:
        fb.mov("r_prefix", 0)
        fb.mov("r_acc", 0)

    chain_loops(
        fb,
        [
            LoopSpec("scan", trips, "r_i", _scan_body),
            LoopSpec("pack", trips, "r_j", _pack_body),
        ],
        prologue=prologue,
    )
    pb.add(fb.build())

    # Text-like input: a short alphabet cycled with occasional noise, so
    # the byte load is FCM-predictable at a moderate rate.
    alphabet = [101, 32, 116, 101]
    stream = values.repeating(trips, alphabet)
    for i in range(trips):
        if rng.random() < 0.10:
            stream[i] = rng.randrange(256)
    pb.memory(INPUT_BASE, stream)
    # A warm code table: entries mostly stable (repeat probes hit the
    # same codes), giving high predictability to the table load.
    pb.memory(TABLE_BASE, values.mostly_constant(
        _TABLE_MASK + 1, rng, value=257, flip_rate=0.1, other=409))
    return pb.build()
