"""Random-but-valid synthetic programs for fuzzing the full pipeline.

:func:`random_program` generates an executable multi-loop program with a
randomly shaped dependence structure and randomly characterised value
streams (strided / repeating / noisy / random arrays).  The generator is
deterministic in its seed, making failures reproducible, and every
program it emits passes the IR verifier and halts under the interpreter.

These programs power the end-to-end fuzz tests: profile -> speculate ->
schedule -> dual-engine simulation must hold its invariants on *any*
program, not just the hand-built suite.
"""

from __future__ import annotations

import random
from typing import List

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

_ARRAY_BASES = (10_000, 20_000, 30_000, 40_000)
_OUT_BASE = 90_000


def _random_body(rng: random.Random, counter: str, loop_index: int, size: int):
    """Build a loop-body emitter touching random registers and arrays."""
    pool = [f"r{loop_index}_{i}" for i in range(6)]

    def body(fb: FunctionBuilder) -> None:
        defined: List[str] = []

        def operand():
            if defined and rng.random() < 0.7:
                return rng.choice(defined)
            return rng.randrange(1, 64)

        for position in range(size):
            dest = rng.choice(pool)
            choice = rng.random()
            if choice < 0.3:
                base = rng.choice(_ARRAY_BASES)
                addr = f"{dest}_addr"
                fb.add(addr, counter, base)
                fb.load(dest, addr)
            elif choice < 0.5:
                fb.mul(dest, operand(), operand())
            elif choice < 0.85:
                fb.add(dest, operand(), operand())
            else:
                fb.xor(dest, operand(), operand())
            defined.append(dest)
        # Always produce an observable result so DCE-style reasoning
        # cannot trivialise the block.
        out_addr = f"r{loop_index}_out"
        fb.add(out_addr, counter, _OUT_BASE + loop_index * 1000)
        fb.store(rng.choice(defined) if defined else counter, out_addr)

    return body


def random_program(
    seed: int,
    max_loops: int = 3,
    max_body_size: int = 10,
    trips: int = 60,
) -> Program:
    """Generate a deterministic pseudo-random program.

    Args:
        seed: generator seed; equal seeds give identical programs.
        max_loops: up to this many sequential counted loops.
        max_body_size: up to this many random body operations per loop.
        trips: iterations per loop.
    """
    rng = random.Random(seed)
    pb = ProgramBuilder(f"synthetic-{seed}")
    fb = pb.function()

    n_loops = rng.randint(1, max_loops)
    loops = [
        LoopSpec(
            label=f"loop{i}",
            trips=trips,
            counter=f"i{i}",
            body=_random_body(rng, f"i{i}", i, rng.randint(1, max_body_size)),
        )
        for i in range(n_loops)
    ]
    chain_loops(fb, loops)
    pb.add(fb.build())

    # Arrays with a spread of value characters, so some loads profile as
    # predictable and others do not.
    pb.memory(_ARRAY_BASES[0], values.strided(trips, start=5, stride=3))
    pb.memory(
        _ARRAY_BASES[1],
        values.repeating(trips, [rng.randrange(100) for _ in range(4)]),
    )
    pb.memory(
        _ARRAY_BASES[2],
        values.noisy_strided(trips, rng, stride=2, break_rate=0.3),
    )
    pb.memory(_ARRAY_BASES[3], values.random_values(trips, rng))
    return pb.build()
