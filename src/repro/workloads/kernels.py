"""Shared scaffolding for building benchmark kernels.

Benchmarks are small multi-loop IR programs.  The helpers here keep each
benchmark module focused on the interesting part — the loop body's
dependence structure and the value behaviour of its loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ir.builder import FunctionBuilder

BodyFn = Callable[[FunctionBuilder], None]


@dataclass(frozen=True)
class LoopSpec:
    """One counted loop: a single-block body repeated ``trips`` times."""

    label: str
    trips: int
    counter: str
    body: BodyFn
    step: int = 1


def emit_counted_loop(
    fb: FunctionBuilder,
    spec: LoopSpec,
    next_label: str,
) -> None:
    """Emit ``spec`` as one basic block ending in a conditional branch.

    The caller must have initialised ``spec.counter`` to zero (or any
    start) before branching to ``spec.label``.  The body is emitted
    first, then the counter increment, limit compare and branch — so the
    whole iteration is a single block, the unit of scheduling and
    speculation throughout this reproduction (the paper schedules basic
    blocks; it notes hyperblocks/superblocks would only increase the
    benefit).
    """
    if spec.trips < 1:
        raise ValueError(f"loop {spec.label!r} needs at least one trip")
    cond = f"{spec.counter}_cond"
    fb.block(spec.label)
    spec.body(fb)
    fb.add(spec.counter, spec.counter, spec.step)
    fb.cmplt(cond, spec.counter, spec.trips * spec.step)
    fb.brcond(cond, spec.label, next_label)


def chain_loops(
    fb: FunctionBuilder,
    loops: list[LoopSpec],
    prologue: Optional[BodyFn] = None,
    exit_label: str = "exit",
) -> None:
    """Emit an entry block, the loops in sequence, and a halting exit.

    The entry block zeroes every loop counter and runs ``prologue``
    (typically base-address set-up).
    """
    if not loops:
        raise ValueError("need at least one loop")
    fb.block("entry")
    if prologue is not None:
        prologue(fb)
    for spec in loops:
        fb.mov(spec.counter, 0)
    fb.br(loops[0].label)
    for i, spec in enumerate(loops):
        following = loops[i + 1].label if i + 1 < len(loops) else exit_label
        emit_counted_loop(fb, spec, following)
    fb.block(exit_label)
    fb.halt()
