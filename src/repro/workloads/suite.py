"""The benchmark suite: the eight SPEC95 stand-ins of the paper's tables.

Order matches the paper: five SPEC INT 95 programs (compress, ijpeg, li,
m88ksim, vortex) followed by three SPEC FP 95 programs (hydro2d, swim,
tomcatv).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.ir.program import Program
from repro.workloads import (
    compress,
    hydro2d,
    ijpeg,
    li,
    m88ksim,
    swim,
    tomcatv,
    vortex,
)

Builder = Callable[..., Program]

#: Benchmarks in the paper's table order.
BENCHMARKS: Dict[str, Builder] = {
    "compress": compress.build,
    "ijpeg": ijpeg.build,
    "li": li.build,
    "m88ksim": m88ksim.build,
    "vortex": vortex.build,
    "hydro2d": hydro2d.build,
    "swim": swim.build,
    "tomcatv": tomcatv.build,
}

INT_BENCHMARKS: List[str] = ["compress", "ijpeg", "li", "m88ksim", "vortex"]
FP_BENCHMARKS: List[str] = ["hydro2d", "swim", "tomcatv"]


def benchmark_names() -> List[str]:
    return list(BENCHMARKS)


def resolve_benchmarks(names: Sequence[str]) -> Tuple[str, ...]:
    """Validate a user-supplied benchmark selection.

    Accepts names in any order (order is preserved), rejects unknown
    names and duplicates with a ``ValueError`` that lists the registry.
    """
    seen: List[str] = []
    for name in names:
        if name not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {name!r}; available: {benchmark_names()}"
            )
        if name in seen:
            raise ValueError(f"benchmark {name!r} given more than once")
        seen.append(name)
    if not seen:
        raise ValueError("benchmark selection is empty")
    return tuple(seen)


def load_benchmark(name: str, scale: float = 1.0) -> Program:
    """Build one benchmark by name."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    return builder(scale=scale)


def load_suite(scale: float = 1.0) -> Dict[str, Program]:
    """Build the whole suite (deterministic: fixed per-benchmark seeds)."""
    return {name: builder(scale=scale) for name, builder in BENCHMARKS.items()}
