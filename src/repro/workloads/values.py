"""Value-stream generators with controlled predictability.

The paper's experiments hinge on each load's *value predictability* under
stride and FCM prediction.  Since SPEC95 inputs are unavailable, each
synthetic benchmark lays out memory arrays whose contents produce value
streams of a chosen character when walked by the benchmark's loads:

* :func:`strided` — arithmetic sequences (stride-predictable);
* :func:`noisy_strided` — stride sequences with occasional breaks,
  giving prediction rates tunable between 0 and 1;
* :func:`repeating` — short cyclic patterns (FCM-predictable, stride-
  hostile);
* :func:`random_values` — unpredictable streams;
* :func:`mostly_constant` — constants with rare flips (both predictors
  do well);
* :func:`linked_list_nodes` — pointer-chain layouts whose "next" fields
  are stride-predictable when allocation is sequential and unpredictable
  when fragmented, mimicking heap behaviour of pointer codes like li.

All generators take an explicit :class:`random.Random` so benchmarks are
bit-reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

Number = Union[int, float]


def strided(n: int, start: Number = 0, stride: Number = 1) -> List[Number]:
    """A perfect arithmetic sequence: prediction rate ~1 under stride."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [start + i * stride for i in range(n)]


def noisy_strided(
    n: int,
    rng: random.Random,
    start: int = 0,
    stride: int = 1,
    break_rate: float = 0.2,
    jump: int = 1000,
) -> List[int]:
    """A stride sequence that re-bases with probability ``break_rate``.

    Each break costs the two-delta stride predictor roughly one miss, so
    the observed prediction rate is about ``1 - break_rate``.
    """
    if not (0.0 <= break_rate <= 1.0):
        raise ValueError("break_rate must be in [0, 1]")
    out: List[int] = []
    value = start
    for _ in range(n):
        out.append(value)
        if rng.random() < break_rate:
            value += rng.randrange(1, jump) * stride + rng.randrange(1, jump)
        else:
            value += stride
    return out


def repeating(n: int, pattern: Sequence[Number]) -> List[Number]:
    """Cycle a short pattern: FCM-predictable, stride-hostile."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    return [pattern[i % len(pattern)] for i in range(n)]


def random_values(n: int, rng: random.Random, lo: int = 0, hi: int = 1 << 16) -> List[int]:
    """Uniform random integers: neither predictor does well."""
    return [rng.randrange(lo, hi) for _ in range(n)]


def mostly_constant(
    n: int, rng: random.Random, value: Number = 1, flip_rate: float = 0.05, other: Number = 0
) -> List[Number]:
    """A constant stream with rare flips (flags, status words)."""
    return [other if rng.random() < flip_rate else value for _ in range(n)]


def random_floats(n: int, rng: random.Random, lo: float = 0.0, hi: float = 1.0) -> List[float]:
    """Uniform random floats (FP array initial conditions)."""
    return [rng.uniform(lo, hi) for _ in range(n)]


def smooth_field(n: int, rng: random.Random, scale: float = 100.0) -> List[float]:
    """A smooth 1-D field (slowly varying physical quantity).

    Neighbouring values differ by small random steps: not exactly
    predictable bit-for-bit, so FP loads over such fields show the *low*
    value-prediction rates real FP data exhibits.
    """
    out: List[float] = []
    value = rng.uniform(0.0, scale)
    for _ in range(n):
        out.append(value)
        value += rng.uniform(-1.0, 1.0)
    return out


def linked_list_nodes(
    count: int,
    base: int,
    node_size: int,
    rng: random.Random,
    fragmentation: float = 0.0,
    payload_pattern: Sequence[int] = (1, 2, 3, 4),
    payload_values: Sequence[int] | None = None,
) -> dict[int, int]:
    """Memory image of a singly linked list.

    Each node occupies ``node_size`` words: word 0 is the ``next``
    pointer, word 1 the payload.  With ``fragmentation=0`` the nodes are
    laid out sequentially (next-pointer loads are stride-predictable,
    like a freshly built list); higher fragmentation shuffles a growing
    share of the links.

    Payloads are assigned in *walk order*: ``payload_values`` (one per
    node) wins over the cyclic ``payload_pattern``.
    """
    if payload_values is not None and len(payload_values) < count:
        raise ValueError("payload_values must cover every node")
    if count < 1:
        raise ValueError("need at least one node")
    if not (0.0 <= fragmentation <= 1.0):
        raise ValueError("fragmentation must be in [0, 1]")
    order = list(range(count))
    shuffle_count = int(count * fragmentation)
    if shuffle_count > 1:
        tail = order[count - shuffle_count:]
        rng.shuffle(tail)
        order[count - shuffle_count:] = tail
    addresses = [base + slot * node_size for slot in order]
    image: dict[int, int] = {}
    for i, addr in enumerate(addresses):
        next_addr = addresses[(i + 1) % count]
        image[addr] = next_addr
        if payload_values is not None:
            image[addr + 1] = payload_values[i]
        else:
            image[addr + 1] = payload_pattern[i % len(payload_pattern)]
    return image
