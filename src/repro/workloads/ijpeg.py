"""Synthetic ``ijpeg`` (SPEC INT 95 132.ijpeg stand-in).

Image compression: a DCT/quantisation loop multiplying pixel data by
quantisation-table coefficients (the table cycles every 8 entries —
perfectly FCM-predictable, as the real quant tables are), and a
Huffman-style encoding loop over mostly-zero coefficients.
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

PIXELS_BASE = 10_000
QTABLE_BASE = 20_000
COEFF_BASE = 30_000
HUFF_BASE = 40_000
OUT_BASE = 50_000

_QUANT = [16, 11, 10, 16, 24, 40, 51, 61]


def _dct_body(fb: FunctionBuilder) -> None:
    # The quantisation coefficient cycles with period 8: FCM nails it.
    fb.and_("r_qi", "r_i", 7)
    fb.add("r_q_addr", "r_qi", QTABLE_BASE)
    fb.load("r_q", "r_q_addr")
    # Pixel fetch: smooth image data, moderately predictable.
    fb.add("r_p_addr", "r_i", PIXELS_BASE)
    fb.load("r_pix", "r_p_addr")
    # Butterfly-ish arithmetic: the 3-cycle multiplies give the loads a
    # long dependent chain to hide.
    fb.mul("r_m1", "r_pix", "r_q")
    fb.mul("r_m2", "r_pix", 181)
    fb.add("r_s1", "r_m1", "r_m2")
    fb.shr("r_dct", "r_s1", 7)
    fb.add("r_c_addr", "r_i", COEFF_BASE)
    fb.store("r_dct", "r_c_addr")


def _huffman_body(fb: FunctionBuilder) -> None:
    # Coefficients after quantisation are mostly zero.
    fb.add("r_h_addr", "r_j", HUFF_BASE)
    fb.load("r_coef", "r_h_addr")
    fb.cmpne("r_nz", "r_coef", 0)
    # Code-length chain: depends on the coefficient value.
    fb.shl("r_len", "r_nz", 2)
    fb.add("r_bits", "r_len", 3)
    fb.mul("r_packed", "r_coef", "r_bits")
    fb.add("r_stream", "r_packed", "r_run")
    fb.add("r_run", "r_run", 1)
    fb.add("r_w_addr", "r_j", OUT_BASE)
    fb.store("r_stream", "r_w_addr")


def build(scale: float = 1.0) -> Program:
    """Build the ijpeg stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x1A9E6)
    trips = max(8, int(300 * scale))

    pb = ProgramBuilder("ijpeg")
    fb = pb.function()

    def prologue(fb: FunctionBuilder) -> None:
        fb.mov("r_run", 0)

    chain_loops(
        fb,
        [
            LoopSpec("dct", trips, "r_i", _dct_body),
            LoopSpec("huffman", max(8, trips // 2), "r_j", _huffman_body),
        ],
        prologue=prologue,
    )
    pb.add(fb.build())

    pb.memory(QTABLE_BASE, _QUANT)
    # Smooth image row: neighbouring pixels close in value, so the pixel
    # load predicts at a middling rate under stride.
    pixels = values.noisy_strided(trips, rng, start=120, stride=1, break_rate=0.3, jump=40)
    pb.memory(PIXELS_BASE, [p % 256 for p in pixels])
    # Sparse coefficients: mostly zero with occasional energy.
    pb.memory(HUFF_BASE, values.random_values(max(8, trips // 2), rng, 0, 64))
    return pb.build()
