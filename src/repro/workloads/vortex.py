"""Synthetic ``vortex`` (SPEC INT 95 147.vortex stand-in).

An object-oriented database: lookups chase three levels of indirection —
object directory entry, object header, then the addressed field — before
any useful work can start.  The directory and headers are warm and highly
regular (repeated queries hit the same schema), which is why vortex shows
one of the *largest* value-prediction wins in the paper (best-case
schedule fraction 0.68 at 4-wide).
"""

from __future__ import annotations

import random

from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.program import Program
from repro.workloads import values
from repro.workloads.kernels import LoopSpec, chain_loops

DIR_BASE = 10_000
HEAP_BASE = 20_000
FIELDS_BASE = 30_000
LOG_BASE = 40_000

_OBJ_SIZE = 8
_DIR_SIZE = 64


def _lookup_body(fb: FunctionBuilder) -> None:
    # Level 1: directory entry -> object address.  Queries walk the
    # directory cyclically, so the pointer stream repeats (FCM food).
    fb.and_("r_key", "r_i", _DIR_SIZE - 1)
    fb.add("r_d_addr", "r_key", DIR_BASE)
    fb.load("r_obj", "r_d_addr")
    # Level 2: object header -> field offset (schema lookup).
    fb.load("r_hdr", "r_obj")
    # Level 3: the field itself, at header-described offset.
    fb.add("r_f_addr", "r_obj", "r_hdr")
    fb.load("r_field", "r_f_addr")
    # Transaction work on the field value: a deep serial chain (integrity
    # check + version stamp + checksum), the part value prediction of the
    # field load lets the machine start ten cycles early.
    fb.add("r_t1", "r_field", 17)
    fb.mul("r_t2", "r_t1", 5)
    fb.xor("r_t3", "r_t2", "r_txn")
    fb.shl("r_t4", "r_t3", 1)
    fb.add("r_t5", "r_t4", 3)
    fb.and_("r_txn", "r_t5", 8191)
    fb.add("r_l_addr", "r_i", LOG_BASE)
    fb.store("r_txn", "r_l_addr")


def _commit_body(fb: FunctionBuilder) -> None:
    # Replay the transaction log and fold it into a checksum.
    fb.add("r_c_addr", "r_j", LOG_BASE)
    fb.load("r_entry", "r_c_addr")
    fb.xor("r_chk", "r_chk", "r_entry")
    fb.shl("r_sh", "r_chk", 1)
    fb.add("r_chk", "r_sh", 1)
    fb.store("r_chk", "r_j", offset=LOG_BASE + 4096)


def build(scale: float = 1.0) -> Program:
    """Build the vortex stand-in (``scale`` multiplies trip counts)."""
    rng = random.Random(0x40147)
    trips = max(_DIR_SIZE, int(320 * scale))

    pb = ProgramBuilder("vortex")
    fb = pb.function()

    def prologue(fb: FunctionBuilder) -> None:
        fb.mov("r_txn", 0)
        fb.mov("r_chk", 0)

    chain_loops(
        fb,
        [
            LoopSpec("lookup", trips, "r_i", _lookup_body),
            LoopSpec("commit", trips, "r_j", _commit_body),
        ],
        prologue=prologue,
    )
    pb.add(fb.build())

    # Object directory: objects allocated sequentially in the heap.
    pb.memory(DIR_BASE, [HEAP_BASE + k * _OBJ_SIZE for k in range(_DIR_SIZE)])
    # Object headers: the schema offset, identical for most objects (one
    # object class dominates), so the header load predicts very well.
    headers = values.mostly_constant(_DIR_SIZE, rng, value=3, flip_rate=0.08, other=5)
    for k, offset in enumerate(headers):
        obj = HEAP_BASE + k * _OBJ_SIZE
        pb.memory(obj, [offset])
        # Field values: stable per object with occasional updates.
        field = 200 if k % 32 else 200 + k
        pb.memory(obj + 3, [field])
        pb.memory(obj + 5, [900 + (k % 11)])
    return pb.build()
