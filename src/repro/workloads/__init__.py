"""Synthetic SPEC95-like workloads with controlled value predictability."""

from repro.workloads.suite import (
    BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    benchmark_names,
    load_benchmark,
    load_suite,
    resolve_benchmarks,
)

__all__ = [
    "BENCHMARKS",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "benchmark_names",
    "load_benchmark",
    "load_suite",
    "resolve_benchmarks",
]
