"""Workload characterisation: the numbers behind the SPEC95 substitution.

The synthetic benchmarks replace SPEC95 (see DESIGN.md); this module
computes the properties the substitution is supposed to preserve, so the
claim is checkable rather than rhetorical:

* dynamic operation mix (ALU / memory / branch shares);
* load density (loads per dynamic operation);
* average dependence height and width (height / ops) of the hot blocks —
  the "chain shape" the scheduler sees;
* per-load value predictability under stride and FCM.

`python -m repro.workloads.characterize` prints the suite table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode, is_alu
from repro.ir.operation import Operation
from repro.ir.printer import format_table
from repro.machine.configs import PLAYDOH_4W
from repro.machine.description import MachineDescription
from repro.profiling.interpreter import run_program
from repro.profiling.profile_run import ProfileData, profile_program
from repro.ir.program import Program


@dataclass(frozen=True)
class WorkloadProfile:
    """Quantitative character of one workload."""

    name: str
    dynamic_operations: int
    alu_share: float
    memory_share: float
    branch_share: float
    load_density: float
    hot_block_height: float     # weighted mean dependence height
    hot_block_ilp: float        # weighted mean ops / height
    predictable_load_share: float  # loads (dynamic) with best rate >= 0.65
    mean_best_rate: float       # dynamic-weighted mean best prediction rate


class _MixCounter:
    def __init__(self) -> None:
        self.alu = 0
        self.memory = 0
        self.branch = 0
        self.loads = 0
        self.total = 0

    def block_entered(self, block: BasicBlock) -> None:
        pass

    def operation_executed(self, op: Operation, inputs, result) -> None:
        self.total += 1
        if is_alu(op.opcode):
            self.alu += 1
        elif op.is_memory:
            self.memory += 1
            if op.is_load:
                self.loads += 1
        elif op.is_branch:
            self.branch += 1


def characterize(
    program: Program,
    machine: MachineDescription = PLAYDOH_4W,
    profile: ProfileData | None = None,
) -> WorkloadProfile:
    """Measure one program's workload character."""
    if profile is None:
        profile = profile_program(program)
    mix = _MixCounter()
    run_program(program, observers=[mix])

    # Hot-block chain shape, weighted by execution count.
    weighted_height = 0.0
    weighted_ilp = 0.0
    weight_total = 0
    for block in program.main:
        count = profile.blocks.count(block.label)
        if count == 0 or len(block) < 2:
            continue
        analysis = analyze(build_ddg(block, machine), machine)
        weighted_height += count * analysis.length
        weighted_ilp += count * (len(block) / max(1, analysis.length))
        weight_total += count

    # Predictability, weighted by dynamic executions.
    executions = 0
    predictable = 0
    rate_sum = 0.0
    for stats in profile.values.loads.values():
        executions += stats.executions
        rate_sum += stats.best_rate * stats.executions
        if stats.best_rate >= 0.65:
            predictable += stats.executions

    total = max(1, mix.total)
    return WorkloadProfile(
        name=program.name,
        dynamic_operations=mix.total,
        alu_share=mix.alu / total,
        memory_share=mix.memory / total,
        branch_share=mix.branch / total,
        load_density=mix.loads / total,
        hot_block_height=weighted_height / weight_total if weight_total else 0.0,
        hot_block_ilp=weighted_ilp / weight_total if weight_total else 0.0,
        predictable_load_share=predictable / executions if executions else 0.0,
        mean_best_rate=rate_sum / executions if executions else 0.0,
    )


def characterize_suite(scale: float = 1.0) -> List[WorkloadProfile]:
    from repro.workloads.suite import load_suite

    return [
        characterize(program) for program in load_suite(scale=scale).values()
    ]


def render(profiles: List[WorkloadProfile]) -> str:
    rows = [
        (
            p.name,
            str(p.dynamic_operations),
            f"{p.alu_share:.2f}",
            f"{p.memory_share:.2f}",
            f"{p.branch_share:.2f}",
            f"{p.load_density:.2f}",
            f"{p.hot_block_height:.1f}",
            f"{p.hot_block_ilp:.2f}",
            f"{p.predictable_load_share:.2f}",
            f"{p.mean_best_rate:.2f}",
        )
        for p in profiles
    ]
    return format_table(
        [
            "workload",
            "dyn ops",
            "ALU",
            "mem",
            "br",
            "load density",
            "hot height",
            "ops/cycle bound",
            "predictable loads",
            "mean best rate",
        ],
        rows,
    )


if __name__ == "__main__":
    print(render(characterize_suite()))
