"""``repro-inspect``: look inside the compiler for one block.

Dumps, for a chosen benchmark block, everything the speculation pipeline
knows about it: the assembly, the load value profile, the critical path,
the original and speculative schedules, the transformed operation forms
with their Synchronization bits, and a cycle-by-cycle dual-engine
timeline for a chosen misprediction scenario.

Examples::

    repro-inspect --benchmark vortex --list
    repro-inspect --benchmark vortex --block lookup
    repro-inspect --benchmark m88ksim --block cycle --machine playdoh-8w \\
        --scenario worst
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze
from repro.ir.asm import format_operation_asm
from repro.ir.liveness import compute_liveness
from repro.machine.configs import by_name
from repro.profiling.profile_run import profile_program
from repro.sched.list_scheduler import schedule_block
from repro.core.machine_sim import simulate_block
from repro.core.specsched import schedule_speculative
from repro.core.speculation import SpeculationConfig, speculate_block
from repro.core.timeline import render_timeline
from repro.workloads.suite import benchmark_names, load_benchmark


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Inspect the speculation pipeline for one benchmark block.",
    )
    parser.add_argument(
        "--benchmark", required=True, help=f"one of {benchmark_names()}"
    )
    parser.add_argument("--block", help="block label (see --list)")
    parser.add_argument("--list", action="store_true", help="list blocks and exit")
    parser.add_argument(
        "--machine", default="playdoh-4w", help="machine configuration name"
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--threshold", type=float, default=0.65, help="profile threshold"
    )
    parser.add_argument(
        "--scenario",
        default="worst",
        help="'best', 'worst', or a comma list like 1,0 (per predicted load)",
    )
    return parser


def _parse_scenario(text: str, n: int) -> List[bool]:
    if text == "best":
        return [True] * n
    if text == "worst":
        return [False] * n
    values = [tok.strip() for tok in text.split(",")]
    if len(values) != n or any(v not in ("0", "1") for v in values):
        raise SystemExit(
            f"scenario must be 'best', 'worst' or {n} comma-separated 0/1 flags"
        )
    return [v == "1" for v in values]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.benchmark not in benchmark_names():
        print(f"unknown benchmark {args.benchmark!r}", file=sys.stderr)
        return 2
    program = load_benchmark(args.benchmark, scale=args.scale)
    machine = by_name(args.machine)
    function = program.main

    if args.list or not args.block:
        profile = profile_program(program)
        print(f"blocks of {args.benchmark} (dynamic count, #ops):")
        for block in function:
            print(
                f"  {block.label:12s} x{profile.blocks.count(block.label):<6d} "
                f"{len(block.operations)} ops"
            )
        return 0

    if not function.has_block(args.block):
        print(f"no block {args.block!r} in {args.benchmark}", file=sys.stderr)
        return 2

    block = function.block(args.block)
    profile = profile_program(program)

    print(f"=== {args.benchmark}/{args.block} on {machine} ===\n")
    print("assembly:")
    for op in block:
        print(f"    {format_operation_asm(op)}")

    print("\nload profile:")
    for op in block.loads():
        stats = profile.values.loads.get(op.op_id)
        if stats is None:
            print(f"    op{op.op_id}: never executed")
        else:
            print(
                f"    op{op.op_id}: n={stats.executions} "
                f"stride={stats.stride_rate:.2f} fcm={stats.fcm_rate:.2f}"
            )

    graph = build_ddg(block, machine)
    analysis = analyze(graph, machine)
    print(f"\ncritical path: {analysis.length} cycles through "
          f"{[f'op{i}' for i in analysis.critical_ops]}")

    original = schedule_block(block, machine)
    print(f"\noriginal schedule ({original.length} cycles):")
    print(original)

    config = SpeculationConfig(threshold=args.threshold)
    live_out = compute_liveness(function).live_out[block.label]
    spec = speculate_block(
        block, machine, profile.values, live_out=live_out, config=config
    )
    if spec is None:
        print("\nspeculation: nothing profitable to predict at this threshold")
        return 0

    sched = schedule_speculative(spec, machine, original_length=original.length)
    print(f"\nspeculative schedule ({sched.length} cycles, "
          f"{sched.improvement} saved, {spec.num_predictions} prediction(s)):")
    print(sched.schedule)

    outcomes_list = _parse_scenario(args.scenario, spec.num_predictions)
    outcomes = dict(zip(spec.ldpred_ids, outcomes_list))
    run = simulate_block(sched, outcomes, collect_trace=True)
    print(f"\nscenario {args.scenario!r}:")
    print(render_timeline(sched, run))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
