"""Command-line inspection tooling built on the public library API."""
