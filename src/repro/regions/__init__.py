"""Region enlargement: straight-line merging and loop unrolling.

The paper closes by expecting larger scheduling regions (superblocks,
hyperblocks) to amplify value prediction's benefit.  These transforms
let the experiments quantify that on the synthetic suite.
"""

from repro.regions.merge import merge_straightline
from repro.regions.unroll import UnrollError, unroll_loop, unroll_program_loop

__all__ = [
    "UnrollError",
    "merge_straightline",
    "unroll_loop",
    "unroll_program_loop",
]
