"""Loop unrolling with register renaming.

Unrolls a single-block counted loop ``factor`` times, renaming each
copy's definitions so the copies expose instruction-level parallelism to
the scheduler instead of serialising on register reuse.  Loop-carried
values flow naturally: every definition gets a fresh name in copies
1..factor-1 and uses are resolved through a running rename map; the last
copy writes the *original* register names so the loop back-edge and the
exit see the expected state.

The intermediate copies' exit tests are removed (their compare feeds
only the branch), which is only sound when the trip count is divisible
by the unroll factor — the classic restriction.  :func:`unroll_loop`
cannot check that statically, so callers (and the region experiments)
validate by architectural equivalence: run both versions and compare
final state.

This transform exists to quantify the paper's closing expectation that
"for larger regions such as hyperblocks and superblocks, we expect to
see a further improvement" from value prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operand, Operation, Reg


class UnrollError(ValueError):
    """The block is not an unrollable self-loop."""


def _rename_operand(operand: Operand, mapping: Dict[Reg, Reg]) -> Operand:
    if isinstance(operand, Reg):
        return mapping.get(operand, operand)
    return operand


def _copy_op(
    op: Operation,
    mapping: Dict[Reg, Reg],
    fresh_suffix: Optional[str],
) -> Operation:
    """Copy ``op`` with operands renamed through ``mapping``; if
    ``fresh_suffix`` is given, the destination gets a fresh name and the
    mapping is updated, otherwise the destination reverts to the
    original architectural name."""
    srcs = tuple(_rename_operand(s, mapping) for s in op.srcs)
    dest = op.dest
    if dest is not None:
        if fresh_suffix is not None:
            fresh = Reg(f"{dest.name}{fresh_suffix}")
            mapping[dest] = fresh
            dest = fresh
        else:
            mapping[dest] = dest
    return Operation(
        opcode=op.opcode,
        dest=dest,
        srcs=srcs,
        offset=op.offset,
        targets=op.targets,
    )


def _condition_feeds_only_branch(block: BasicBlock) -> bool:
    term = block.terminator
    if term is None or term.opcode is not Opcode.BRCOND:
        return False
    cond = term.srcs[0]
    uses = 0
    for op in block.body:
        uses += sum(1 for r in op.uses() if r == cond)
    return uses == 0


def unroll_loop(function: Function, label: str, factor: int) -> Function:
    """Return a new function with loop ``label`` unrolled ``factor``x.

    Requirements (raising :class:`UnrollError` otherwise):

    * the block's terminator is a conditional branch with the block
      itself as one target (a self loop);
    * the loop condition register is produced in the block and feeds
      only the branch (so intermediate exit tests can be elided);
    * ``factor`` >= 2.
    """
    if factor < 2:
        raise UnrollError("unroll factor must be >= 2")
    block = function.block(label)
    term = block.terminator
    if term is None or term.opcode is not Opcode.BRCOND or label not in term.targets:
        raise UnrollError(f"block {label!r} is not a conditional self-loop")
    cond_reg = term.srcs[0]
    cond_def = None
    for op in block.body:
        if op.dest == cond_reg:
            cond_def = op
    if cond_def is None or not _condition_feeds_only_branch(block):
        raise UnrollError(
            f"loop condition of {label!r} must be computed in the block "
            "and feed only the branch"
        )

    body = [op for op in block.body]
    new_ops: List[Operation] = []
    mapping: Dict[Reg, Reg] = {}
    for copy_index in range(factor):
        last_copy = copy_index == factor - 1
        suffix = None if last_copy else f"__u{copy_index}"
        for op in body:
            if not last_copy and op.op_id == cond_def.op_id:
                continue  # intermediate exit test elided
            new_ops.append(_copy_op(op, mapping, suffix))
    # The back edge: same branch shape, condition renamed through the map.
    new_ops.append(
        Operation(
            opcode=Opcode.BRCOND,
            srcs=(_rename_operand(cond_reg, mapping),),
            targets=term.targets,
        )
    )

    result = Function(function.name, entry_label=function.entry_label)
    for blk in function:
        if blk.label == label:
            result.add_block(BasicBlock(label, new_ops))
        else:
            result.add_block(BasicBlock(blk.label, list(blk.operations)))
    return result


def unroll_program_loop(program, label: str, factor: int):
    """Convenience: clone ``program`` with one loop of main unrolled."""
    from repro.ir.program import Program

    clone = Program(f"{program.name}-u{factor}", main=program.main_name)
    for function in program:
        if function.name == program.main_name:
            clone.add_function(unroll_loop(function, label, factor))
        else:
            clone.add_function(function)
    clone.initial_memory.update(program.initial_memory)
    clone.initial_registers.update(program.initial_registers)
    return clone
