"""Straight-line block merging.

Merges a block into its successor when the edge is the only way in and
out (A's unique successor is B, B's unique predecessor is A), growing
the scheduling region without changing semantics.  This is the
uncontroversial core of superblock formation; the paper expects larger
regions (superblocks/hyperblocks) to increase value prediction's benefit
because longer dependence chains cross a single scheduling scope.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function


def _unique_successor(function: Function, block: BasicBlock) -> Optional[str]:
    targets = set(block.successor_labels())
    if len(targets) != 1:
        return None
    (target,) = targets
    if target == block.label:
        return None  # self loop
    return target


def _predecessor_count(function: Function, label: str) -> int:
    return sum(
        1 for blk in function if label in blk.successor_labels()
    )


def merge_straightline(function: Function) -> Function:
    """Return a new function with all straight-line chains merged.

    Operation objects are reused (their ids — and with them any value
    profiles keyed on them — stay valid).  Merged blocks keep the chain
    head's label; branch targets are untouched because only unique-pred/
    unique-succ edges are merged, so no other block referenced the
    absorbed label.
    """
    absorbed: set[str] = set()
    merged_ops: Dict[str, list] = {
        blk.label: list(blk.operations) for blk in function
    }

    changed = True
    while changed:
        changed = False
        for block in function:
            label = block.label
            if label in absorbed:
                continue
            ops = merged_ops[label]
            if not ops or not ops[-1].is_branch:
                continue
            # Determine the current terminator's unique successor.
            terminator = ops[-1]
            targets = set(terminator.targets)
            if len(targets) != 1:
                continue
            (target,) = targets
            if target == label or target in absorbed:
                continue
            if target == function.entry_label:
                continue  # the entry must stay addressable
            if _predecessor_count_dynamic(function, merged_ops, absorbed, target) != 1:
                continue
            # Merge: drop A's unconditional branch, splice B in.
            merged_ops[label] = ops[:-1] + merged_ops[target]
            absorbed.add(target)
            changed = True

    result = Function(function.name, entry_label=function.entry_label)
    for block in function:
        if block.label in absorbed:
            continue
        result.add_block(BasicBlock(block.label, merged_ops[block.label]))
    return result


def _predecessor_count_dynamic(function, merged_ops, absorbed, label: str) -> int:
    count = 0
    for block in function:
        if block.label in absorbed:
            continue
        ops = merged_ops[block.label]
        if ops and ops[-1].is_branch and label in ops[-1].targets:
            count += 1
    return count
