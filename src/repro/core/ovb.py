"""The Operand Value Buffer (paper section 2.3, Tables 1 and 2).

The OVB stores, for every value involved in speculation, the operand
*kind* (how the value was computed) and its *state* in the verification
protocol:

====================  =====================================================
kind                  meaning
====================  =====================================================
``PREDICTED``         produced by ``LdPred`` (state starts ``PN``,
                      prediction-not-verified)
``SPECULATED``        produced by a value-speculated operation (state
                      starts ``RN``, recompute-not-known)
``CORRECT``           involves no prediction at all (state ``C``)
====================  =====================================================

State transitions (paper's Figure 7 walkthrough):

* ``PN -> C`` when the check finds the prediction correct;
* ``PN -> R`` when it does not — the check itself computed the correct
  value, so for a predicted value "the update is for both the value and
  state";
* ``RN -> C`` when every origin prediction of the speculated value is
  verified correct;
* ``RN -> R`` when any origin is wrong — the correct value only exists
  once the Compensation Code Engine re-executes the operation.

Every record carries timestamps so the timing simulator can ask *when* a
correct value became available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import BufferStallEvent, OvbTransitionEvent, TraceSink


class OperandKind(enum.Enum):
    """How a value was computed (paper Table 1)."""

    CORRECT = "correct"
    PREDICTED = "predicted"     # by LdPred
    SPECULATED = "speculated"   # by a value-speculated operation


class OperandState(enum.Enum):
    """Verification state of a value (paper's PN/RN/C/R)."""

    PN = "prediction-not-verified"
    RN = "recompute-not-known"
    C = "correct"
    R = "needs-recompute"


@dataclass
class ValueRecord:
    """One OVB entry: the value produced by one operation."""

    producer_id: int
    kind: OperandKind
    state: OperandState
    available_at: int
    origins: FrozenSet[int] = frozenset()
    resolved_at: Optional[int] = None
    correct_value_at: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.state in (OperandState.C, OperandState.R)


class OVBFull(RuntimeError):
    """Raised when an insert exceeds a bounded OVB's capacity.

    A real machine would stall VLIW issue instead; the simulator treats
    overflow as a configuration error so design-space sweeps bounding the
    buffer (``MachineSpec.ovb_capacity``) surface undersized buffers
    loudly rather than silently mis-timing blocks.
    """


class OperandValueBuffer:
    """Keyed store of :class:`ValueRecord`.

    Unbounded by default, as in the paper's simulation.  With
    ``capacity`` set (from ``MachineSpec.ovb_capacity``) inserts beyond
    the bound raise :class:`OVBFull`; ``high_water`` records the peak
    occupancy either way, which the explore driver uses to size buffers.
    """

    def __init__(
        self,
        trace: Optional[TraceSink] = None,
        metrics: MetricsRegistry = NULL_METRICS,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("OVB capacity must be positive or None")
        self._records: Dict[int, ValueRecord] = {}
        self.inserts = 0
        self.updates = 0
        self.capacity = capacity
        self.high_water = 0
        self._trace = trace
        self._metrics = metrics

    def _admit(self, producer_id: int, time: int) -> None:
        if (
            self.capacity is not None
            and producer_id not in self._records
            and len(self._records) >= self.capacity
        ):
            if self._trace is not None:
                self._trace.emit(
                    BufferStallEvent(
                        cycle=time, buffer="ovb", op_id=producer_id, stall=0
                    )
                )
            raise OVBFull(
                f"OVB capacity {self.capacity} exceeded inserting op "
                f"{producer_id}; bound speculation or enlarge ovb_capacity"
            )

    def _transition(self, op_id: int, state: OperandState, time: int) -> None:
        self._metrics.inc("ovb.state_transitions", label=state.name)
        if self._trace is not None:
            self._trace.emit(
                OvbTransitionEvent(cycle=time, op_id=op_id, state=state.name)
            )

    # -- insertion (VLIW engine side) ------------------------------------

    def record_predicted(self, ldpred_id: int, available_at: int) -> ValueRecord:
        self._admit(ldpred_id, available_at)
        record = ValueRecord(
            producer_id=ldpred_id,
            kind=OperandKind.PREDICTED,
            state=OperandState.PN,
            available_at=available_at,
            origins=frozenset({ldpred_id}),
        )
        self._records[ldpred_id] = record
        self.inserts += 1
        self._metrics.inc("ovb.inserts")
        self._metrics.set_gauge("ovb.size", len(self._records))
        self.high_water = max(self.high_water, len(self._records))
        self._transition(ldpred_id, OperandState.PN, available_at)
        return record

    def record_speculated(
        self, op_id: int, available_at: int, origins: FrozenSet[int]
    ) -> ValueRecord:
        self._admit(op_id, available_at)
        record = ValueRecord(
            producer_id=op_id,
            kind=OperandKind.SPECULATED,
            state=OperandState.RN,
            available_at=available_at,
            origins=origins,
        )
        self._records[op_id] = record
        self.inserts += 1
        self._metrics.inc("ovb.inserts")
        self._metrics.set_gauge("ovb.size", len(self._records))
        self.high_water = max(self.high_water, len(self._records))
        self._transition(op_id, OperandState.RN, available_at)
        return record

    # -- verification updates ----------------------------------------------

    def apply_check(self, ldpred_id: int, time: int, correct: bool) -> ValueRecord:
        """The check op verified an ``LdPred`` prediction at ``time``.

        Correct or not, the check computed the true value, so the record
        is value-resolved either way.
        """
        record = self._require(ldpred_id, OperandKind.PREDICTED)
        if record.resolved:
            raise RuntimeError(f"prediction {ldpred_id} verified twice")
        record.state = OperandState.C if correct else OperandState.R
        record.resolved_at = time
        record.correct_value_at = record.available_at if correct else time
        self.updates += 1
        self._transition(ldpred_id, record.state, time)
        return record

    def resolve_speculated_correct(self, op_id: int, time: int) -> ValueRecord:
        """All origin predictions proved correct: the speculative value
        already in the buffer is the correct one."""
        record = self._require(op_id, OperandKind.SPECULATED)
        record.state = OperandState.C
        record.resolved_at = time
        record.correct_value_at = max(record.available_at, time)
        self.updates += 1
        self._transition(op_id, OperandState.C, time)
        return record

    def mark_needs_recompute(self, op_id: int, time: int) -> ValueRecord:
        """Some origin was mispredicted: flag for CC-engine re-execution."""
        record = self._require(op_id, OperandKind.SPECULATED)
        record.state = OperandState.R
        record.resolved_at = time
        self.updates += 1
        self._transition(op_id, OperandState.R, time)
        return record

    def record_recomputed(self, op_id: int, completion: int) -> ValueRecord:
        """The CC engine re-executed the op; correct value at ``completion``."""
        record = self._require(op_id, OperandKind.SPECULATED)
        if record.state is not OperandState.R:
            raise RuntimeError(
                f"op {op_id} recomputed while in state {record.state.name}"
            )
        record.correct_value_at = completion
        self.updates += 1
        return record

    # -- queries ----------------------------------------------------------

    def get(self, producer_id: int) -> Optional[ValueRecord]:
        return self._records.get(producer_id)

    def record(self, producer_id: int) -> ValueRecord:
        try:
            return self._records[producer_id]
        except KeyError:
            raise KeyError(f"OVB has no record for op {producer_id}") from None

    def _require(self, producer_id: int, kind: OperandKind) -> ValueRecord:
        record = self.record(producer_id)
        if record.kind is not kind:
            raise RuntimeError(
                f"op {producer_id} is {record.kind.value}, expected {kind.value}"
            )
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, producer_id: int) -> bool:
        return producer_id in self._records
