"""The statically-scheduled recovery baseline (the paper's reference [4]).

The prior approach to value speculation in VLIW machines schedules, for
each predicted operation, a *compensation code block* alongside the main
code.  When a check detects a misprediction, control branches to the
corresponding compensation block, re-executes every operation that was
speculated using the incorrect value, and branches back.  While the
compensation block runs, the main code makes no progress; each recovery
also pays two branch redirects and fetches the compensation block through
the instruction cache, evicting useful lines.

This module rebuilds that scheme on top of the same speculation transform
so the two architectures differ only in *recovery* — exactly the paper's
experimental set-up ("we implemented a recovery scheme, based on the one
proposed in [4]").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ddg.graph import DepKind, DependenceGraph
from repro.ir.operation import Operation
from repro.machine.description import MachineDescription
from repro.sched.list_scheduler import ListScheduler
from repro.core.icache import CodeLayout, ICacheConfig, InstructionCache
from repro.core.isa_ext import OpForm, SpeculativeBlock
from repro.core.specsched import SpeculativeSchedule, schedule_speculative


@dataclass(frozen=True)
class CompensationBlock:
    """One statically scheduled recovery block for one predicted load."""

    ldpred_id: int
    op_ids: Tuple[int, ...]
    op_count: int
    length: int  # schedule length in cycles

    @property
    def code_id(self) -> str:
        return f"comp:{self.ldpred_id}"


@dataclass
class BaselineBlock:
    """A block compiled for the statically-recovered baseline machine."""

    spec: SpeculativeBlock
    schedule: SpeculativeSchedule
    compensation: Dict[int, CompensationBlock]

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def main_length(self) -> int:
        return self.schedule.length

    @property
    def static_comp_ops(self) -> int:
        """Total operations duplicated into compensation blocks (code growth)."""
        return sum(c.op_count for c in self.compensation.values())


def _compensation_graph(
    spec: SpeculativeBlock, ldpred_id: int, machine: MachineDescription
) -> Optional[DependenceGraph]:
    """Dependence graph of the ops speculated from one prediction."""
    members: List[Operation] = [
        op
        for op in spec.operations
        if spec.info[op.op_id].form is OpForm.SPECULATIVE
        and ldpred_id in spec.info[op.op_id].origins
    ]
    if not members:
        return None
    member_ids = {op.op_id for op in members}
    graph = DependenceGraph(members)
    # Flow dependences among members via static def-use chains.
    last_def: Dict[str, Operation] = {}
    for op in spec.operations:
        if op.op_id in member_ids:
            for reg in op.uses():
                producer = last_def.get(reg.name)
                if producer is not None and producer.op_id in member_ids:
                    graph.add_edge(
                        producer, op, DepKind.FLOW, machine.latency(producer.opcode)
                    )
        for reg in op.defs():
            last_def[reg.name] = op
    return graph


def build_baseline_block(
    spec: SpeculativeBlock,
    machine: MachineDescription,
    original_length: Optional[int] = None,
) -> BaselineBlock:
    """Compile a transformed block for the baseline recovery scheme."""
    scheduler = ListScheduler(machine)
    schedule = schedule_speculative(spec, machine, original_length=original_length)
    compensation: Dict[int, CompensationBlock] = {}
    for ldpred_id in spec.ldpred_ids:
        graph = _compensation_graph(spec, ldpred_id, machine)
        if graph is None:
            compensation[ldpred_id] = CompensationBlock(ldpred_id, (), 0, 0)
            continue
        comp_schedule = scheduler.schedule_graph(f"comp:{ldpred_id}", graph)
        compensation[ldpred_id] = CompensationBlock(
            ldpred_id=ldpred_id,
            op_ids=tuple(op.op_id for op in graph.operations),
            op_count=len(graph),
            length=comp_schedule.length,
        )
    return BaselineBlock(spec=spec, schedule=schedule, compensation=compensation)


@dataclass(frozen=True)
class SquashRun:
    """Cycle accounting of one block instance under squash recovery."""

    label: str
    effective_length: int
    detected_at: int
    squashed: bool
    predictions: int
    mispredictions: int


def simulate_squash_block(
    spec_schedule,
    outcomes: Mapping[int, bool],
    machine: MachineDescription,
) -> SquashRun:
    """Superscalar-style recovery: on *any* misprediction, squash the
    block and re-execute it conservatively (no prediction).

    This is the recovery model value-prediction work assumed on
    out-of-order machines; the comparison shows why a VLIW cannot afford
    it — the whole statically scheduled block restarts.  Detection time
    is the earliest failing check's completion; the restart pays one
    branch redirect plus the original (unspeculated) schedule.
    """
    spec = spec_schedule.spec
    missing = set(spec.ldpred_ids) - set(outcomes)
    if missing:
        raise ValueError(f"missing outcomes for LdPred ops {sorted(missing)}")
    mispredicted = [l for l in spec.ldpred_ids if not outcomes[l]]
    if not mispredicted:
        return SquashRun(
            label=spec.label,
            effective_length=spec_schedule.length,
            detected_at=0,
            squashed=False,
            predictions=len(spec.ldpred_ids),
            mispredictions=0,
        )
    detected = min(
        spec_schedule.schedule.completion_cycle(spec.check_of[l])
        for l in mispredicted
    )
    effective = detected + machine.branch_penalty + spec_schedule.original_length
    return SquashRun(
        label=spec.label,
        effective_length=effective,
        detected_at=detected,
        squashed=True,
        predictions=len(spec.ldpred_ids),
        mispredictions=len(mispredicted),
    )


@dataclass(frozen=True)
class BaselineRun:
    """Cycle breakdown of one dynamic block instance on the baseline."""

    label: str
    effective_length: int
    main_cycles: int
    compensation_cycles: int
    branch_cycles: int
    icache_cycles: int
    predictions: int
    mispredictions: int


def simulate_baseline_block(
    baseline: BaselineBlock,
    outcomes: Mapping[int, bool],
    machine: MachineDescription,
    cache: Optional[InstructionCache] = None,
    layout: Optional[CodeLayout] = None,
) -> BaselineRun:
    """One dynamic instance: main schedule + serial recovery excursions.

    With ``cache``/``layout`` provided, the main block and any executed
    compensation blocks are fetched through the instruction cache and
    miss penalties are charged (this is how compensation code corrupts
    the cache).  Without them the comparison is purely compute-time.
    """
    spec = baseline.spec
    missing = set(spec.ldpred_ids) - set(outcomes)
    if missing:
        raise ValueError(f"missing outcomes for LdPred ops {sorted(missing)}")

    main = baseline.main_length
    comp_cycles = 0
    branch_cycles = 0
    icache_cycles = 0
    mispredictions = 0

    if cache is not None and layout is not None:
        icache_cycles += layout.fetch(cache, f"main:{baseline.label}")

    for ldpred_id in spec.ldpred_ids:
        if outcomes[ldpred_id]:
            continue
        mispredictions += 1
        comp = baseline.compensation[ldpred_id]
        # Branch to the compensation block and back: the recovery
        # branches cannot be removed because recovery happens only after
        # verification (paper section 1).
        branch_cycles += 2 * machine.branch_penalty
        comp_cycles += comp.length
        if cache is not None and layout is not None and comp.op_count:
            icache_cycles += layout.fetch(cache, comp.code_id)

    total = main + comp_cycles + branch_cycles + icache_cycles
    return BaselineRun(
        label=baseline.label,
        effective_length=total,
        main_cycles=main,
        compensation_cycles=comp_cycles,
        branch_cycles=branch_cycles,
        icache_cycles=icache_cycles,
        predictions=len(spec.ldpred_ids),
        mispredictions=mispredictions,
    )
