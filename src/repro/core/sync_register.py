"""The Synchronization register (paper section 2.1).

A bit vector with one bit per *predicted value* of the block currently in
flight.  A bit is set when the value it guards is produced speculatively
(by ``LdPred`` or by a speculated operation) and cleared when the value is
verified correct (by the check-prediction op) or recomputed (by the
Compensation Code Engine).  VLIW instructions containing non-speculative
operations encode wait masks over these bits and stall while any masked
bit is set.

The simulator variant here tracks *times*: when each bit was set and when
it cleared, which is all the timing model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import SyncClearEvent, SyncSetEvent, TraceSink


class SyncRegisterOverflow(RuntimeError):
    """A block needs more predicted-value bits than the register has."""


class SyncBitAllocator:
    """Compile-time assignment of Synchronization-register bit indices.

    The paper pre-determines bit indices statically per block; indices can
    be reused across blocks because predictions do not cross block
    boundaries in this design.
    """

    def __init__(self, width: int = 64):
        if width < 1:
            raise ValueError("register width must be positive")
        self.width = width
        self._next = 0
        self._by_producer: Dict[int, int] = {}

    def allocate(self, producer_id: int) -> int:
        if producer_id in self._by_producer:
            return self._by_producer[producer_id]
        if self._next >= self.width:
            raise SyncRegisterOverflow(
                f"block needs more than {self.width} Synchronization bits"
            )
        bit = self._next
        self._next += 1
        self._by_producer[producer_id] = bit
        return bit

    def bit_of(self, producer_id: int) -> Optional[int]:
        return self._by_producer.get(producer_id)

    @property
    def allocated(self) -> int:
        return self._next


class SyncRegisterState:
    """Run-time bit state with set/clear timestamps (simulator side)."""

    def __init__(
        self,
        width: int = 64,
        trace: Optional[TraceSink] = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        self.width = width
        self._set_at: Dict[int, int] = {}
        self._cleared_at: Dict[int, int] = {}
        self._cleared_by: Dict[int, Optional[str]] = {}
        self._trace = trace
        self._metrics = metrics

    def set_bit(self, bit: int, time: int) -> None:
        self._check(bit)
        self._set_at[bit] = time
        self._cleared_at.pop(bit, None)
        self._cleared_by.pop(bit, None)
        self._metrics.inc("sync.sets")
        if self._trace is not None:
            self._trace.emit(SyncSetEvent(cycle=time, bit=bit))

    def clear_bit(
        self, bit: int, time: int, source: Optional[str] = None
    ) -> None:
        """Record the bit clearing; idempotent, keeping the earliest time.

        A clear can be *decided* before the bit was even set (a check can
        complete before a slow-to-issue speculated op sets its bit); the
        effective clear time is clamped to the set time, since a bit is
        never observed set-then-clear earlier than it was set.

        ``source`` names who cleared the bit (``"check"``, ``"flush"``,
        ``"execute"``); cycle accounting reads it back via
        :meth:`clear_source` to attribute stalls on this bit.  Only the
        winning (earliest) clear's source is kept.
        """
        self._check(bit)
        if bit not in self._set_at:
            raise RuntimeError(f"clearing bit {bit} that was never set")
        time = max(time, self._set_at[bit])
        prior = self._cleared_at.get(bit)
        if prior is not None and prior <= time:
            return
        self._cleared_at[bit] = time
        self._cleared_by[bit] = source
        self._metrics.inc("sync.clears")
        if self._trace is not None:
            self._trace.emit(SyncClearEvent(cycle=time, bit=bit))

    def clear_time(self, bit: int) -> Optional[int]:
        """Time the bit cleared, or ``None`` while still pending."""
        self._check(bit)
        if bit not in self._set_at:
            return 0  # never predicted: trivially clear from the start
        return self._cleared_at.get(bit)

    def clear_source(self, bit: int) -> Optional[str]:
        """Who cleared the bit (``None`` if pending or never predicted)."""
        self._check(bit)
        return self._cleared_by.get(bit)

    def wait_until_clear(self, bits: Iterable[int]) -> Optional[int]:
        """Earliest time every bit in ``bits`` is clear (None if pending)."""
        latest = 0
        for bit in bits:
            t = self.clear_time(bit)
            if t is None:
                return None
            latest = max(latest, t)
        return latest

    def _check(self, bit: int) -> None:
        if not (0 <= bit < self.width):
            raise IndexError(f"bit {bit} outside register width {self.width}")
