"""Whole-program dynamic simulation of the proposed architecture.

The program is executed architecturally by the interpreter; a simulation
observer rides along and, for every dynamic instance of a speculated
block, queries the live hardware value predictor for each predicted load,
scores it against the actual loaded value, and charges the instance the
dual-engine timing for the resulting correctness pattern (timings are
memoised per pattern — a block with *n* predicted loads has at most
``2^n`` distinct timings).

The same pass simultaneously accounts the two comparison machines:

* **no prediction** — every block instance costs its original schedule
  length;
* **baseline recovery** ([4]) — the main speculative schedule plus serial
  compensation-block excursions, branch redirects and (optionally)
  instruction-cache pollution.

This mirrors the paper's methodology of combining profiled block
frequencies with per-block schedule lengths, except outcomes come from a
real predictor running over the real value stream rather than from the
profile alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.obs.cycles import attribute_schedule
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, NULL_METRICS
from repro.predict.base import ValuePredictor, _values_equal
from repro.predict.confidence import ConfidenceEstimator
from repro.predict.hybrid import default_hybrid
from repro.predict.table import ValuePredictionTable
from repro.profiling.interpreter import Interpreter
from repro.core import compile_cache
from repro.core.baseline import simulate_baseline_block, simulate_squash_block
from repro.core.icache import CodeLayout, ICacheConfig, InstructionCache
from repro.core.metrics import (
    BlockCompilation,
    OutcomeClass,
    ProgramCompilation,
    classify_outcome,
)


@dataclass
class ProgramSimResult:
    """Aggregate timing of one dynamic program run on all three machines."""

    program_name: str
    machine_name: str
    # Totals.
    cycles_nopred: int = 0
    cycles_proposed: int = 0
    cycles_baseline: int = 0
    #: Superscalar-style squash recovery: any misprediction restarts the
    #: whole block without prediction.
    cycles_squash: int = 0
    squashed_instances: int = 0
    # Baseline breakdown.
    baseline_compensation_cycles: int = 0
    baseline_branch_cycles: int = 0
    baseline_icache_cycles: int = 0
    proposed_icache_cycles: int = 0
    # Proposed-machine accounting by dynamic outcome class.
    cycles_by_class: Dict[OutcomeClass, int] = field(default_factory=dict)
    instances_by_class: Dict[OutcomeClass, int] = field(default_factory=dict)
    # Original-schedule cycles of the same instances (per class), for
    # schedule-length-ratio computations.
    original_cycles_by_class: Dict[OutcomeClass, int] = field(default_factory=dict)
    # Figure 8: per dynamic speculated instance, original minus effective
    # length (positive = improvement), bucketed later by the experiment.
    length_delta_histogram: Counter = field(default_factory=Counter)
    # Prediction accounting.
    predictions: int = 0
    mispredictions: int = 0
    stall_cycles: int = 0
    cc_executed: int = 0
    cc_flushed: int = 0
    dynamic_blocks: int = 0
    # Extensions: instances that fell back to the non-speculative block
    # version because prediction confidence was low (see simulate_program's
    # ``confidence`` option), and value-prediction-table tag misses.
    gated_instances: int = 0
    table_tag_misses: int = 0
    #: Aggregated observability snapshot; populated only when
    #: ``simulate_program`` ran with ``collect_metrics=True``.
    metrics: Optional[MetricsSnapshot] = None
    #: Per-machine CPI stacks (``"nopred"``/``"proposed"``/``"baseline"``
    #: -> cause -> cycles, causes from :data:`repro.obs.cycles.CAUSES`);
    #: populated only when ``simulate_program`` ran with
    #: ``collect_cycles=True``.  Each stack sums exactly to the matching
    #: ``cycles_*`` total — asserted at the end of the run.
    cycle_stacks: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def speedup_proposed(self) -> float:
        """No-prediction cycles over proposed-machine cycles."""
        return self.cycles_nopred / self.cycles_proposed if self.cycles_proposed else 1.0

    @property
    def speedup_baseline(self) -> float:
        return self.cycles_nopred / self.cycles_baseline if self.cycles_baseline else 1.0

    @property
    def speedup_squash(self) -> float:
        return self.cycles_nopred / self.cycles_squash if self.cycles_squash else 1.0

    @property
    def prediction_accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    def time_fraction(self, outcome: OutcomeClass) -> float:
        """Fraction of proposed-machine time spent in instances of a class."""
        if self.cycles_proposed == 0:
            return 0.0
        return self.cycles_by_class.get(outcome, 0) / self.cycles_proposed

    def class_length_fraction(self, outcome: OutcomeClass) -> float:
        """Effective/original length ratio for instances of a class."""
        orig = self.original_cycles_by_class.get(outcome, 0)
        if orig == 0:
            return 1.0
        return self.cycles_by_class.get(outcome, 0) / orig

    @property
    def baseline_compensation_fraction(self) -> float:
        """Share of baseline time spent off the main schedule (recovery)."""
        if self.cycles_baseline == 0:
            return 0.0
        overhead = (
            self.baseline_compensation_cycles
            + self.baseline_branch_cycles
            + self.baseline_icache_cycles
        )
        return overhead / self.cycles_baseline


@dataclass
class SimCounts:
    """Sufficient statistics of one dynamic run (non-icache machines).

    Everything :func:`simulate_program` reports is an exact,
    deterministic function of these counts plus the (memoised) per-block
    compiler products: per label, how many instances ran non-speculated
    / confidence-gated / under each correctness pattern, plus the raw
    predictor hit counters.  The scalar observer and the batched engine
    (:mod:`repro.batchsim.engine`) both reduce a run to this record and
    share :func:`_fold_counts` for the accounting — which is what makes
    batched results byte-identical to scalar results by construction.
    """

    nonspec: Dict[str, int] = field(default_factory=dict)
    gated: Dict[str, int] = field(default_factory=dict)
    patterns: Dict[str, Dict[Tuple[bool, ...], int]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    no_predictions: int = 0


def _shared_original_attribution(
    compilation: ProgramCompilation, comp: BlockCompilation
) -> Dict[str, int]:
    """Per-cause attribution of the block's original schedule.

    The compiler records only the original schedule *length*; list
    scheduling is deterministic, so rebuilding the schedule here
    reproduces it exactly (asserted against the recorded length).
    """
    block = compilation.program.main.block(comp.label)
    machine = compilation.machine
    fp = compile_cache.machine_fingerprint(machine)

    def compute() -> Dict[str, int]:
        schedule = compile_cache.original_schedule(block, machine)
        assert schedule.length == comp.original_length, (
            f"block {comp.label!r}: rebuilt original schedule is "
            f"{schedule.length} cycles, compiler recorded {comp.original_length}"
        )
        return attribute_schedule(schedule)

    return compile_cache.cached(block, ("oattr", fp), compute)


def _shared_baseline_attribution(comp: BlockCompilation) -> Dict[str, int]:
    """Static attribution of the baseline machine's main schedule."""
    baseline = comp.baseline
    block = baseline.spec.original

    def compute():
        counts = attribute_schedule(baseline.schedule.schedule)
        assert sum(counts.values()) == baseline.main_length
        # The memo value pins the baseline object so the id in the key
        # stays valid for the entry's lifetime.
        return (baseline, counts)

    return compile_cache.cached(block, ("battr", id(baseline)), compute)[1]


def _shared_baseline_run(comp: BlockCompilation, ldpreds, pattern, machine):
    """Baseline recovery timing for one pattern (pure — no icache)."""
    baseline = comp.baseline
    block = baseline.spec.original
    fp = compile_cache.machine_fingerprint(machine)
    entry = compile_cache.cached(
        block,
        ("brun", id(baseline), fp, pattern),
        lambda: (
            baseline,
            simulate_baseline_block(
                baseline, dict(zip(ldpreds, pattern)), machine
            ),
        ),
    )
    return entry[1]


def _shared_squash_run(comp: BlockCompilation, ldpreds, pattern, machine):
    """Squash recovery timing for one pattern (memoised)."""
    schedule = comp.spec_schedule
    block = schedule.spec.original
    fp = compile_cache.machine_fingerprint(machine)
    entry = compile_cache.cached(
        block,
        ("srun", id(schedule), fp, pattern),
        lambda: (
            schedule,
            simulate_squash_block(
                schedule, dict(zip(ldpreds, pattern)), machine
            ),
        ),
    )
    return entry[1]


def _charge_scaled(stack: Dict[str, int], counts: Mapping[str, int], n: int) -> None:
    for cause, cycles in counts.items():
        stack[cause] = stack.get(cause, 0) + cycles * n


def _account_class_counts(
    res: ProgramSimResult,
    outcome: OutcomeClass,
    cycles: int,
    comp: BlockCompilation,
    n: int,
) -> None:
    res.cycles_by_class[outcome] = res.cycles_by_class.get(outcome, 0) + cycles * n
    res.instances_by_class[outcome] = res.instances_by_class.get(outcome, 0) + n
    res.original_cycles_by_class[outcome] = (
        res.original_cycles_by_class.get(outcome, 0) + comp.original_length * n
    )


def _fold_counts(
    compilation: ProgramCompilation,
    counts: SimCounts,
    result: ProgramSimResult,
    registry: MetricsRegistry,
    collect_cycles: bool,
    cycle_stacks: Dict[str, Dict[str, int]],
    predictor_label: str,
) -> None:
    """Deterministic accounting of a run from its sufficient statistics.

    Labels and patterns are folded in sorted order, each charged
    ``count`` times via multiplication, so every result container has a
    canonical layout independent of dynamic encounter order — the
    keystone of scalar/batched byte-parity.  Per-pattern block timings,
    baseline and squash recovery runs are computed once per (block,
    pattern) and shared process-wide through
    :mod:`repro.core.compile_cache`.
    """
    machine = compilation.machine
    res = result
    if registry.enabled:
        if counts.hits:
            registry.inc("predict.hit", counts.hits, label=predictor_label)
        if counts.misses:
            registry.inc("predict.miss", counts.misses, label=predictor_label)
        if counts.no_predictions:
            registry.inc(
                "predict.no_prediction",
                counts.no_predictions,
                label=predictor_label,
            )
    labels = sorted(
        set(counts.nonspec) | set(counts.gated) | set(counts.patterns)
    )
    for label in labels:
        comp = compilation.blocks[label]
        n_nonspec = counts.nonspec.get(label, 0)
        n_gated = counts.gated.get(label, 0)
        per_pattern = counts.patterns.get(label)
        n_spec = sum(per_pattern.values()) if per_pattern else 0
        total = n_nonspec + n_gated + n_spec
        res.dynamic_blocks += total
        res.cycles_nopred += comp.original_length * total
        res.gated_instances += n_gated
        plain = n_nonspec + n_gated
        if plain:
            res.cycles_proposed += comp.original_length * plain
            res.cycles_baseline += comp.original_length * plain
            res.cycles_squash += comp.original_length * plain
            _account_class_counts(
                res, OutcomeClass.NOT_SPECULATED, comp.original_length, comp, plain
            )
        if collect_cycles and total:
            orig = _shared_original_attribution(compilation, comp)
            _charge_scaled(cycle_stacks["nopred"], orig, total)
            if plain:
                _charge_scaled(cycle_stacks["proposed"], orig, plain)
                _charge_scaled(cycle_stacks["baseline"], orig, plain)
        if not per_pattern:
            continue
        ldpreds = comp.spec_schedule.spec.ldpred_ids
        for pattern in sorted(per_pattern):
            n = per_pattern[pattern]
            run = comp.run_for(pattern)
            if registry.enabled:
                registry.merge_snapshot(comp.metrics_for(pattern).scaled(n))
            res.cycles_proposed += run.effective_length * n
            res.predictions += run.predictions * n
            res.mispredictions += run.mispredictions * n
            res.stall_cycles += run.stall_cycles * n
            res.cc_executed += run.executed * n
            res.cc_flushed += run.flushed * n
            if collect_cycles:
                _charge_scaled(
                    cycle_stacks["proposed"], comp.cycles_for(pattern), n
                )
            outcome = classify_outcome(run.predictions, run.mispredictions)
            _account_class_counts(res, outcome, run.effective_length, comp, n)
            res.length_delta_histogram[
                comp.original_length - run.effective_length
            ] += n
            baseline_run = _shared_baseline_run(comp, ldpreds, pattern, machine)
            res.cycles_baseline += baseline_run.effective_length * n
            res.baseline_compensation_cycles += baseline_run.compensation_cycles * n
            res.baseline_branch_cycles += baseline_run.branch_cycles * n
            res.baseline_icache_cycles += baseline_run.icache_cycles * n
            if collect_cycles:
                stack = cycle_stacks["baseline"]
                _charge_scaled(stack, _shared_baseline_attribution(comp), n)
                for cause, cycles in (
                    ("reexec", baseline_run.compensation_cycles),
                    ("branch_penalty", baseline_run.branch_cycles),
                    ("icache_miss", baseline_run.icache_cycles),
                ):
                    if cycles:
                        stack[cause] = stack.get(cause, 0) + cycles * n
            squash_run = _shared_squash_run(comp, ldpreds, pattern, machine)
            res.cycles_squash += squash_run.effective_length * n
            if squash_run.squashed:
                res.squashed_instances += n


class _SimulationObserver:
    """Interpreter observer driving all three machine accountings."""

    def __init__(
        self,
        compilation: ProgramCompilation,
        predictor: ValuePredictor,
        result: ProgramSimResult,
        model_icache: bool,
        icache_config: Optional[ICacheConfig],
        table: Optional[ValuePredictionTable] = None,
        confidence: Optional[ConfidenceEstimator] = None,
        metrics: MetricsRegistry = NULL_METRICS,
        collect_cycles: bool = False,
        counts: Optional[SimCounts] = None,
    ):
        self.compilation = compilation
        self.predictor = predictor
        self.result = result
        # Counts mode (every non-icache run): the observer only records
        # sufficient statistics; _fold_counts does all accounting after
        # the run.  Icache modelling keeps the legacy per-instance path
        # because cache state depends on the dynamic fetch sequence.
        self.counts = counts
        self.machine = compilation.machine
        self.table = table
        self.confidence = confidence
        self.metrics = metrics
        self.collect_cycles = collect_cycles
        # Per-machine cause -> cycles accumulators, plus per-label memos
        # of the static schedule attributions charged once per instance.
        self.cycle_stacks: Dict[str, Dict[str, int]] = {
            "nopred": {},
            "proposed": {},
            "baseline": {},
        }
        self._original_attr: Dict[str, Dict[str, int]] = {}
        self._baseline_attr: Dict[str, Dict[str, int]] = {}
        self._predictor_label = (
            f"table:{predictor.name}" if table is not None else predictor.name
        )

        self._current: Optional[BlockCompilation] = None
        self._predicted_ids: frozenset = frozenset()
        self._outcomes: Dict[int, bool] = {}
        self._gated = False

        self.model_icache = model_icache
        if model_icache:
            config = icache_config or ICacheConfig()
            self.layout = CodeLayout(config)
            self.cache_proposed = InstructionCache(config)
            self.cache_baseline = InstructionCache(config)
            self._place_code()
        else:
            self.layout = None
            self.cache_proposed = None
            self.cache_baseline = None

    def _place_code(self) -> None:
        """Lay out main code, then the baseline's compensation blocks."""
        for label, comp in self.compilation.blocks.items():
            if comp.spec_schedule is not None:
                op_count = len(comp.spec_schedule.spec.operations)
            else:
                op_count = len(
                    self.compilation.program.main.block(label).operations
                )
            self.layout.place(f"main:{label}", op_count)
        for label, comp in self.compilation.blocks.items():
            if comp.baseline is None:
                continue
            for c in comp.baseline.compensation.values():
                if c.op_count:
                    self.layout.place(c.code_id, c.op_count)

    # -- observer protocol -------------------------------------------------

    def block_entered(self, block: BasicBlock) -> None:
        self._finish_instance()
        self._current = self.compilation.blocks.get(block.label)
        if self._current is not None and self._current.speculated:
            self._predicted_ids = frozenset(self._current.predicted_load_ids)
        else:
            self._predicted_ids = frozenset()
        self._outcomes = {}
        # Confidence gating decides at fetch time (before the block's
        # loads execute) whether this instance runs the speculative or
        # the plain version of the block.
        self._gated = bool(
            self.confidence is not None
            and self._predicted_ids
            and any(
                not self.confidence.confident(op_id)
                for op_id in self._predicted_ids
            )
        )

    def operation_executed(self, op: Operation, inputs, result) -> None:
        if op.op_id not in self._predicted_ids:
            return
        if self.table is not None:
            prediction = self.table.lookup(op.op_id)
        else:
            prediction = self.predictor.predict(op.op_id)
        correct = prediction is not None and _values_equal(prediction, result)
        self._outcomes[op.op_id] = correct
        if self.counts is not None:
            if correct:
                self.counts.hits += 1
            else:
                self.counts.misses += 1
            if prediction is None:
                self.counts.no_predictions += 1
        elif self.metrics.enabled:
            self.metrics.inc(
                "predict.hit" if correct else "predict.miss",
                label=self._predictor_label,
            )
            if prediction is None:
                self.metrics.inc(
                    "predict.no_prediction", label=self._predictor_label
                )
        if self.table is not None:
            self.table.train(op.op_id, result)
        else:
            self.predictor.update(op.op_id, result)
        if self.confidence is not None:
            self.confidence.record(op.op_id, correct)

    def finish(self) -> None:
        self._finish_instance()
        self._current = None

    # -- cycle accounting --------------------------------------------------

    def _charge(self, model: str, counts: Mapping[str, int]) -> None:
        stack = self.cycle_stacks[model]
        for cause, cycles in counts.items():
            stack[cause] = stack.get(cause, 0) + cycles

    def _charge_cause(self, model: str, cause: str, cycles: int) -> None:
        if self.collect_cycles and cycles:
            stack = self.cycle_stacks[model]
            stack[cause] = stack.get(cause, 0) + cycles

    def _original_attribution(self, comp: BlockCompilation) -> Dict[str, int]:
        """Static per-cause attribution of the block's original schedule.

        The compiler records only the original schedule *length*; list
        scheduling is deterministic, so rebuilding the schedule here
        reproduces it exactly (asserted against the recorded length).
        """
        cached = self._original_attr.get(comp.label)
        if cached is None:
            schedule = compile_cache.original_schedule(
                self.compilation.program.main.block(comp.label), self.machine
            )
            assert schedule.length == comp.original_length, (
                f"block {comp.label!r}: rebuilt original schedule is "
                f"{schedule.length} cycles, compiler recorded {comp.original_length}"
            )
            cached = attribute_schedule(schedule)
            self._original_attr[comp.label] = cached
        return cached

    def _baseline_attribution(self, comp: BlockCompilation) -> Dict[str, int]:
        """Static attribution of the baseline machine's main schedule."""
        cached = self._baseline_attr.get(comp.label)
        if cached is None:
            cached = attribute_schedule(comp.baseline.schedule.schedule)
            assert sum(cached.values()) == comp.baseline.main_length
            self._baseline_attr[comp.label] = cached
        return cached

    # -- accounting -------------------------------------------------------

    def _finish_instance(self) -> None:
        comp = self._current
        if comp is None:
            return
        if self.counts is not None:
            c = self.counts
            if not comp.speculated:
                c.nonspec[comp.label] = c.nonspec.get(comp.label, 0) + 1
            elif self._gated:
                c.gated[comp.label] = c.gated.get(comp.label, 0) + 1
            else:
                pattern = tuple(
                    self._outcomes.get(load_id, False)
                    for load_id in comp.predicted_load_ids
                )
                per = c.patterns.setdefault(comp.label, {})
                per[pattern] = per.get(pattern, 0) + 1
            return
        res = self.result
        res.dynamic_blocks += 1
        res.cycles_nopred += comp.original_length

        if not comp.speculated:
            res.cycles_proposed += comp.original_length
            res.cycles_baseline += comp.original_length
            res.cycles_squash += comp.original_length
            self._account_class(OutcomeClass.NOT_SPECULATED, comp.original_length, comp)
            if self.collect_cycles:
                counts = self._original_attribution(comp)
                self._charge("nopred", counts)
                self._charge("proposed", counts)
                self._charge("baseline", counts)
            if self.model_icache:
                penalty = self.layout.fetch(self.cache_proposed, f"main:{comp.label}")
                res.proposed_icache_cycles += penalty
                res.cycles_proposed += penalty
                # The no-prediction and squash machines fetch the same
                # block stream; charging them the proposed machine's
                # penalty keeps the speedup comparisons apples-to-apples.
                res.cycles_nopred += penalty
                res.cycles_squash += penalty
                self._charge_cause("proposed", "icache_miss", penalty)
                self._charge_cause("nopred", "icache_miss", penalty)
                penalty = self.layout.fetch(self.cache_baseline, f"main:{comp.label}")
                res.baseline_icache_cycles += penalty
                res.cycles_baseline += penalty
                self._charge_cause("baseline", "icache_miss", penalty)
            return

        if self._gated:
            # Low-confidence instance: the fetch unit selected the plain
            # (non-speculative) version of the block, so it costs the
            # original schedule on both speculating machines.
            res.gated_instances += 1
            res.cycles_proposed += comp.original_length
            res.cycles_baseline += comp.original_length
            res.cycles_squash += comp.original_length
            self._account_class(
                OutcomeClass.NOT_SPECULATED, comp.original_length, comp
            )
            if self.collect_cycles:
                counts = self._original_attribution(comp)
                self._charge("nopred", counts)
                self._charge("proposed", counts)
                self._charge("baseline", counts)
            if self.model_icache:
                penalty = self.layout.fetch(self.cache_proposed, f"main:{comp.label}")
                res.proposed_icache_cycles += penalty
                res.cycles_proposed += penalty
                res.cycles_nopred += penalty
                self._charge_cause("proposed", "icache_miss", penalty)
                self._charge_cause("nopred", "icache_miss", penalty)
                penalty = self.layout.fetch(self.cache_baseline, f"main:{comp.label}")
                res.baseline_icache_cycles += penalty
                res.cycles_baseline += penalty
                self._charge_cause("baseline", "icache_miss", penalty)
            return

        pattern = tuple(
            self._outcomes.get(load_id, False) for load_id in comp.predicted_load_ids
        )
        run = comp.run_for(pattern)
        if self.metrics.enabled:
            # One merge per dynamic instance: identical instances share
            # the memoised per-pattern snapshot, so counters sum exactly
            # as the instance-level stats below do.
            self.metrics.merge_snapshot(comp.metrics_for(pattern))
        res.cycles_proposed += run.effective_length
        res.predictions += run.predictions
        res.mispredictions += run.mispredictions
        res.stall_cycles += run.stall_cycles
        res.cc_executed += run.executed
        res.cc_flushed += run.flushed
        if self.collect_cycles:
            self._charge("nopred", self._original_attribution(comp))
            self._charge("proposed", comp.cycles_for(pattern))
        outcome = classify_outcome(run.predictions, run.mispredictions)
        self._account_class(outcome, run.effective_length, comp)
        res.length_delta_histogram[comp.original_length - run.effective_length] += 1

        ldpreds = comp.spec_schedule.spec.ldpred_ids
        baseline_run = simulate_baseline_block(
            comp.baseline,
            dict(zip(ldpreds, pattern)),
            self.machine,
            cache=self.cache_baseline,
            layout=self.layout,
        )
        res.cycles_baseline += baseline_run.effective_length
        res.baseline_compensation_cycles += baseline_run.compensation_cycles
        res.baseline_branch_cycles += baseline_run.branch_cycles
        res.baseline_icache_cycles += baseline_run.icache_cycles
        if self.collect_cycles:
            # Main speculative schedule plus the three serial overheads;
            # their sum is exactly baseline_run.effective_length.
            self._charge("baseline", self._baseline_attribution(comp))
            self._charge_cause(
                "baseline", "reexec", baseline_run.compensation_cycles
            )
            self._charge_cause(
                "baseline", "branch_penalty", baseline_run.branch_cycles
            )
            self._charge_cause(
                "baseline", "icache_miss", baseline_run.icache_cycles
            )

        squash_run = simulate_squash_block(
            comp.spec_schedule, dict(zip(ldpreds, pattern)), self.machine
        )
        res.cycles_squash += squash_run.effective_length
        if squash_run.squashed:
            res.squashed_instances += 1
        if self.model_icache:
            penalty = self.layout.fetch(self.cache_proposed, f"main:{comp.label}")
            res.proposed_icache_cycles += penalty
            res.cycles_proposed += penalty
            res.cycles_nopred += penalty
            # The squash machine fetches the same block stream (and
            # refetches on restart, which this approximation folds into
            # the same penalty).
            res.cycles_squash += penalty
            self._charge_cause("proposed", "icache_miss", penalty)
            self._charge_cause("nopred", "icache_miss", penalty)

    def _account_class(
        self, outcome: OutcomeClass, cycles: int, comp: BlockCompilation
    ) -> None:
        res = self.result
        res.cycles_by_class[outcome] = res.cycles_by_class.get(outcome, 0) + cycles
        res.instances_by_class[outcome] = res.instances_by_class.get(outcome, 0) + 1
        res.original_cycles_by_class[outcome] = (
            res.original_cycles_by_class.get(outcome, 0) + comp.original_length
        )


def simulate_program(
    compilation: ProgramCompilation,
    predictor: Optional[ValuePredictor] = None,
    model_icache: bool = False,
    icache_config: Optional[ICacheConfig] = None,
    max_operations: int = 5_000_000,
    table_capacity: Optional[int] = None,
    confidence: Optional[ConfidenceEstimator] = None,
    collect_metrics: bool = False,
    collect_cycles: bool = False,
    trace=None,
    batch=None,
) -> ProgramSimResult:
    """Execute the program once, timing all three machines.

    Args:
        compilation: output of :func:`repro.core.metrics.compile_program`.
        predictor: live hardware value predictor; ``None`` builds the
            machine spec's declared predictor (the paper's machines
            declare the stride+FCM hybrid, so the default is unchanged).
        model_icache: charge instruction-cache miss penalties (used by
            the baseline-comparison experiment; off for Tables 2-4, which
            the paper computes from schedule lengths alone).
        table_capacity: model a finite, direct-mapped Value Prediction
            Table of this many entries; ``None`` falls back to the
            machine spec's ``predictor.table_entries`` (itself ``None``
            — unbounded, the paper's profile-based setting — on the
            registry machines); conflicting static loads then steal each
            other's entries.
        confidence: optional saturating-counter confidence estimator;
            when a block's predicted loads are not all confident, the
            instance runs the plain (non-speculative) version of the
            block — the classic dual-version gating extension.
        collect_metrics: aggregate an observability snapshot (predictor
            hit/miss counters, merged per-block dual-engine metrics,
            icache counters) into ``result.metrics``.  Off by default;
            timing results are identical either way.
        collect_cycles: attribute every cycle of all three machines to
            one cause (see :mod:`repro.obs.cycles`) into
            ``result.cycle_stacks``; each stack is asserted to sum
            exactly to the matching ``cycles_*`` total.  Off by default;
            timing results are identical either way.
        trace: a :class:`~repro.trace.ValueTrace` captured from this
            compilation's program.  When given, the simulation observer
            is driven from the recorded value stream instead of a live
            interpretation — results are identical because the observer
            consumes only block entries and traced-op result values.
            The trace must cover every predicted load of the
            compilation; :class:`~repro.trace.TraceMismatch` is raised
            otherwise.
        batch: opt into the batched struct-of-arrays engine
            (:mod:`repro.batchsim`).  Pass a
            :class:`~repro.batchsim.context.BatchContext` to share trace
            decodes and predictor outcome columns across the points of a
            sweep, or ``True`` for the process-wide default context.
            The batched engine runs only when this simulation is on the
            common path (trace-driven, machine-spec predictor, unbounded
            table, no confidence gating, no icache) *and* NumPy is
            available with ``REPRO_NO_BATCH`` unset; anything else falls
            back to the scalar engine.  Results are byte-identical
            either way — both engines reduce the run to
            :class:`SimCounts` and share one accounting fold.
    """
    result = ProgramSimResult(
        program_name=compilation.program.name,
        machine_name=compilation.machine.name,
    )
    registry = MetricsRegistry() if collect_metrics else NULL_METRICS
    machine_predictor = getattr(compilation.machine, "predictor", None)
    if predictor is not None:
        base_predictor = predictor
    elif machine_predictor is not None:
        # The machine spec declares the hardware predictor; the registry
        # machines declare the paper's hybrid, so this default matches
        # the historical ``default_hybrid()``.
        base_predictor = machine_predictor.build()
    else:
        base_predictor = default_hybrid()
    if table_capacity is None and machine_predictor is not None:
        table_capacity = machine_predictor.table_entries
    table = (
        ValuePredictionTable(base_predictor, capacity=table_capacity)
        if table_capacity is not None
        else None
    )
    predictor_label = (
        f"table:{base_predictor.name}" if table is not None else base_predictor.name
    )
    if trace is not None:
        from repro.trace.format import TRACED_OPCODES, TraceMismatch

        # Static coverage check: replay only notifies traced ops, so
        # every load (or ALU op) the compilation predicts must be in the
        # traced set — otherwise its outcomes would silently default to
        # "mispredicted" instead of being scored against real values.
        function = compilation.program.main
        for label, comp in compilation.blocks.items():
            if not comp.speculated:
                continue
            traced_ids = {
                op.op_id
                for op in function.block(label).operations
                if op.opcode in TRACED_OPCODES
            }
            missing = set(comp.predicted_load_ids) - traced_ids
            if missing:
                raise TraceMismatch(
                    f"block {label!r} of {compilation.program.name!r} "
                    f"predicts untraced operation(s) {sorted(missing)}"
                )

    counts_mode = not model_icache
    cycle_stacks: Dict[str, Dict[str, int]] = {
        "nopred": {},
        "proposed": {},
        "baseline": {},
    }
    batched = False
    if batch is not None and counts_mode:
        from repro.batchsim.engine import batch_counts, unsupported_reason

        if (
            unsupported_reason(
                predictor=predictor,
                table=table,
                confidence=confidence,
                model_icache=model_icache,
                trace=trace,
            )
            is None
        ):
            from repro.batchsim.context import resolve_context

            sim_counts = batch_counts(
                compilation, trace, resolve_context(batch), max_operations
            )
            _fold_counts(
                compilation,
                sim_counts,
                result,
                registry,
                collect_cycles,
                cycle_stacks,
                predictor_label,
            )
            batched = True

    observer = None
    if not batched:
        sim_counts = SimCounts() if counts_mode else None
        observer = _SimulationObserver(
            compilation,
            base_predictor,
            result,
            model_icache=model_icache,
            icache_config=icache_config,
            table=table,
            confidence=confidence,
            metrics=registry,
            collect_cycles=collect_cycles,
            counts=sim_counts,
        )
        if trace is not None:
            from repro.trace.replay import replay_trace

            replay_trace(
                trace,
                compilation.program,
                observers=[observer],
                max_operations=max_operations,
            )
        else:
            Interpreter(max_operations=max_operations).run(
                compilation.program, observers=[observer]
            )
        observer.finish()
        if table is not None:
            result.table_tag_misses = table.tag_misses
        if counts_mode:
            _fold_counts(
                compilation,
                sim_counts,
                result,
                registry,
                collect_cycles,
                cycle_stacks,
                predictor_label,
            )
        else:
            cycle_stacks = observer.cycle_stacks
    if collect_cycles:
        totals = {
            "nopred": result.cycles_nopred,
            "proposed": result.cycles_proposed,
            "baseline": result.cycles_baseline,
        }
        for model, stack in cycle_stacks.items():
            # The hard program-level invariant: every simulated cycle of
            # every machine is attributed to exactly one cause.
            attributed = sum(stack.values())
            assert attributed == totals[model], (
                f"{result.program_name} on {result.machine_name}: "
                f"{model} cycle stack sums to {attributed}, "
                f"simulated {totals[model]} cycles"
            )
        result.cycle_stacks = {
            model: dict(sorted(stack.items()))
            for model, stack in cycle_stacks.items()
        }
    if registry.enabled:
        if result.cycle_stacks:
            for model, stack in result.cycle_stacks.items():
                for cause, cycles in stack.items():
                    registry.inc(
                        "sim.cycles", cycles, label=f"cause={cause},model={model}"
                    )
        registry.inc("sim.dynamic_blocks", result.dynamic_blocks)
        registry.inc("sim.gated_instances", result.gated_instances)
        if model_icache:
            registry.inc(
                "icache.access", observer.cache_proposed.accesses, label="proposed"
            )
            registry.inc(
                "icache.miss", observer.cache_proposed.misses, label="proposed"
            )
            registry.inc(
                "icache.access", observer.cache_baseline.accesses, label="baseline"
            )
            registry.inc(
                "icache.miss", observer.cache_baseline.misses, label="baseline"
            )
        result.metrics = registry.snapshot()
    return result
