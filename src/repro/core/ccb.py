"""The Compensation Code Buffer (paper section 2.3).

A FIFO of decoded speculated operations, inserted by the VLIW Engine in
issue order.  Each entry carries its operand *sources*: for each source
operand, where the Compensation Code Engine must take the value from —
shipped-along correct value, an ``LdPred`` prediction (verified/corrected
by the check), or the value of an earlier speculated operation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.ir.operation import Operation


class SourceKind(enum.Enum):
    """Where a CCB entry's operand value comes from."""

    SHIPPED = "shipped"      # correct value sent along with the decoded op
    PREDICTED = "predicted"  # an LdPred value, resolved by its check
    SPECULATED = "speculated"  # the value of an earlier speculated op


@dataclass(frozen=True)
class OperandSource:
    kind: SourceKind
    producer_id: Optional[int] = None  # ldpred id or speculated op id

    def __str__(self) -> str:
        if self.kind is SourceKind.SHIPPED:
            return "shipped"
        return f"{self.kind.value}(op{self.producer_id})"


@dataclass(frozen=True)
class CCBEntry:
    """One decoded speculated operation awaiting verification."""

    operation: Operation
    insert_time: int
    origins: FrozenSet[int]
    sources: Tuple[OperandSource, ...]
    sync_bit: int

    @property
    def op_id(self) -> int:
        return self.operation.op_id


class CompensationCodeBuffer:
    """FIFO buffer with a processing cursor.

    ``capacity`` bounds the number of unprocessed entries; inserting into
    a full buffer raises, which the VLIW engine surfaces as a structural
    stall (the headline experiments use an effectively unbounded buffer,
    matching the paper's simulation; the ablation benchmarks shrink it).
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError("CCB capacity must be positive or None")
        self.capacity = capacity
        self._entries: List[CCBEntry] = []
        self._cursor = 0
        self.high_water = 0

    def insert(self, entry: CCBEntry) -> None:
        if self.capacity is not None and self.pending > self.capacity - 1:
            raise CCBFull(
                f"CCB capacity {self.capacity} exceeded at t={entry.insert_time}"
            )
        if self._entries and entry.insert_time < self._entries[-1].insert_time:
            raise ValueError("CCB entries must be inserted in issue order")
        self._entries.append(entry)
        self.high_water = max(self.high_water, self.pending)

    @property
    def pending(self) -> int:
        """Entries inserted but not yet processed."""
        return len(self._entries) - self._cursor

    @property
    def head(self) -> Optional[CCBEntry]:
        if self._cursor < len(self._entries):
            return self._entries[self._cursor]
        return None

    def pop(self) -> CCBEntry:
        entry = self.head
        if entry is None:
            raise IndexError("CCB is empty")
        self._cursor += 1
        return entry

    @property
    def total_inserted(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return self.pending


class CCBFull(RuntimeError):
    """The Compensation Code Buffer ran out of entries."""
