"""Timing model of the primary VLIW Engine (paper section 2.2).

The engine issues statically scheduled VLIW instructions in order.  An
instruction whose non-speculative operations carry a wait mask stalls
until every masked Synchronization bit is clear; the stall shifts every
later instruction by the same amount (the machine is lock-step in-order).
While the engine is stalled, in-flight check operations still complete
and the Compensation Code Engine keeps running — that parallelism is the
paper's whole point.

Per-operation behaviour at issue:

* ``LdPred`` — sets its Synchronization bit and deposits the predicted
  value in the OVB (shipped to the Compensation Code Engine).
* check-prediction — on completion, verifies the prediction against the
  outcome map: clears the ``LdPred`` bit either way (the check computed
  the correct value); on success additionally clears the bits of
  speculated ops whose origin predictions have now all proved correct.
* speculative — sets its bit, deposits its value in the OVB and ships the
  decoded op into the Compensation Code Buffer.
* plain / non-speculative — ordinary execution (non-speculative issue
  gating happened at the instruction level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.machine.description import MachineDescription
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import (
    BitClearEvent,
    CheckEvent,
    LdPredEvent,
    SpeculateEvent,
    StallEvent,
    TraceSink,
)
from repro.core.cc_engine import CompensationEngine, SimulationDeadlock
from repro.core.ccb import CCBEntry
from repro.core.isa_ext import OpForm
from repro.core.ovb import OperandState, OperandValueBuffer
from repro.core.specsched import SpeculativeSchedule
from repro.core.sync_register import SyncRegisterState


@dataclass
class VLIWRunStats:
    """Counters from one block instance on the VLIW Engine."""

    completion: int = 0
    stall_cycles: int = 0
    instructions_issued: int = 0
    predictions: int = 0
    mispredictions: int = 0
    issue_times: Dict[int, int] = field(default_factory=dict)


class VLIWEngineSim:
    """Runs one speculative schedule against one prediction-outcome map."""

    def __init__(
        self,
        spec_schedule: SpeculativeSchedule,
        outcomes: Mapping[int, bool],
        ovb: OperandValueBuffer,
        sync: SyncRegisterState,
        cc: CompensationEngine,
        trace: Optional[TraceSink] = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        self.spec_schedule = spec_schedule
        self.machine: MachineDescription = spec_schedule.schedule.machine
        self.outcomes = dict(outcomes)
        self.ovb = ovb
        self.sync = sync
        self.cc = cc
        self._trace = trace
        self._metrics = metrics

        missing = set(spec_schedule.spec.ldpred_ids) - set(self.outcomes)
        if missing:
            raise ValueError(f"missing prediction outcomes for LdPred ops {sorted(missing)}")

        # Speculated ops grouped by origin, for check-side bit clearing.
        self._spec_by_origin: Dict[int, List[int]] = {}
        for op in spec_schedule.spec.operations:
            info = spec_schedule.spec.info[op.op_id]
            if info.form is OpForm.SPECULATIVE:
                for origin in info.origins:
                    self._spec_by_origin.setdefault(origin, []).append(op.op_id)

    def run(self) -> VLIWRunStats:
        stats = VLIWRunStats()
        spec = self.spec_schedule.spec
        shift = 0

        for instr in self.spec_schedule.schedule.instructions():
            tentative = instr.cycle + shift
            wait = self.spec_schedule.wait_bits_by_cycle.get(instr.cycle, frozenset())
            issue = tentative
            if wait:
                # Give the Compensation Code Engine a chance to clear
                # bits for recomputed values before we read them.
                self.cc.process_available()
                clear = self.sync.wait_until_clear(wait)
                if clear is None:
                    raise SimulationDeadlock(
                        f"block {spec.label!r}: instruction at cycle "
                        f"{instr.cycle} stalls forever on bits {sorted(wait)}"
                    )
                issue = max(tentative, clear)
            stall = issue - tentative
            if stall:
                self._metrics.inc("vliw.stalls")
                self._metrics.inc("vliw.stall_cycles", stall)
                if self._trace is not None:
                    self._trace.emit(
                        StallEvent(
                            cycle=issue, bits=tuple(sorted(wait)), stall=stall
                        )
                    )
            stats.stall_cycles += stall
            shift += stall
            stats.instructions_issued += 1
            self._metrics.inc("vliw.instructions")

            for slot in instr.slots:
                self._issue_op(slot.operation, issue, slot.latency, stats)
                stats.completion = max(stats.completion, issue + slot.latency)
                stats.issue_times[slot.operation.op_id] = issue

        return stats

    # -- per-operation behaviour ----------------------------------------------

    def _issue_op(self, op, issue: int, latency: int, stats: VLIWRunStats) -> None:
        spec = self.spec_schedule.spec
        info = spec.info[op.op_id]
        completion = issue + latency

        if info.form is OpForm.LDPRED:
            self.sync.set_bit(info.sync_bit, issue)
            self.ovb.record_predicted(op.op_id, available_at=completion)
            stats.predictions += 1
            self._metrics.inc("vliw.predictions")
            if self._trace is not None:
                self._trace.emit(
                    LdPredEvent(cycle=issue, op_id=op.op_id, sync_bit=info.sync_bit)
                )
        elif info.form is OpForm.CHECK:
            self._complete_check(op, info.verifies, completion, stats)
        elif info.form is OpForm.SPECULATIVE:
            self.sync.set_bit(info.sync_bit, issue)
            self.ovb.record_speculated(
                op.op_id, available_at=completion, origins=info.origins
            )
            self.cc.insert(
                CCBEntry(
                    operation=op,
                    insert_time=issue,
                    origins=info.origins,
                    sources=self.spec_schedule.cc_sources[op.op_id],
                    sync_bit=info.sync_bit,
                )
            )
            self._metrics.inc("vliw.speculated")
            if self._trace is not None:
                self._trace.emit(
                    SpeculateEvent(cycle=issue, op_id=op.op_id, sync_bit=info.sync_bit)
                )
        # PLAIN and NONSPEC ops need no special action at issue: wait-bit
        # gating already happened at the instruction level.

    def _complete_check(self, op, ldpred_id: int, completion: int, stats: VLIWRunStats) -> None:
        spec = self.spec_schedule.spec
        correct = self.outcomes[ldpred_id]
        ldpred_bit = spec.info[ldpred_id].sync_bit
        # The LdPred bit clears either way: the check computed the true
        # value and (on mismatch) updated the register file with it.
        self.sync.clear_bit(ldpred_bit, completion)
        self.ovb.apply_check(ldpred_id, completion, correct)
        if self._trace is not None:
            self._trace.emit(
                CheckEvent(
                    cycle=completion,
                    op_id=op.op_id,
                    ldpred_id=ldpred_id,
                    correct=correct,
                )
            )
        if not correct:
            stats.mispredictions += 1
            self._metrics.inc("vliw.mispredictions")
            return
        # On success the check clears the bits of dependent speculated
        # ops whose *every* origin is now verified correct.
        for spec_id in self._spec_by_origin.get(ldpred_id, ()):
            record = self.ovb.get(spec_id)
            if record is None or record.resolved:
                continue  # not issued yet, or already settled
            origin_records = [self.ovb.get(o) for o in record.origins]
            if any(r is None or not r.resolved for r in origin_records):
                continue
            if all(r.state is OperandState.C for r in origin_records):
                settle = max(r.resolved_at for r in origin_records)
                self.ovb.resolve_speculated_correct(spec_id, settle)
                self.sync.clear_bit(spec.info[spec_id].sync_bit, settle)
                if self._trace is not None:
                    self._trace.emit(
                        BitClearEvent(
                            cycle=settle,
                            op_id=spec_id,
                            sync_bit=spec.info[spec_id].sync_bit,
                        )
                    )
