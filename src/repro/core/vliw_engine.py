"""Timing model of the primary VLIW Engine (paper section 2.2).

The engine issues statically scheduled VLIW instructions in order.  An
instruction whose non-speculative operations carry a wait mask stalls
until every masked Synchronization bit is clear; the stall shifts every
later instruction by the same amount (the machine is lock-step in-order).
While the engine is stalled, in-flight check operations still complete
and the Compensation Code Engine keeps running — that parallelism is the
paper's whole point.

Per-operation behaviour at issue:

* ``LdPred`` — sets its Synchronization bit and deposits the predicted
  value in the OVB (shipped to the Compensation Code Engine).
* check-prediction — on completion, verifies the prediction against the
  outcome map: clears the ``LdPred`` bit either way (the check computed
  the correct value); on success additionally clears the bits of
  speculated ops whose origin predictions have now all proved correct.
* speculative — sets its bit, deposits its value in the OVB and ships the
  decoded op into the Compensation Code Buffer.
* plain / non-speculative — ordinary execution (non-speculative issue
  gating happened at the instruction level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional

from repro.machine.description import MachineDescription
from repro.obs.cycles import (
    BIND_RANK,
    SYNC_CLEAR_CAUSES,
    SYNC_SOURCE_RANK,
    CycleLedger,
    NULL_CYCLES,
    instruction_cause,
    operation_wait_cause,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import (
    BitClearEvent,
    BufferStallEvent,
    CheckEvent,
    LdPredEvent,
    SpeculateEvent,
    StallEvent,
    TraceSink,
)
from repro.core.cc_engine import CompensationEngine, SimulationDeadlock
from repro.core.ccb import CCBEntry, CCBFull
from repro.core.isa_ext import OpForm
from repro.core.ovb import OperandState, OperandValueBuffer
from repro.core.specsched import SpeculativeSchedule
from repro.core.sync_register import SyncRegisterState


@dataclass
class VLIWRunStats:
    """Counters from one block instance on the VLIW Engine."""

    completion: int = 0
    stall_cycles: int = 0
    instructions_issued: int = 0
    predictions: int = 0
    mispredictions: int = 0
    issue_times: Dict[int, int] = field(default_factory=dict)


class VLIWEngineSim:
    """Runs one speculative schedule against one prediction-outcome map."""

    def __init__(
        self,
        spec_schedule: SpeculativeSchedule,
        outcomes: Mapping[int, bool],
        ovb: OperandValueBuffer,
        sync: SyncRegisterState,
        cc: CompensationEngine,
        trace: Optional[TraceSink] = None,
        metrics: MetricsRegistry = NULL_METRICS,
        cycles: CycleLedger = NULL_CYCLES,
    ):
        self.spec_schedule = spec_schedule
        self.machine: MachineDescription = spec_schedule.schedule.machine
        self.outcomes = dict(outcomes)
        self.ovb = ovb
        self.sync = sync
        self.cc = cc
        self._trace = trace
        self._metrics = metrics
        self._cycles = cycles

        missing = set(spec_schedule.spec.ldpred_ids) - set(self.outcomes)
        if missing:
            raise ValueError(f"missing prediction outcomes for LdPred ops {sorted(missing)}")

        # Speculated ops grouped by origin, for check-side bit clearing.
        self._spec_by_origin: Dict[int, List[int]] = {}
        for op in spec_schedule.spec.operations:
            info = spec_schedule.spec.info[op.op_id]
            if info.form is OpForm.SPECULATIVE:
                for origin in info.origins:
                    self._spec_by_origin.setdefault(origin, []).append(op.op_id)

    def run(self) -> VLIWRunStats:
        stats = VLIWRunStats()
        spec = self.spec_schedule.spec
        shift = 0
        ledger = self._cycles
        ccb_capacity = self.cc.buffer.capacity

        # Cycle-accounting state (touched only when the ledger is live).
        # Static gaps mirror obs.cycles.attribute_schedule; the dynamic
        # completion tail is bound by the longest in-flight op at its
        # *shifted* completion.
        prev_static = -1
        static_best = (-1, -1, "dep_stall")  # (completion, rank, cause)
        last_issue = -1
        tail_best = (-1, -1, "dep_stall")

        for instr in self.spec_schedule.schedule.instructions():
            tentative = instr.cycle + shift
            wait = self.spec_schedule.wait_bits_by_cycle.get(instr.cycle, frozenset())
            issue = tentative
            if wait:
                # Give the Compensation Code Engine a chance to clear
                # bits for recomputed values before we read them.
                self.cc.process_available()
                clear = self.sync.wait_until_clear(wait)
                if clear is None:
                    raise SimulationDeadlock(
                        f"block {spec.label!r}: instruction at cycle "
                        f"{instr.cycle} stalls forever on bits {sorted(wait)}"
                    )
                issue = max(tentative, clear)
            sync_stall = issue - tentative
            if sync_stall:
                self._metrics.inc("vliw.stalls")
                self._metrics.inc("vliw.stall_cycles", sync_stall)
                if self._trace is not None:
                    self._trace.emit(
                        StallEvent(
                            cycle=issue, bits=tuple(sorted(wait)), stall=sync_stall
                        )
                    )
            ccb_stall = 0
            if ccb_capacity is not None:
                issue = self._admit_ccb(instr, issue, ccb_capacity)
                ccb_stall = issue - tentative - sync_stall
            stall = sync_stall + ccb_stall
            stats.stall_cycles += stall
            shift += stall
            stats.instructions_issued += 1
            self._metrics.inc("vliw.instructions")

            if ledger.enabled:
                static_gap = instr.cycle - prev_static - 1
                if static_gap > 0:
                    in_flight = static_best[0] > prev_static + 1
                    ledger.charge(
                        static_best[2] if in_flight else "dep_stall",
                        static_gap,
                        at=issue,
                    )
                if sync_stall:
                    ledger.charge(
                        self._sync_stall_cause(wait), sync_stall, at=issue
                    )
                if ccb_stall:
                    ledger.charge("ccb_pressure", ccb_stall, at=issue)
                ledger.charge(instruction_cause(instr), 1, at=issue)
                prev_static = instr.cycle
                last_issue = issue

            for slot in instr.slots:
                self._issue_op(slot.operation, issue, slot.latency, stats)
                stats.completion = max(stats.completion, issue + slot.latency)
                stats.issue_times[slot.operation.op_id] = issue
                if ledger.enabled:
                    cause = operation_wait_cause(slot.operation.opcode)
                    rank = BIND_RANK.get(cause, 0)
                    static_best = max(
                        static_best, (instr.cycle + slot.latency, rank, cause)
                    )
                    tail_best = max(tail_best, (issue + slot.latency, rank, cause))

        if ledger.enabled and stats.instructions_issued:
            # Completion tail: cycles after the last issue while the
            # longest in-flight operation drains.
            ledger.charge(
                tail_best[2],
                stats.completion - last_issue - 1,
                at=stats.completion,
            )
        return stats

    def _sync_stall_cause(self, wait) -> str:
        """Cause of a sync-bit stall: who cleared the *binding* bit.

        The binding bit is the one with the latest clear time (ties
        broken by clear source, ``execute`` > ``flush`` > ``check``):
        execute-cleared bits mean the stall waited on CC-engine
        re-execution (``reexec``), flush-cleared on recovery drain
        (``flush_recovery``), check-cleared on plain verification
        latency (``sync_stall``).
        """
        best = (-1, -1)
        cause = "sync_stall"
        for bit in wait:
            time = self.sync.clear_time(bit)
            if time is None:
                continue
            source = self.sync.clear_source(bit)
            key = (time, SYNC_SOURCE_RANK.get(source, 0))
            if key > best:
                best = key
                cause = SYNC_CLEAR_CAUSES.get(source, "sync_stall")
        return cause

    def _admit_ccb(self, instr, issue: int, capacity: int) -> int:
        """Delay ``issue`` until a bounded CCB can take this instruction's
        speculative ops; raise :class:`CCBFull` if no amount of waiting
        can ever make room (structural overflow).

        The timing model: an entry's slot frees when the Compensation
        Code Engine processes it (``stats.free_times``, monotone), so
        inserting the ``k``-th entry past capacity must wait for the
        ``k``-th free.
        """
        spec = self.spec_schedule.spec
        spec_ops = [
            slot.operation.op_id
            for slot in instr.slots
            if spec.info[slot.operation.op_id].form is OpForm.SPECULATIVE
        ]
        if not spec_ops:
            return issue
        self.cc.process_available()
        freed_needed = self.cc.buffer.total_inserted + len(spec_ops) - capacity
        if freed_needed <= 0:
            return issue
        free_times = self.cc.stats.free_times
        if freed_needed > len(free_times):
            if self._trace is not None:
                self._trace.emit(
                    BufferStallEvent(
                        cycle=issue, buffer="ccb", op_id=spec_ops[0], stall=0
                    )
                )
            raise CCBFull(
                f"block {spec.label!r}: CCB capacity {capacity} can never "
                f"admit op {spec_ops[0]} (nothing left to free); bound "
                "speculation or enlarge ccb_capacity"
            )
        ready = free_times[freed_needed - 1]
        if ready <= issue:
            return issue
        stall = ready - issue
        self._metrics.inc("vliw.ccb_stalls")
        self._metrics.inc("vliw.ccb_stall_cycles", stall)
        if self._trace is not None:
            self._trace.emit(
                BufferStallEvent(
                    cycle=ready, buffer="ccb", op_id=spec_ops[0], stall=stall
                )
            )
        return ready

    # -- per-operation behaviour ----------------------------------------------

    def _issue_op(self, op, issue: int, latency: int, stats: VLIWRunStats) -> None:
        spec = self.spec_schedule.spec
        info = spec.info[op.op_id]
        completion = issue + latency

        if info.form is OpForm.LDPRED:
            self.sync.set_bit(info.sync_bit, issue)
            self.ovb.record_predicted(op.op_id, available_at=completion)
            stats.predictions += 1
            self._metrics.inc("vliw.predictions")
            if self._trace is not None:
                self._trace.emit(
                    LdPredEvent(cycle=issue, op_id=op.op_id, sync_bit=info.sync_bit)
                )
        elif info.form is OpForm.CHECK:
            self._complete_check(op, info.verifies, completion, stats)
        elif info.form is OpForm.SPECULATIVE:
            self.sync.set_bit(info.sync_bit, issue)
            self.ovb.record_speculated(
                op.op_id, available_at=completion, origins=info.origins
            )
            self.cc.insert(
                CCBEntry(
                    operation=op,
                    insert_time=issue,
                    origins=info.origins,
                    sources=self.spec_schedule.cc_sources[op.op_id],
                    sync_bit=info.sync_bit,
                )
            )
            self._metrics.inc("vliw.speculated")
            if self._trace is not None:
                self._trace.emit(
                    SpeculateEvent(cycle=issue, op_id=op.op_id, sync_bit=info.sync_bit)
                )
        # PLAIN and NONSPEC ops need no special action at issue: wait-bit
        # gating already happened at the instruction level.

    def _complete_check(self, op, ldpred_id: int, completion: int, stats: VLIWRunStats) -> None:
        spec = self.spec_schedule.spec
        correct = self.outcomes[ldpred_id]
        ldpred_bit = spec.info[ldpred_id].sync_bit
        # The LdPred bit clears either way: the check computed the true
        # value and (on mismatch) updated the register file with it.
        self.sync.clear_bit(ldpred_bit, completion, source="check")
        self.ovb.apply_check(ldpred_id, completion, correct)
        if self._trace is not None:
            self._trace.emit(
                CheckEvent(
                    cycle=completion,
                    op_id=op.op_id,
                    ldpred_id=ldpred_id,
                    correct=correct,
                )
            )
        if not correct:
            stats.mispredictions += 1
            self._metrics.inc("vliw.mispredictions")
            return
        # On success the check clears the bits of dependent speculated
        # ops whose *every* origin is now verified correct.
        for spec_id in self._spec_by_origin.get(ldpred_id, ()):
            record = self.ovb.get(spec_id)
            if record is None or record.resolved:
                continue  # not issued yet, or already settled
            origin_records = [self.ovb.get(o) for o in record.origins]
            if any(r is None or not r.resolved for r in origin_records):
                continue
            if all(r.state is OperandState.C for r in origin_records):
                settle = max(r.resolved_at for r in origin_records)
                self.ovb.resolve_speculated_correct(spec_id, settle)
                self.sync.clear_bit(
                    spec.info[spec_id].sync_bit, settle, source="check"
                )
                if self._trace is not None:
                    self._trace.emit(
                        BitClearEvent(
                            cycle=settle,
                            op_id=spec_id,
                            sync_bit=spec.info[spec_id].sync_bit,
                        )
                    )
