"""Per-block compilation products and outcome classification.

:class:`ProgramCompilation` holds the full compiler output for one
program on one machine — per block: original schedule length,
speculation transform (where profitable), speculative schedule, and the
statically-recovered baseline version.  It is what both the static
experiments (Tables 3/4) and the dynamic simulation consume.  The
pipeline that builds it lives in :mod:`repro.compiler`;
:func:`compile_program` here is a compatibility shim over the standard
pass list.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.program import Program
from repro.machine.description import MachineDescription
from repro.obs.metrics import MetricsSnapshot
from repro.profiling.profile_run import ProfileData
from repro.core.baseline import BaselineBlock
from repro.core.machine_sim import BlockRun
from repro.core.specsched import SpeculativeSchedule
from repro.core.speculation import SpeculationConfig


class OutcomeClass(enum.Enum):
    """Classification of one dynamic block instance (paper Table 2)."""

    NOT_SPECULATED = "not-speculated"
    ALL_CORRECT = "all-correct"
    ALL_INCORRECT = "all-incorrect"
    MIXED = "mixed"


def classify_outcome(predictions: int, mispredictions: int) -> OutcomeClass:
    if predictions < 0 or mispredictions < 0:
        raise ValueError(
            f"negative prediction counts: predictions={predictions}, "
            f"mispredictions={mispredictions}"
        )
    if mispredictions > predictions:
        raise ValueError(
            f"mispredictions ({mispredictions}) exceed predictions ({predictions})"
        )
    if predictions == 0:
        return OutcomeClass.NOT_SPECULATED
    if mispredictions == 0:
        return OutcomeClass.ALL_CORRECT
    if mispredictions == predictions:
        return OutcomeClass.ALL_INCORRECT
    return OutcomeClass.MIXED


@dataclass
class BlockCompilation:
    """All compiler products for one basic block."""

    label: str
    original_length: int
    spec_schedule: Optional[SpeculativeSchedule] = None
    baseline: Optional[BaselineBlock] = None
    _pattern_cache: Dict[Tuple[bool, ...], BlockRun] = field(default_factory=dict)
    _metrics_cache: Dict[Tuple[bool, ...], MetricsSnapshot] = field(
        default_factory=dict
    )
    _cycles_cache: Dict[Tuple[bool, ...], Dict[str, int]] = field(
        default_factory=dict
    )

    def __getstate__(self) -> Dict:
        # The pattern caches are pure memos of simulate_block results;
        # they are dropped on pickling so a serialised compilation is
        # canonical (independent of which patterns happened to be timed
        # first) and the runner's on-disk artifacts stay small.  They are
        # rebuilt on demand after unpickling.
        state = self.__dict__.copy()
        state["_pattern_cache"] = {}
        state["_metrics_cache"] = {}
        state["_cycles_cache"] = {}
        return state

    @property
    def speculated(self) -> bool:
        return self.spec_schedule is not None

    @property
    def predicted_load_ids(self) -> Tuple[int, ...]:
        """Original op ids of the predicted loads, in LdPred order.

        These are the keys under which the loads were value-profiled and
        under which the run-time value predictor is trained.
        """
        if self.spec_schedule is None:
            return ()
        spec = self.spec_schedule.spec
        return tuple(spec.predicted_load_of[l] for l in spec.ldpred_ids)

    def run_for(self, pattern: Tuple[bool, ...]) -> BlockRun:
        """Dual-engine timing for one correctness pattern (memoised)."""
        if self.spec_schedule is None:
            raise RuntimeError(f"block {self.label!r} was not speculated")
        cached = self._pattern_cache.get(pattern)
        if cached is None:
            ldpreds = self.spec_schedule.spec.ldpred_ids
            if len(pattern) != len(ldpreds):
                raise ValueError(
                    f"pattern of length {len(pattern)} for {len(ldpreds)} predictions"
                )
            # Shared process-wide per (spec schedule, pattern): sweep
            # points compiled from the same transform read one memo (the
            # speculation pass's validation sweep pre-seeds it).
            from repro.core import compile_cache

            cached = compile_cache.pattern_run(self.spec_schedule, pattern)
            self._pattern_cache[pattern] = cached
        return cached

    def best_case(self) -> BlockRun:
        n = len(self.predicted_load_ids)
        return self.run_for((True,) * n)

    def worst_case(self) -> BlockRun:
        n = len(self.predicted_load_ids)
        return self.run_for((False,) * n)

    def metrics_for(self, pattern: Tuple[bool, ...]) -> MetricsSnapshot:
        """Dual-engine metrics for one correctness pattern (memoised).

        Metrics are collected lazily, per distinct pattern, so bulk
        simulation without observability pays nothing; a metrics-enabled
        run of the same pattern is deterministic, so the timing result
        doubles as a ``run_for`` memo entry.
        """
        if self.spec_schedule is None:
            raise RuntimeError(f"block {self.label!r} was not speculated")
        cached = self._metrics_cache.get(pattern)
        if cached is None:
            ldpreds = self.spec_schedule.spec.ldpred_ids
            if len(pattern) != len(ldpreds):
                raise ValueError(
                    f"pattern of length {len(pattern)} for {len(ldpreds)} predictions"
                )
            from repro.core import compile_cache

            run, cached = compile_cache.pattern_metrics(self.spec_schedule, pattern)
            self._metrics_cache[pattern] = cached
            self._pattern_cache.setdefault(pattern, run)
        return cached

    def cycles_for(self, pattern: Tuple[bool, ...]) -> Dict[str, int]:
        """Per-cause cycle stack for one correctness pattern (memoised).

        Like :meth:`metrics_for`, attribution is collected lazily per
        distinct pattern; the stack sums to the pattern's
        ``effective_length``.
        """
        if self.spec_schedule is None:
            raise RuntimeError(f"block {self.label!r} was not speculated")
        # setdefault keeps compilations unpickled from caches written by
        # older code (whose __dict__ lacks this memo) working.
        cache = self.__dict__.setdefault("_cycles_cache", {})
        cached = cache.get(pattern)
        if cached is None:
            ldpreds = self.spec_schedule.spec.ldpred_ids
            if len(pattern) != len(ldpreds):
                raise ValueError(
                    f"pattern of length {len(pattern)} for {len(ldpreds)} predictions"
                )
            from repro.core import compile_cache

            run, cached = compile_cache.pattern_cycles(self.spec_schedule, pattern)
            cache[pattern] = cached
            self._pattern_cache.setdefault(pattern, run)
        return cached


@dataclass
class ProgramCompilation:
    """Compiler output for a whole program on one machine."""

    program: Program
    machine: MachineDescription
    config: SpeculationConfig
    profile: ProfileData
    blocks: Dict[str, BlockCompilation]

    @property
    def speculated_labels(self) -> List[str]:
        return [label for label, b in self.blocks.items() if b.speculated]

    def block(self, label: str) -> BlockCompilation:
        return self.blocks[label]

    # -- static, frequency-weighted aggregates (Tables 3 and 4) ----------

    def weighted_length_fraction(self, best: bool = True) -> float:
        """Effective/original schedule-length ratio over speculated blocks,
        weighted by profiled execution frequency.

        ``best=True`` assumes every prediction correct; ``best=False``
        assumes every prediction incorrect — the paper's two columns.
        """
        num = 0.0
        den = 0.0
        for label, comp in self.blocks.items():
            if not comp.speculated:
                continue
            weight = self.profile.blocks.count(label)
            if weight == 0:
                continue
            run = comp.best_case() if best else comp.worst_case()
            num += weight * run.effective_length
            den += weight * comp.original_length
        return num / den if den else 1.0

    def metrics_snapshot(self, best: bool = True) -> MetricsSnapshot:
        """Static, frequency-weighted metrics over speculated blocks.

        Each block's per-pattern metrics (all predictions correct for
        ``best=True``, all incorrect otherwise) are scaled by its
        profiled execution count and merged — the observability analogue
        of :meth:`weighted_length_fraction`.  The dynamic simulation
        (:func:`repro.core.program_sim.simulate_program` with
        ``collect_metrics=True``) aggregates the same per-block
        snapshots under real predictor outcomes instead.
        """
        total = MetricsSnapshot.empty()
        for label, comp in self.blocks.items():
            if not comp.speculated:
                continue
            weight = self.profile.blocks.count(label)
            if weight == 0:
                continue
            pattern = (best,) * len(comp.predicted_load_ids)
            total = total.merged(comp.metrics_for(pattern).scaled(weight))
        return total


def compile_program(
    program: Program,
    machine: MachineDescription,
    profile: ProfileData,
    config: Optional[SpeculationConfig] = None,
) -> ProgramCompilation:
    """Run the full block-level compilation pipeline over ``program``.

    Kept as a compatibility shim: the pipeline itself lives in
    :mod:`repro.compiler`, whose standard pass list (liveness, original
    scheduling, speculation, speculative scheduling, baseline) produces
    the identical :class:`ProgramCompilation`.  Callers wanting a
    different pass ordering, per-pass metrics or inter-pass verification
    control should use :class:`repro.compiler.PassManager` directly.
    """
    from repro.compiler import PassManager

    return PassManager().compile(program, machine, profile, spec_config=config)
