"""The Compensation Code Engine (paper section 2.3).

A simple in-order, single-issue pipeline that consumes the Compensation
Code Buffer front to back.  For each entry it waits until every
prediction related to the entry's operands is verified, then either

* **flushes** the entry (one pipeline slot) when every operand proved
  correct — the VLIW Engine already produced the right value; or
* **re-executes** the operation with correct operand values, writes the
  result back (to the OVB for later compensation ops and to the VLIW
  register file), and clears the operation's Synchronization bit.

The engine is a *timing* model: values themselves are tracked by the
architectural interpreter; here only availability times matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.ir.operation import Operation
from repro.machine.description import MachineDescription
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import ExecuteEvent, FlushEvent, TraceSink
from repro.core.ccb import CCBEntry, CompensationCodeBuffer, OperandSource, SourceKind
from repro.core.ovb import OperandState, OperandValueBuffer
from repro.core.sync_register import SyncRegisterState


@dataclass
class CCEngineStats:
    """Counters of one block simulation's Compensation Code Engine."""

    flushed: int = 0
    executed: int = 0
    busy_cycles: int = 0
    last_exec_completion: int = 0
    exec_completions: List[int] = field(default_factory=list)
    #: (slot cycle, "flush"|"execute", op id, completion cycle)
    events: List[Tuple[int, str, int, int]] = field(default_factory=list)
    #: Cycle each processed entry's CCB slot freed (monotone ascending,
    #: one entry per flush/execute); the VLIW engine reads this to model
    #: issue stalls against a bounded CCB.
    free_times: List[int] = field(default_factory=list)


class CompensationEngine:
    """In-order processor of the Compensation Code Buffer."""

    def __init__(
        self,
        machine: MachineDescription,
        ovb: OperandValueBuffer,
        sync: SyncRegisterState,
        buffer: Optional[CompensationCodeBuffer] = None,
        trace: Optional[TraceSink] = None,
        metrics: MetricsRegistry = NULL_METRICS,
    ):
        self.machine = machine
        self.ovb = ovb
        self.sync = sync
        self.buffer = buffer if buffer is not None else CompensationCodeBuffer()
        self.stats = CCEngineStats()
        self._free_time = 0
        self._trace = trace
        self._metrics = metrics

    # -- VLIW-engine interface ------------------------------------------------

    def insert(self, entry: CCBEntry) -> None:
        """Buffer a decoded speculated operation (sent at VLIW issue)."""
        self.buffer.insert(entry)
        self._metrics.observe("cce.ccb_occupancy", self.buffer.pending)

    def process_available(self) -> None:
        """Advance the pipeline as far as verification outcomes allow.

        The CCB is a FIFO: an entry whose origin predictions are not all
        verified yet blocks everything behind it.
        """
        while True:
            entry = self.buffer.head
            if entry is None:
                return
            origin_records = [self.ovb.record(o) for o in entry.origins]
            if any(not r.resolved for r in origin_records):
                return  # head must wait for more check outcomes
            self._process(entry, origin_records)
            self.buffer.pop()

    # -- internals --------------------------------------------------------

    def _process(self, entry: CCBEntry, origin_records) -> None:
        decide_time = max(r.resolved_at for r in origin_records)
        record = self.ovb.record(entry.op_id)

        if all(r.state is OperandState.C for r in origin_records):
            # Correctly speculated: flush (still costs a pipeline slot,
            # which is why recovery in Figure 3(c) starts only after the
            # correctly-speculated ops drain).
            start = max(self._free_time, entry.insert_time + 1, decide_time)
            self._free_time = start + 1
            self.stats.flushed += 1
            self.stats.busy_cycles += 1
            self._metrics.inc("cce.flush")
            self._metrics.inc("cce.busy_cycles")
            if record.state is not OperandState.C:
                self.ovb.resolve_speculated_correct(entry.op_id, decide_time)
            # The check op already cleared the bit at decide_time; the
            # call is idempotent and keeps the earliest clear time.
            self.sync.clear_bit(entry.sync_bit, decide_time, source="flush")
            self.stats.free_times.append(start + 1)
            self.stats.events.append((start, "flush", entry.op_id, start + 1))
            if self._trace is not None:
                self._trace.emit(
                    FlushEvent(cycle=start, op_id=entry.op_id, completion=start + 1)
                )
            return

        # Some origin was mispredicted: re-execute with correct operands.
        if record.state is not OperandState.R:
            self.ovb.mark_needs_recompute(entry.op_id, decide_time)
        operand_ready = entry.insert_time
        for source in entry.sources:
            operand_ready = max(operand_ready, self._source_ready(entry, source))
        start = max(
            self._free_time, entry.insert_time + 1, decide_time, operand_ready
        )
        latency = self.machine.latency(entry.operation.opcode)
        completion = start + latency
        self._free_time = start + 1  # pipelined single issue
        self.stats.executed += 1
        self.stats.busy_cycles += latency
        self._metrics.inc("cce.reexec")
        self._metrics.inc("cce.busy_cycles", latency)
        self.stats.last_exec_completion = max(
            self.stats.last_exec_completion, completion
        )
        self.stats.exec_completions.append(completion)
        self.ovb.record_recomputed(entry.op_id, completion)
        self.sync.clear_bit(entry.sync_bit, completion, source="execute")
        self.stats.free_times.append(start + 1)
        self.stats.events.append((start, "execute", entry.op_id, completion))
        if self._trace is not None:
            self._trace.emit(
                ExecuteEvent(cycle=start, op_id=entry.op_id, completion=completion)
            )

    def _source_ready(self, entry: CCBEntry, source: OperandSource) -> int:
        if source.kind is SourceKind.SHIPPED:
            return entry.insert_time
        record = self.ovb.record(source.producer_id)
        if source.kind is SourceKind.PREDICTED:
            # The check computed the correct value whether or not the
            # prediction was right.
            if record.correct_value_at is None:
                raise SimulationDeadlock(
                    f"op{entry.op_id}: predicted operand op{source.producer_id} "
                    "unresolved at execution time"
                )
            return record.correct_value_at
        # SPECULATED: an earlier CCB entry.  If it was correct its value
        # shipped with this op; if recomputed, wait for the CC result.
        if record.state is OperandState.C:
            return record.available_at
        if record.correct_value_at is None:
            raise SimulationDeadlock(
                f"op{entry.op_id}: speculated operand op{source.producer_id} "
                "not recomputed yet (FIFO order violated?)"
            )
        return record.correct_value_at

    def drain(self) -> None:
        """Process everything left; all checks must have completed."""
        self.process_available()
        if self.buffer.head is not None:
            blocked = self.buffer.head
            raise SimulationDeadlock(
                f"CCB head op{blocked.op_id} blocked after VLIW completion; "
                f"origins {sorted(blocked.origins)} unresolved"
            )


class SimulationDeadlock(RuntimeError):
    """The two engines reached a state with no forward progress."""
