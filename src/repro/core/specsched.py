"""Scheduling of speculation-transformed blocks.

The transformed dependence graph goes through the *same* list scheduler
as ordinary code; this module adds the two pieces of static information
the run-time engines need beyond issue cycles:

* per-VLIW-instruction **wait masks** — the union of Synchronization-
  register bits the non-speculative operations of that instruction wait
  on (the paper encodes these with the instruction word);
* per-speculated-op **operand sources** for the Compensation Code Buffer
  — whether each operand value arrives shipped-along, from an ``LdPred``
  prediction, or from an earlier speculated operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.ir.operation import Imm, Operation, Reg
from repro.machine.description import MachineDescription
from repro.sched.list_scheduler import ListScheduler
from repro.sched.schedule import Schedule
from repro.core.ccb import OperandSource, SourceKind
from repro.core.isa_ext import OpForm, SpeculativeBlock


@dataclass
class SpeculativeSchedule:
    """A scheduled speculative block plus its run-time annotations."""

    spec: SpeculativeBlock
    schedule: Schedule
    original_length: int
    wait_bits_by_cycle: Dict[int, FrozenSet[int]]
    cc_sources: Dict[int, Tuple[OperandSource, ...]]

    @property
    def label(self) -> str:
        return self.spec.label

    @property
    def length(self) -> int:
        """Best-case (all predictions correct) schedule length."""
        return self.schedule.length

    @property
    def improvement(self) -> int:
        """Cycles saved over the unspeculated schedule in the best case."""
        return self.original_length - self.length

    def __repr__(self) -> str:
        return (
            f"<SpeculativeSchedule {self.label}: {self.original_length} -> "
            f"{self.length} cycles, {self.spec.num_predictions} predictions>"
        )


def compute_cc_sources(
    spec: SpeculativeBlock,
) -> Dict[int, Tuple[OperandSource, ...]]:
    """Operand sources for each speculated op, from static def-use chains."""
    sources: Dict[int, Tuple[OperandSource, ...]] = {}
    last_def: Dict[Reg, Operation] = {}
    for op in spec.operations:
        form = spec.info[op.op_id].form
        if form is OpForm.SPECULATIVE:
            row = []
            for operand in op.srcs:
                if isinstance(operand, Imm):
                    row.append(OperandSource(SourceKind.SHIPPED))
                    continue
                producer = last_def.get(operand)
                if producer is None:
                    row.append(OperandSource(SourceKind.SHIPPED))
                    continue
                producer_form = spec.info[producer.op_id].form
                if producer_form is OpForm.LDPRED:
                    row.append(
                        OperandSource(SourceKind.PREDICTED, producer.op_id)
                    )
                elif producer_form is OpForm.CHECK:
                    # A consumer placed after the check in program order
                    # still consumed the *prediction* at run time; the
                    # value record lives under the LdPred's id and
                    # resolves at check completion.
                    row.append(
                        OperandSource(
                            SourceKind.PREDICTED,
                            spec.info[producer.op_id].verifies,
                        )
                    )
                elif producer_form is OpForm.SPECULATIVE:
                    row.append(
                        OperandSource(SourceKind.SPECULATED, producer.op_id)
                    )
                else:
                    row.append(OperandSource(SourceKind.SHIPPED))
            sources[op.op_id] = tuple(row)
        for reg in op.defs():
            last_def[reg] = op
    return sources


def schedule_speculative(
    spec: SpeculativeBlock,
    machine: MachineDescription,
    original_length: Optional[int] = None,
    priority: str = "height",
    analysis=None,
) -> SpeculativeSchedule:
    """List-schedule a transformed block and attach run-time annotations.

    ``analysis`` optionally supplies a precomputed critical-path
    analysis of ``spec.graph`` (see ``ListScheduler.schedule_graph``).
    """
    scheduler = ListScheduler(machine, priority=priority)
    if original_length is None:
        original_length = scheduler.schedule_block(spec.original).length
    schedule = scheduler.schedule_graph(spec.label, spec.graph, analysis=analysis)

    wait_bits: Dict[int, set] = {}
    for placed in schedule.operations:
        info = spec.info[placed.operation.op_id]
        # Non-speculative ops wait for verified operands; checks with
        # tainted address chains wait for verified addresses.
        if info.form in (OpForm.NONSPEC, OpForm.CHECK) and info.wait_bits:
            wait_bits.setdefault(placed.cycle, set()).update(info.wait_bits)

    return SpeculativeSchedule(
        spec=spec,
        schedule=schedule,
        original_length=original_length,
        wait_bits_by_cycle={c: frozenset(b) for c, b in wait_bits.items()},
        cc_sources=compute_cc_sources(spec),
    )
