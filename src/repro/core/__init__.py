"""The paper's contribution: value speculation for VLIW machines with a
parallel Compensation Code Engine.

Compiler side:

* :func:`speculate_block` / :func:`transform_block` — the speculation
  pass (ISA rewriting, Synchronization-bit assignment).
* :func:`schedule_speculative` — list scheduling of transformed blocks
  plus wait-mask/CCB-source annotation.
* :func:`compile_program` — whole-program pipeline.

Architecture side:

* :func:`simulate_block` — dual-engine timing of one block instance.
* :func:`simulate_program` — whole-program dynamic simulation with a
  live value predictor, timing the proposed machine, the no-prediction
  machine and the statically-recovered baseline of reference [4].
"""

from repro.core.baseline import (
    BaselineBlock,
    BaselineRun,
    CompensationBlock,
    build_baseline_block,
    simulate_baseline_block,
)
from repro.core.cc_engine import CCEngineStats, CompensationEngine, SimulationDeadlock
from repro.core.ccb import CCBEntry, CCBFull, CompensationCodeBuffer, OperandSource, SourceKind
from repro.core.icache import CodeLayout, ICacheConfig, InstructionCache
from repro.core.isa_ext import OpForm, SpecOpInfo, SpeculativeBlock
from repro.core.machine_sim import (
    BlockRun,
    simulate_all_outcomes,
    simulate_best_case,
    simulate_block,
    simulate_worst_case,
)
from repro.core.metrics import (
    BlockCompilation,
    OutcomeClass,
    ProgramCompilation,
    classify_outcome,
    compile_program,
)
from repro.core.ovb import OperandKind, OperandState, OperandValueBuffer, ValueRecord
from repro.core.program_sim import ProgramSimResult, simulate_program
from repro.core.specsched import SpeculativeSchedule, compute_cc_sources, schedule_speculative
from repro.core.timeline import render_timeline
from repro.core.speculation import (
    SpeculationConfig,
    candidate_loads,
    speculate_block,
    transform_block,
)
from repro.core.sync_register import (
    SyncBitAllocator,
    SyncRegisterOverflow,
    SyncRegisterState,
)
from repro.core.vliw_engine import VLIWEngineSim, VLIWRunStats

__all__ = [
    "BaselineBlock",
    "BaselineRun",
    "BlockCompilation",
    "BlockRun",
    "CCBEntry",
    "CCBFull",
    "CCEngineStats",
    "CodeLayout",
    "CompensationBlock",
    "CompensationCodeBuffer",
    "CompensationEngine",
    "ICacheConfig",
    "InstructionCache",
    "OpForm",
    "OperandKind",
    "OperandSource",
    "OperandState",
    "OperandValueBuffer",
    "OutcomeClass",
    "ProgramCompilation",
    "ProgramSimResult",
    "SimulationDeadlock",
    "SourceKind",
    "SpecOpInfo",
    "SpeculationConfig",
    "SpeculativeBlock",
    "SpeculativeSchedule",
    "SyncBitAllocator",
    "SyncRegisterOverflow",
    "SyncRegisterState",
    "VLIWEngineSim",
    "VLIWRunStats",
    "ValueRecord",
    "build_baseline_block",
    "candidate_loads",
    "classify_outcome",
    "compile_program",
    "compute_cc_sources",
    "schedule_speculative",
    "simulate_all_outcomes",
    "simulate_baseline_block",
    "simulate_best_case",
    "simulate_block",
    "simulate_program",
    "render_timeline",
    "simulate_worst_case",
    "speculate_block",
    "transform_block",
]
