"""Dual-engine block simulation: VLIW Engine + Compensation Code Engine.

:func:`simulate_block` runs one dynamic instance of a speculative block
under a given map of prediction outcomes and returns the *effective
schedule length*: the cycle at which both the VLIW instructions and every
required recomputation have completed.  In the all-correct case the
Compensation Code Engine only flushes, so the effective length equals the
static speculative schedule length; with mispredictions the recovery runs
in parallel and only extends the block when a non-speculative consumer
(or a recomputation tail) outlasts the VLIW stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.cycles import CycleLedger, NULL_CYCLES
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.trace import TraceEvent, TraceSink
from repro.core.cc_engine import CCEngineStats, CompensationEngine
from repro.core.ccb import CompensationCodeBuffer
from repro.core.ovb import OperandValueBuffer
from repro.core.specsched import SpeculativeSchedule
from repro.core.sync_register import SyncRegisterState
from repro.core.vliw_engine import VLIWEngineSim, VLIWRunStats


@dataclass(frozen=True)
class BlockRun:
    """Result of simulating one dynamic block instance."""

    label: str
    effective_length: int
    vliw_length: int
    cc_tail: int
    stall_cycles: int
    predictions: int
    mispredictions: int
    flushed: int
    executed: int
    #: Typed structured trace events (see :mod:`repro.obs.trace`), sorted
    #: by cycle; populated when collect_trace is set.
    trace: Tuple[TraceEvent, ...] = ()
    #: (op id, issue cycle) pairs; populated when collect_trace is set.
    issue_times: Tuple[Tuple[int, int], ...] = ()
    #: (slot cycle, "flush"|"execute", op id, completion) CCE activity;
    #: populated when collect_trace is set.
    cc_events: Tuple[Tuple[int, str, int, int], ...] = ()
    #: Per-cause cycle attribution, sorted by cause; populated when
    #: collect_cycles is set.  Sums exactly to ``effective_length``.
    cycle_stack: Tuple[Tuple[str, int], ...] = ()
    #: (cycle, cause, cycles) charge events for Perfetto counter tracks;
    #: populated when both collect_cycles and collect_trace are set.
    cycle_events: Tuple[Tuple[int, str, int], ...] = ()

    @property
    def all_correct(self) -> bool:
        return self.predictions > 0 and self.mispredictions == 0

    @property
    def all_incorrect(self) -> bool:
        return self.predictions > 0 and self.mispredictions == self.predictions

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.effective_length} cycles "
            f"({self.mispredictions}/{self.predictions} mispredicted, "
            f"{self.stall_cycles} stall, CC {self.executed} exec/{self.flushed} flush)"
        )


def simulate_block(
    spec_schedule: SpeculativeSchedule,
    outcomes: Mapping[int, bool],
    collect_trace: bool = False,
    ccb_capacity: Optional[int] = None,
    metrics: MetricsRegistry = NULL_METRICS,
    collect_cycles: bool = False,
) -> BlockRun:
    """Simulate one dynamic instance of a speculative block.

    Args:
        spec_schedule: the statically scheduled transformed block.
        outcomes: per-``LdPred`` op id, whether the prediction was correct.
        collect_trace: record typed trace events (used by the worked
            example, the timeline renderer and the Perfetto exporter).
        ccb_capacity: bound the Compensation Code Buffer; ``None`` falls
            back to the machine spec's ``ccb_capacity`` (itself ``None``
            — unbounded — on the paper's machines).
        metrics: registry receiving the run's counters and histograms
            (``vliw.stall_cycles``, ``cce.flush``, ``cce.reexec``,
            ``ovb.state_transitions{...}``, ...); the default disabled
            registry costs one branch per site.
        collect_cycles: attribute every cycle of the run to one cause
            (see :mod:`repro.obs.cycles`) into ``BlockRun.cycle_stack``;
            debug runs assert the stack sums to ``effective_length``.
            Timing results are identical either way.

    The OVB capacity and Synchronization-register width are read from the
    machine description (``MachineSpec.ovb_capacity`` / ``sync_width``);
    the width is grown if the schedule allocated more sync bits than the
    hardware declares, which keeps pre-spec schedules simulating.
    """
    sink: Optional[TraceSink] = TraceSink() if collect_trace else None
    machine = spec_schedule.schedule.machine

    ovb = OperandValueBuffer(
        trace=sink, metrics=metrics, capacity=machine.ovb_capacity
    )
    sync = SyncRegisterState(
        width=max(machine.sync_width, spec_schedule.spec.sync_bits_used),
        trace=sink,
        metrics=metrics,
    )
    if ccb_capacity is None:
        ccb_capacity = machine.ccb_capacity
    cc = CompensationEngine(
        machine=machine,
        ovb=ovb,
        sync=sync,
        buffer=CompensationCodeBuffer(capacity=ccb_capacity),
        trace=sink,
        metrics=metrics,
    )
    ledger = (
        CycleLedger(record_events=collect_trace)
        if collect_cycles
        else NULL_CYCLES
    )
    vliw = VLIWEngineSim(
        spec_schedule,
        outcomes,
        ovb=ovb,
        sync=sync,
        cc=cc,
        trace=sink,
        metrics=metrics,
        cycles=ledger,
    )

    stats: VLIWRunStats = vliw.run()
    cc.drain()
    cc_stats: CCEngineStats = cc.stats

    # The block is architecturally complete when the VLIW stream is: all
    # side effects (stores, branches) and all live-out values execute in
    # non-speculative form on the VLIW Engine, so whatever the
    # Compensation Code Engine is still recomputing is a dead block-local
    # temporary whose only remaining job is clearing its Synchronization
    # bit.  That tail overlaps the next block and is reported as
    # ``cc_tail`` rather than charged to this block's length.
    effective = stats.completion
    if collect_cycles:
        # The hard cycle-accounting invariant: every cycle of the block
        # is attributed to exactly one cause.
        assert ledger.total() == effective, (
            f"block {spec_schedule.label!r}: cycle stack sums to "
            f"{ledger.total()}, simulated {effective} cycles"
        )
    return BlockRun(
        label=spec_schedule.label,
        effective_length=effective,
        vliw_length=stats.completion,
        cc_tail=max(0, cc_stats.last_exec_completion - stats.completion),
        stall_cycles=stats.stall_cycles,
        predictions=stats.predictions,
        mispredictions=stats.mispredictions,
        flushed=cc_stats.flushed,
        executed=cc_stats.executed,
        trace=tuple(sink.sorted()) if sink is not None else (),
        issue_times=(
            tuple(sorted(stats.issue_times.items())) if collect_trace else ()
        ),
        cc_events=tuple(cc_stats.events) if collect_trace else (),
        cycle_stack=(
            tuple(sorted(ledger.counts.items())) if collect_cycles else ()
        ),
        cycle_events=tuple(ledger.events),
    )


def simulate_best_case(spec_schedule: SpeculativeSchedule) -> BlockRun:
    """All predictions correct (the paper's Table 2/3 'best case')."""
    return simulate_block(
        spec_schedule, {l: True for l in spec_schedule.spec.ldpred_ids}
    )


def simulate_worst_case(spec_schedule: SpeculativeSchedule) -> BlockRun:
    """All predictions incorrect (the paper's 'worst case')."""
    return simulate_block(
        spec_schedule, {l: False for l in spec_schedule.spec.ldpred_ids}
    )


def simulate_all_outcomes(
    spec_schedule: SpeculativeSchedule,
) -> Dict[Tuple[bool, ...], BlockRun]:
    """Simulate every outcome pattern (2^n for n predictions).

    The dynamic program simulation memoises block timings per pattern
    through this map; blocks predict at most a handful of loads so the
    pattern space stays tiny.
    """
    ldpreds = spec_schedule.spec.ldpred_ids
    results: Dict[Tuple[bool, ...], BlockRun] = {}
    for mask in range(1 << len(ldpreds)):
        pattern = tuple(bool(mask & (1 << i)) for i in range(len(ldpreds)))
        outcomes = dict(zip(ldpreds, pattern))
        results[pattern] = simulate_block(spec_schedule, outcomes)
    return results
