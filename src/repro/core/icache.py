"""A direct-mapped instruction cache model.

The paper argues (section 1) that statically scheduled compensation code
pollutes the instruction cache: recovery blocks fetched on mispredictions
evict useful main-code lines.  The proposed architecture never fetches
compensation code through the i-cache (the Compensation Code Buffer holds
already-decoded operations), so only the baseline pays these penalties.

The model is deliberately simple — a direct-mapped cache of instruction
lines with a fixed miss penalty — because only the *relative* pollution
effect matters for the comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class ICacheConfig:
    """Geometry and timing of the instruction cache."""

    lines: int = 256
    ops_per_line: int = 4
    miss_penalty: int = 8

    def __post_init__(self) -> None:
        if self.lines < 1 or self.ops_per_line < 1 or self.miss_penalty < 0:
            raise ValueError("invalid i-cache configuration")

    def lines_for(self, op_count: int) -> int:
        """Cache lines occupied by a block of ``op_count`` operations."""
        return max(1, math.ceil(op_count / self.ops_per_line))


class InstructionCache:
    """Direct-mapped cache over a flat line-address space."""

    def __init__(self, config: Optional[ICacheConfig] = None):
        self.config = config or ICacheConfig()
        self._tags: Dict[int, int] = {}
        self.accesses = 0
        self.misses = 0

    def access_range(self, first_line: int, line_count: int) -> int:
        """Fetch ``line_count`` lines starting at ``first_line``.

        Returns the miss penalty in cycles for this fetch.
        """
        if line_count < 1:
            raise ValueError("must access at least one line")
        penalty = 0
        for line in range(first_line, first_line + line_count):
            self.accesses += 1
            index = line % self.config.lines
            if self._tags.get(index) != line:
                self.misses += 1
                self._tags[index] = line
                penalty += self.config.miss_penalty
        return penalty

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self._tags = {}
        self.accesses = 0
        self.misses = 0


class CodeLayout:
    """Assigns contiguous line ranges to static code blocks.

    Main blocks and (for the baseline) compensation blocks are laid out
    in the order they are registered, mimicking a linker laying out the
    text section followed by the recovery section.
    """

    def __init__(self, config: Optional[ICacheConfig] = None):
        self.config = config or ICacheConfig()
        self._ranges: Dict[str, tuple[int, int]] = {}
        self._next_line = 0

    def place(self, block_id: str, op_count: int) -> tuple[int, int]:
        if block_id in self._ranges:
            raise ValueError(f"block {block_id!r} already placed")
        count = self.config.lines_for(op_count)
        placed = (self._next_line, count)
        self._ranges[block_id] = placed
        self._next_line += count
        return placed

    def range_of(self, block_id: str) -> tuple[int, int]:
        try:
            return self._ranges[block_id]
        except KeyError:
            raise KeyError(f"block {block_id!r} was never placed") from None

    def fetch(self, cache: InstructionCache, block_id: str) -> int:
        """Fetch a placed block through the cache; returns penalty cycles."""
        first, count = self.range_of(block_id)
        return cache.access_range(first, count)

    @property
    def total_lines(self) -> int:
        return self._next_line
