"""Cycle-by-cycle timeline rendering (the paper's Figure 7 view).

Given a speculative schedule and a traced :class:`BlockRun`, renders a
three-column per-cycle table: what the VLIW Engine issues (with operation
forms and Synchronization-bit annotations), what the Compensation Code
Engine does, and the verification events of the cycle.  This is the tool
the worked example uses to show the Figure 3/7 scenarios, and a handy
debugging aid for anyone extending the architecture.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.printer import format_table
from repro.obs.trace import (
    BitClearEvent,
    CheckEvent,
    ExecuteEvent,
    FlushEvent,
    StallEvent,
)
from repro.core.isa_ext import OpForm
from repro.core.machine_sim import BlockRun
from repro.core.specsched import SpeculativeSchedule

_FORM_GLYPH = {
    OpForm.PLAIN: "",
    OpForm.LDPRED: "LdPred",
    OpForm.CHECK: "check",
    OpForm.SPECULATIVE: "spec",
    OpForm.NONSPEC: "nonspec",
}


def _vliw_cell(spec_schedule: SpeculativeSchedule, op_ids: List[int]) -> str:
    spec = spec_schedule.spec
    by_id = {op.op_id: op for op in spec.operations}
    parts = []
    for op_id in op_ids:
        op = by_id[op_id]
        info = spec.info[op_id]
        glyph = _FORM_GLYPH[info.form]
        tag = f" [{glyph}]" if glyph else ""
        if info.sync_bit is not None:
            tag += f" +b{info.sync_bit}"
        if info.wait_bits:
            tag += f" ?b{{{','.join(str(b) for b in sorted(info.wait_bits))}}}"
        text = str(op)
        # strip the "opNN: " prefix for readability; keep the id
        parts.append(f"op{op_id} {text.split(': ', 1)[1]}{tag}")
    return "; ".join(parts)


def render_timeline(spec_schedule: SpeculativeSchedule, run: BlockRun) -> str:
    """Render a per-cycle dual-engine timeline.

    Requires ``run`` to have been produced with ``collect_trace=True``
    (so issue times and CCE events were recorded).
    """
    if not run.issue_times:
        raise ValueError(
            "timeline rendering needs a run simulated with collect_trace=True"
        )

    issued_at: Dict[int, List[int]] = {}
    for op_id, cycle in run.issue_times:
        issued_at.setdefault(cycle, []).append(op_id)

    # The CCE column shows pipeline activity; the events column shows
    # verification verdicts and stalls.  Both come from the typed trace
    # (no string matching): flush/execute events drive the CCE column,
    # stall/check/bit-clear events the notes.
    cce_at: Dict[int, List[str]] = {}
    notes_at: Dict[int, List[str]] = {}
    for event in run.trace:
        if isinstance(event, ExecuteEvent):
            cce_at.setdefault(event.cycle, []).append(
                f"execute op{event.op_id} (done @{event.completion})"
            )
        elif isinstance(event, FlushEvent):
            cce_at.setdefault(event.cycle, []).append(f"flush op{event.op_id}")
        elif isinstance(event, (StallEvent, CheckEvent, BitClearEvent)):
            notes_at.setdefault(event.cycle, []).append(event.describe())

    last_cycle = max(
        [run.effective_length]
        + [c for c in issued_at]
        + [c for c in cce_at]
        + [t for t in notes_at]
    )
    rows: List[Tuple[str, str, str, str]] = []
    for cycle in range(last_cycle + 1):
        vliw = _vliw_cell(spec_schedule, sorted(issued_at.get(cycle, [])))
        cce = "; ".join(cce_at.get(cycle, []))
        notes = "; ".join(notes_at.get(cycle, []))
        if vliw or cce or notes:
            rows.append((str(cycle), vliw, cce, notes))

    header = (
        f"block {run.label}: {run.effective_length} cycles, "
        f"{run.mispredictions}/{run.predictions} mispredicted, "
        f"{run.stall_cycles} stall cycle(s)\n"
    )
    return header + format_table(
        ["cycle", "VLIW Engine", "Compensation Code Engine", "events"], rows
    )
