"""The value-speculation compiler pass (paper sections 2.1 and 3).

Given a basic block, a machine description and a value profile, the pass

1. selects loads to predict — loads on the block's longest critical path
   whose profiled prediction rate meets the threshold (65% in the paper),
   accepted greedily while the speculative schedule keeps improving;
2. rewrites the block: each predicted load becomes a ``LdPred`` (which
   reads the value predictor) plus a check-prediction op (which
   re-executes the load and compares); consumers of predicted values are
   classified speculative or non-speculative;
3. assigns Synchronization-register bits to every predicted value and
   wait bits to every non-speculative operation;
4. rewires the dependence graph so the standard list scheduler produces
   the speculative schedule.

Classification policy (the compiler freedom the paper leaves open, cf.
its example where operations 10 and 11 stay non-speculative):

* stores and branches are never speculated (their effects cannot be
  undone by the Compensation Code Engine);
* loads with tainted operands are not speculated (a speculative load from
  a mispredicted address could fault; it waits for verification instead);
* operations defining registers that are live out of the block are kept
  non-speculative by default, so the architectural state handed to
  successor blocks is always verified (``speculate_liveout`` relaxes
  this);
* everything else that consumes a predicted value is speculated.

One constraint the paper leaves implicit is made explicit here: every
check-prediction op must be scheduled strictly before any instruction
that can stall on Synchronization bits.  Otherwise an in-order VLIW
engine stalled on a bit whose clearing transitively requires a
*not-yet-issued* check would deadlock (the Compensation Code Buffer is a
FIFO, so an unresolved earlier entry blocks recovery of later ones).
The pass encodes this as weight-1 SYNC edges from every check to every
waiting non-speculative op.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.ddg.graph import DepKind, DependenceGraph
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation, Reg
from repro.machine.description import MachineDescription
from repro.profiling.value_profile import ValueProfile
from repro.core import compile_cache
from repro.core.isa_ext import OpForm, SpecOpInfo, SpeculativeBlock
from repro.core.sync_register import SyncBitAllocator, SyncRegisterOverflow


#: Dependence graphs and critical-path analyses depend on the machine
#: only through its latency table, so the memos live in
#: :mod:`repro.core.compile_cache` keyed on the latency fingerprint and
#: are shared across resource (issue width / FU count) variants.
_shared_ddg = compile_cache.shared_ddg
_shared_analysis = compile_cache.shared_analysis


def _shared_transform(
    block: BasicBlock,
    machine: MachineDescription,
    predicted_loads: Sequence[Operation],
    live_out: FrozenSet[Reg],
    config: "SpeculationConfig",
) -> SpeculativeBlock:
    """Memoised :func:`transform_block`.

    The rewrite depends on the *ordered* prediction set (Sync bits are
    allocated in that order), the live-out set and the two config knobs
    the transform reads (``sync_width``, ``speculate_liveout``) —
    thresholds and profile filters affect only *selection*, so sweeps
    over them share every trial transform.  Of the machine it reads only
    the latency table (LdPred/check latencies enter the rewired edge
    weights) and ``sync_width``, so resource variants share transforms
    too; the resource-dependent *schedules* of a shared transform stay
    keyed on the full machine fingerprint.
    """
    key = (
        "xform",
        compile_cache.latency_fingerprint(machine),
        machine.sync_width,
        tuple(op.op_id for op in predicted_loads),
        live_out,
        config.sync_width,
        config.speculate_liveout,
    )
    return compile_cache.cached(
        block,
        key,
        lambda: transform_block(
            block, machine, predicted_loads, live_out=live_out, config=config
        ),
    )


@dataclass(frozen=True)
class SpeculationConfig:
    """Tunables of the speculation pass.

    Attributes:
        threshold: minimum profiled prediction rate for a load to be a
            candidate (the paper uses 0.65).
        max_predictions: cap on predicted loads per block.
        sync_width: Synchronization-register width in bits; speculated
            ops beyond the width are demoted to non-speculative.
        min_profile_executions: loads profiled fewer times than this are
            not predicted (their rate estimate is meaningless).
        speculate_liveout: allow speculating ops whose results are live
            out of the block.
        predict_alu: also consider long-latency ALU results (mul/div/...)
            as prediction candidates — the paper's general formulation
            ("an operation ... may have its destination operand
            predicted").  Requires a profile gathered with
            ``profile_program(..., profile_alu=True)``.
    """

    threshold: float = 0.65
    max_predictions: int = 4
    sync_width: int = 64
    min_profile_executions: int = 4
    speculate_liveout: bool = False
    predict_alu: bool = False


def _predictable(op: Operation) -> bool:
    """Can this operation's destination value be predicted?

    Loads always; otherwise any pure value-producing ALU op (the paper's
    general formulation).  Stores and branches have no destination value.
    """
    from repro.ir.opcodes import is_alu

    return op.is_load or (is_alu(op.opcode) and op.dest is not None)


def transform_block(
    block: BasicBlock,
    machine: MachineDescription,
    predicted_loads: Sequence[Operation],
    live_out: FrozenSet[Reg] = frozenset(),
    config: Optional[SpeculationConfig] = None,
) -> SpeculativeBlock:
    """Rewrite ``block`` predicting exactly ``predicted_loads``.

    The predicted operations must belong to ``block`` and be loads or
    pure value-producing ALU ops.  Selection policy lives in
    :func:`speculate_block`; this function is the mechanical rewrite and
    is exposed separately so tests and the worked paper example can
    force specific prediction sets.
    """
    config = config or SpeculationConfig()
    original_graph = _shared_ddg(block, machine)
    block_ids = {op.op_id for op in block.operations}
    for op in predicted_loads:
        if op.op_id not in block_ids:
            raise ValueError(f"{op} is not an operation of block {block.label!r}")
        if not _predictable(op):
            raise ValueError(
                f"only loads and pure value-producing ops can be predicted, got {op}"
            )

    predicted_ids = {op.op_id for op in predicted_loads}

    # -- create LdPred and check ops -------------------------------------
    # The check form re-executes the predicted operation and compares:
    # for a load that is the dedicated CHKPRED (memory unit + compare,
    # paper section 3); for an ALU op it is simply the operation itself,
    # re-issued on its own functional unit with compare semantics.
    ldpred_for: Dict[int, Operation] = {}
    check_for: Dict[int, Operation] = {}
    for op in predicted_loads:
        ldpred_for[op.op_id] = Operation(opcode=Opcode.LDPRED, dest=op.dest)
        if op.is_load:
            check_for[op.op_id] = Operation(
                opcode=Opcode.CHKPRED,
                dest=op.dest,
                srcs=op.srcs,
                offset=op.offset,
            )
        else:
            check_for[op.op_id] = Operation(
                opcode=op.opcode,
                dest=op.dest,
                srcs=op.srcs,
                offset=op.offset,
            )
    predicted_by_check = {
        check_for[l.op_id].op_id: l.op_id for l in predicted_loads
    }

    # -- classify every original operation --------------------------------
    # The pass cannot use more sync bits than the machine physically has,
    # whatever the pass config asks for (registry machines declare 64,
    # matching the config default, so paper schedules are unchanged).
    allocator = SyncBitAllocator(
        width=min(config.sync_width, machine.sync_width)
    )
    info: Dict[int, SpecOpInfo] = {}

    for load in predicted_loads:
        ldpred = ldpred_for[load.op_id]
        bit = allocator.allocate(ldpred.op_id)
        info[ldpred.op_id] = SpecOpInfo(
            form=OpForm.LDPRED, origins=frozenset({ldpred.op_id}), sync_bit=bit
        )

    def producer_taint(op: Operation) -> FrozenSet[int]:
        """Origins reaching ``op`` through its operand producers."""
        taint: Set[int] = set()
        for pred_id in original_graph.flow_predecessors(op.op_id):
            if pred_id in predicted_ids:
                taint.add(ldpred_for[pred_id].op_id)
            else:
                pred_info = info.get(pred_id)
                if pred_info is not None and pred_info.form is OpForm.SPECULATIVE:
                    taint.update(pred_info.origins)
        return frozenset(taint)

    def immediate_wait_bits(op: Operation) -> FrozenSet[int]:
        """Bits of the most recent predicted producers of the operands."""
        bits: Set[int] = set()
        for pred_id in original_graph.flow_predecessors(op.op_id):
            if pred_id in predicted_ids:
                bits.add(info[ldpred_for[pred_id].op_id].sync_bit)
            else:
                pred_info = info.get(pred_id)
                if (
                    pred_info is not None
                    and pred_info.form is OpForm.SPECULATIVE
                    and pred_info.sync_bit is not None
                ):
                    bits.add(pred_info.sync_bit)
        return frozenset(bits)

    for op in block.operations:
        if op.op_id in predicted_ids:
            # The check form inherits the load's operand (address)
            # dependences.  A tainted address means the *check* must wait
            # for verification — this is what permits predicting chained
            # loads (vortex-style multi-level indirection), where the
            # address of one predicted load derives from the value of
            # another.  The LdPred itself needs nothing: the predicted
            # value is independent of the address computation, so
            # consumers of the prediction are tainted only by this
            # load's own LdPred, never by the address chain.
            taint = producer_taint(op)
            info[check_for[op.op_id].op_id] = SpecOpInfo(
                form=OpForm.CHECK,
                origins=taint,
                wait_bits=immediate_wait_bits(op),
                verifies=ldpred_for[op.op_id].op_id,
            )
            continue
        taint = producer_taint(op)
        if not taint:
            info[op.op_id] = SpecOpInfo(form=OpForm.PLAIN)
            continue
        must_be_nonspec = (
            op.has_side_effect
            or op.is_load
            or (op.dest is not None and op.dest in live_out and not config.speculate_liveout)
        )
        if not must_be_nonspec:
            try:
                bit = allocator.allocate(op.op_id)
            except SyncRegisterOverflow:
                must_be_nonspec = True  # graceful demotion
            else:
                info[op.op_id] = SpecOpInfo(
                    form=OpForm.SPECULATIVE, origins=taint, sync_bit=bit
                )
                continue
        info[op.op_id] = SpecOpInfo(
            form=OpForm.NONSPEC, origins=taint, wait_bits=immediate_wait_bits(op)
        )

    # -- transformed operation list ----------------------------------------
    # Each LdPred sits immediately before its check (at the original
    # load's position).  This keeps the operation list topologically
    # ordered even when the load's destination register has earlier
    # definitions or uses (whose anti/output edges also constrain the
    # LdPred); the scheduler is constrained only by edges, so the early
    # issue of LdPred is unaffected.
    operations: List[Operation] = []
    for op in block.operations:
        if op.op_id in predicted_ids:
            operations.append(ldpred_for[op.op_id])
            operations.append(check_for[op.op_id])
        else:
            operations.append(op)

    # -- rewire the dependence graph -----------------------------------------
    graph = DependenceGraph(operations)
    terminator = block.terminator
    ldpred_latency = machine.latency(Opcode.LDPRED)

    def check_latency(check_op: Operation) -> int:
        return machine.latency(check_op.opcode)

    def node(op_id: int) -> Operation:
        """Transformed node standing for original op ``op_id``."""
        return check_for[op_id] if op_id in predicted_ids else _op_by_id(block, op_id)

    for load in predicted_loads:
        ldpred = ldpred_for[load.op_id]
        check = check_for[load.op_id]
        # LdPred writes the destination before the check (re)writes it.
        graph.add_edge(ldpred, check, DepKind.OUTPUT, 1)
        if terminator is not None:
            graph.add_edge(ldpred, node(terminator.op_id), DepKind.CONTROL, 0)
        for edge in original_graph.predecessors(load.op_id):
            src = node(edge.src)
            # The check inherits all of the load's constraints.  When the
            # producer is itself a predicted load, node() maps it to its
            # check, so the address comes from the *verified* value.
            weight = edge.weight
            if edge.kind is DepKind.FLOW and edge.src in predicted_ids:
                weight = check_latency(check_for[edge.src])
            graph.add_edge(src, check, edge.kind, weight)
            # Writes of the destination register also constrain LdPred.
            if edge.kind in (DepKind.ANTI, DepKind.OUTPUT):
                graph.add_edge(src, ldpred, edge.kind, edge.weight)
        # A check with tainted address operands must also wait for the
        # verification of every origin prediction (best-case timing: the
        # origin checks' completions).
        for origin in info[check.op_id].origins:
            origin_check = check_for[_load_of_ldpred(ldpred_for, origin)]
            if origin_check.op_id != check.op_id:
                graph.add_edge(
                    origin_check, check, DepKind.SYNC, check_latency(origin_check)
                )

    for op in block.operations:
        if op.op_id in predicted_ids:
            continue
        dst = node(op.op_id)
        op_info = info[op.op_id]
        for edge in original_graph.predecessors(op.op_id):
            if edge.src in predicted_ids:
                ldpred = ldpred_for[edge.src]
                check = check_for[edge.src]
                if edge.kind is DepKind.FLOW:
                    if op_info.form is OpForm.SPECULATIVE:
                        graph.add_edge(ldpred, dst, DepKind.FLOW, ldpred_latency)
                    else:
                        graph.add_edge(
                            check, dst, DepKind.FLOW, check_latency(check)
                        )
                else:
                    graph.add_edge(check, dst, edge.kind, edge.weight)
                    if edge.kind in (DepKind.ANTI, DepKind.OUTPUT):
                        graph.add_edge(ldpred, dst, edge.kind, edge.weight)
            else:
                graph.add_edge(node(edge.src), dst, edge.kind, edge.weight)
        # Non-speculative ops wait for verification: in the all-correct
        # case their wait bits clear when the relevant checks complete.
        if op_info.form is OpForm.NONSPEC:
            for origin in op_info.origins:
                check = check_for[_load_of_ldpred(ldpred_for, origin)]
                graph.add_edge(check, dst, DepKind.SYNC, check_latency(check))

    # Deadlock avoidance (see module docstring): every check issues
    # strictly before any instruction that can stall on sync bits.
    # Checks with tainted addresses are themselves stall-capable; they
    # are chained among each other in program order (acyclic, since an
    # address can only derive from an earlier load's value), and receive
    # ordering edges from all non-waiting checks.
    position = {op.op_id: i for i, op in enumerate(block.operations)}
    waiting_nonspec = [
        op for op in block.operations
        if op.op_id not in predicted_ids
        and info[op.op_id].form is OpForm.NONSPEC
        and info[op.op_id].wait_bits
    ]
    checks = [check_for[l.op_id] for l in predicted_loads]
    waiting_checks = sorted(
        (c for c in checks if info[c.op_id].wait_bits),
        key=lambda c: position[predicted_by_check[c.op_id]],
    )

    def check_position(check_op) -> int:
        return position[predicted_by_check[check_op.op_id]]

    # Ordering edges must only run *forward* in program order — a
    # backward edge could close a cycle through the value chain feeding a
    # later check's address.  Forward-only ordering covers the common
    # case; prediction sets whose schedules could still deadlock are
    # rejected by the exhaustive outcome validation in speculate_block.
    for check in checks:
        for op in waiting_nonspec:
            if position[op.op_id] > check_position(check):
                graph.add_edge(check, op, DepKind.SYNC, 1)
        if not info[check.op_id].wait_bits:
            for waiting in waiting_checks:
                if (
                    waiting.op_id != check.op_id
                    and check_position(waiting) > check_position(check)
                ):
                    graph.add_edge(check, waiting, DepKind.SYNC, 1)
    for earlier, later in zip(waiting_checks, waiting_checks[1:]):
        graph.add_edge(earlier, later, DepKind.SYNC, 1)

    return SpeculativeBlock(
        label=block.label,
        original=block,
        operations=operations,
        info=info,
        graph=graph,
        ldpred_ids=[ldpred_for[l.op_id].op_id for l in predicted_loads],
        check_of={
            ldpred_for[l.op_id].op_id: check_for[l.op_id].op_id for l in predicted_loads
        },
        predicted_load_of={
            ldpred_for[l.op_id].op_id: l.op_id for l in predicted_loads
        },
    )


def _op_by_id(block: BasicBlock, op_id: int) -> Operation:
    for op in block.operations:
        if op.op_id == op_id:
            return op
    raise KeyError(op_id)


def _load_of_ldpred(ldpred_for: Dict[int, Operation], ldpred_id: int) -> int:
    for load_id, ldpred in ldpred_for.items():
        if ldpred.op_id == ldpred_id:
            return load_id
    raise KeyError(ldpred_id)


def candidate_loads(
    block: BasicBlock,
    machine: MachineDescription,
    profile: ValueProfile,
    config: SpeculationConfig,
    already: Sequence[Operation] = (),
    live_out: FrozenSet[Reg] = frozenset(),
) -> List[Operation]:
    """Predictable operations on the *current* longest critical path.

    Loads always qualify; with ``config.predict_alu`` long-latency ALU
    results qualify too (provided the profile tracked them).  With
    ``already`` non-empty the critical path is that of the block
    transformed by the current prediction set, so successive selections
    chase the newly exposed path, and ops made non-speculable by the
    current choices are filtered out.
    """
    if already:
        spec = _shared_transform(block, machine, already, live_out, config)
        graph, forms = spec.graph, spec.info
    else:
        graph = _shared_ddg(block, machine)
        forms = None
    analysis = _shared_analysis(block, graph, machine)
    chosen_ids = {op.op_id for op in already}

    def qualifies(op: Operation) -> bool:
        if op.is_load:
            return True
        return (
            config.predict_alu
            and _predictable(op)
            and machine.latency(op.opcode) >= 3
        )

    out: List[Operation] = []
    for op_id in analysis.critical_ops:
        op = graph.operation(op_id)
        if not qualifies(op) or op.op_id in chosen_ids:
            continue
        if forms is not None and forms[op.op_id].form not in (
            OpForm.PLAIN,
            OpForm.NONSPEC,
        ):
            continue  # already rewritten into a prediction form
        if forms is not None and forms[op.op_id].form is OpForm.NONSPEC and not op.is_load:
            # A tainted ALU op re-executes on the CCE anyway; predicting
            # it on top of its origins rarely helps and complicates the
            # check chain — restrict chained prediction to loads.
            continue
        if profile.executions(op.op_id) < config.min_profile_executions:
            continue
        if profile.rate(op.op_id) < config.threshold:
            continue
        out.append(op)
    out.sort(key=lambda op: analysis.height[op.op_id], reverse=True)
    return out


def _eligible_ops(
    block: BasicBlock,
    machine: MachineDescription,
    profile: ValueProfile,
    config: SpeculationConfig,
) -> List[int]:
    """Op ids that pass the profile/qualification filters of
    :func:`candidate_loads`, over the whole block.

    The threshold and ``min_profile_executions`` enter greedy selection
    *only* through this set (candidate rounds filter against the same
    predicates), so it is a sufficient cache key component: two configs
    with equal eligible sets produce identical selections.
    """
    out: List[int] = []
    for op in block.operations:
        qualifies = op.is_load or (
            config.predict_alu
            and _predictable(op)
            and machine.latency(op.opcode) >= 3
        )
        if not qualifies:
            continue
        if profile.executions(op.op_id) < config.min_profile_executions:
            continue
        if profile.rate(op.op_id) < config.threshold:
            continue
        out.append(op.op_id)
    return out


def speculate_block(
    block: BasicBlock,
    machine: MachineDescription,
    profile: ValueProfile,
    live_out: FrozenSet[Reg] = frozenset(),
    config: Optional[SpeculationConfig] = None,
) -> Optional[SpeculativeBlock]:
    """Select predictions for ``block`` and return the transformed block.

    Returns ``None`` when no profitable prediction exists (no predictable
    load on the critical path, or predicting never shortens the
    schedule).  Selection is greedy: keep adding the most critical
    predictable load while the resource-constrained schedule length
    strictly improves — which is also what makes wider machines speculate
    more (they have the slots to absorb the LdPred/check overhead).

    Selection is memoised process-wide, keyed on everything it actually
    depends on: machine fingerprint, the profile-eligible op set (the
    only way threshold/profile enter), live-out set and the pass config
    — so threshold sweeps that agree on eligibility share one greedy
    run, and its trial transforms/schedules, outright.
    """
    config = config or SpeculationConfig()
    fp = compile_cache.machine_fingerprint(machine)
    eligible = frozenset(_eligible_ops(block, machine, profile, config))
    rest = (
        live_out,
        config.max_predictions,
        config.sync_width,
        config.speculate_liveout,
        config.predict_alu,
    )
    key = ("spec", fp, tuple(sorted(eligible))) + rest

    def compute():
        # Superset reuse: greedy evaluates candidates independently and
        # keeps round winners, so for eligible sets S = greedy(E) and
        # S ⊆ E' ⊆ E, greedy(E') runs the identical rounds — every
        # round's winner is in E', and the removed candidates were
        # losers whose absence changes no argmax and no termination
        # test.  Threshold sweeps hit this constantly: a higher
        # threshold shrinks eligibility but usually keeps the selection.
        index = compile_cache.cached(block, ("specidx", fp) + rest, list)
        for known_eligible, selection, result in index:
            if selection <= eligible <= known_eligible:
                return result
        result = _speculate_block_impl(block, machine, profile, live_out, config)
        if result is None:
            selection = frozenset()
        else:
            selection = frozenset(
                result.predicted_load_of[l] for l in result.ldpred_ids
            )
        index.append((eligible, selection, result))
        return result

    return compile_cache.cached(block, key, compute)


def _speculate_block_impl(
    block: BasicBlock,
    machine: MachineDescription,
    profile: ValueProfile,
    live_out: FrozenSet[Reg],
    config: SpeculationConfig,
) -> Optional[SpeculativeBlock]:
    original_length = compile_cache.original_schedule(block, machine).length
    current_length = original_length

    chosen: List[Operation] = []
    best: Optional[SpeculativeBlock] = None
    while len(chosen) < config.max_predictions:
        candidates = candidate_loads(
            block, machine, profile, config, already=chosen, live_out=live_out
        )
        # Evaluate every candidate of this round and keep the one giving
        # the shortest schedule (first-improving greedy is noticeably
        # worse on chained-load blocks, where predicting the *last* load
        # of an indirection chain wins but the *first* has the greatest
        # dependence height).
        round_best: Optional[tuple[int, List[Operation], SpeculativeBlock]] = None
        for cand in candidates:
            trial_set = chosen + [cand]
            trial = _shared_transform(block, machine, trial_set, live_out, config)
            # Dependence-height lower bound: resource constraints only
            # ever lengthen a list schedule, so a transform whose
            # critical path is already no shorter than the incumbent
            # cannot yield an improving schedule — skip the (much more
            # expensive) resource-constrained scheduling outright.  The
            # filters below would reject exactly the same candidates,
            # so selection is unchanged.
            target = current_length if round_best is None else round_best[0]
            if _shared_analysis(block, trial.graph, machine).length >= target:
                continue
            spec_schedule = compile_cache.speculative_schedule(
                trial, machine, original_length
            )
            if spec_schedule.length >= current_length:
                continue
            if round_best is not None and spec_schedule.length >= round_best[0]:
                continue
            # Validate every outcome pattern: a prediction set whose
            # schedule could leave the engines without forward progress
            # (see the deadlock discussion above) is rejected outright.
            if not compile_cache.schedule_validated(spec_schedule):
                continue
            round_best = (spec_schedule.length, trial_set, trial)
        if round_best is None:
            break
        current_length, chosen, best = round_best
    return best
