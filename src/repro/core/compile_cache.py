"""Process-wide, identity-keyed sharing of compiler/simulation products.

Sweeps simulate the *same* program blocks under many machine/threshold
variants; most per-block products (dependence graphs, original
schedules, speculation transforms, per-pattern dual-engine timings,
baseline/squash recovery runs) depend on far fewer inputs than a whole
sweep point, so recomputing them per point is the dominant sweep cost.
This module gives every :class:`~repro.ir.block.BasicBlock` a weakly
keyed memo dictionary; domain modules (:mod:`repro.core.speculation`,
:mod:`repro.core.metrics`, :mod:`repro.core.program_sim`,
:mod:`repro.compiler.passes`) store their products under explicit keys
via :func:`cached`.

Rules of the game:

* every memo lives in the per-block dictionary, so memory is bounded by
  block lifetime — dropping the last program reference drops its memos;
* values may be keyed by ``id(obj)`` of a product **only** when the memo
  value holds a strong reference to ``obj`` (then the id cannot be
  reused while the entry exists);
* everything here is a *pure* memo — results are byte-identical with the
  cache disabled.  ``REPRO_NO_BATCH=1`` turns the sharing off (see
  :func:`repro.batchsim._compat.sharing_enabled`), which the CI parity
  job uses to diff shared against fully-scalar artifacts.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Hashable, Tuple
from weakref import WeakKeyDictionary

from repro.batchsim._compat import sharing_enabled

__all__ = [
    "baseline_block",
    "cached",
    "latency_fingerprint",
    "machine_fingerprint",
    "original_schedule",
    "pattern_cycles",
    "pattern_metrics",
    "pattern_run",
    "reset",
    "schedule_validated",
    "shared_analysis",
    "shared_ddg",
    "speculative_schedule",
    "stats",
]

#: block -> {key: product}.  Weak on the block: memos die with the IR.
_BLOCK_MEMOS: "WeakKeyDictionary[Any, Dict[Hashable, Any]]" = WeakKeyDictionary()

#: id(machine) -> (machine, fingerprint).  Keyed by identity — machine
#: descriptions hold unhashable mappings, so they cannot key a regular
#: (or weak-key) dict.  The entry pins the machine, so its id cannot be
#: reused while the entry lives; machines are tiny and few per process,
#: and :func:`reset` clears the pin.
_MACHINE_FPS: Dict[int, Tuple[Any, str]] = {}

#: id(machine) -> (machine, latency key).  Same pinning discipline as
#: :data:`_MACHINE_FPS`.
_LATENCY_FPS: Dict[int, Tuple[Any, Hashable]] = {}

_STATS: Counter = Counter()


def machine_fingerprint(machine) -> str:
    """Memoised ``machine.fingerprint()`` (hashes canonical spec JSON;
    memoised because every cache key embeds it)."""
    if not sharing_enabled():
        return machine.fingerprint()
    entry = _MACHINE_FPS.get(id(machine))
    if entry is None or entry[0] is not machine:
        entry = (machine, machine.fingerprint())
        _MACHINE_FPS[id(machine)] = entry
    return entry[1]


def latency_fingerprint(machine) -> Hashable:
    """Hashable key of everything :meth:`MachineDescription.latency`
    reads: the per-opcode latency table plus ``check_compare_cost``
    (which enters CHKPRED's derived latency).

    Dependence graphs and critical-path analyses depend on the machine
    *only* through ``latency()`` — edge weights and heights never read
    issue width or functional-unit counts — so memos keyed on this share
    those products across resource variants (the explore grid's
    ``issue_width=2,4`` points build each block's DDG once, not once per
    width).
    """
    if not sharing_enabled():
        return (
            tuple(sorted((op.value, lat) for op, lat in machine.latencies.items())),
            machine.check_compare_cost,
        )
    entry = _LATENCY_FPS.get(id(machine))
    if entry is None or entry[0] is not machine:
        key = (
            tuple(sorted((op.value, lat) for op, lat in machine.latencies.items())),
            machine.check_compare_cost,
        )
        entry = (machine, key)
        _LATENCY_FPS[id(machine)] = entry
    return entry[1]


def cached(block, key: Tuple, compute: Callable[[], Any]) -> Any:
    """Return the memoised product for ``(block, key)``.

    ``key`` must be a hashable tuple whose first element names the
    product kind (used for hit/miss stats).  With sharing disabled this
    is a transparent call-through.
    """
    if not sharing_enabled():
        return compute()
    try:
        memo = _BLOCK_MEMOS.get(block)
    except TypeError:  # block not weakref-able (exotic test double)
        return compute()
    if memo is None:
        memo = {}
        _BLOCK_MEMOS[block] = memo
    if key in memo:
        _STATS[f"{key[0]}.hit"] += 1
        return memo[key]
    _STATS[f"{key[0]}.miss"] += 1
    value = compute()
    memo[key] = value
    return value


# ---------------------------------------------------------------------------
# shared compiler/simulation products
#
# Convenience wrappers over :func:`cached` for the products several
# layers need (passes, speculation selection, program simulation).
# Imports are lazy to keep this module cycle-free at the bottom of the
# ``repro.core`` import graph.


def shared_ddg(block, machine):
    """The block's original dependence graph, shared across every
    machine with the same latency table (see :func:`latency_fingerprint`)."""
    from repro.ddg.builder import build_ddg

    lfp = latency_fingerprint(machine)
    return cached(block, ("ddg", lfp), lambda: build_ddg(block, machine))


def shared_analysis(block, graph, machine):
    """Critical-path analysis of a (memoised) graph, shared across
    latency-equal machines.

    Keyed on the graph's identity; the memo value pins the graph so the
    id stays valid while the entry lives.
    """
    from repro.ddg.critical_path import analyze

    lfp = latency_fingerprint(machine)
    entry = cached(
        block, ("ana", id(graph), lfp), lambda: (graph, analyze(graph, machine))
    )
    return entry[1]


def original_schedule(block, machine):
    """The block's original resource-constrained list schedule."""
    from repro.sched.list_scheduler import ListScheduler

    fp = machine_fingerprint(machine)

    def compute():
        graph = shared_ddg(block, machine)
        analysis = shared_analysis(block, graph, machine)
        return ListScheduler(machine).schedule_graph(
            block.label, graph, analysis=analysis
        )

    return cached(block, ("osched", fp), compute)


def speculative_schedule(spec, machine, original_length):
    """List-schedule a transformed block (keyed on the spec identity).

    The memo value pins ``spec``, so the ``id(spec)`` in the key cannot
    be reused while the entry lives (see module docstring rules).
    """
    from repro.core.specsched import schedule_speculative

    fp = machine_fingerprint(machine)

    def compute():
        analysis = shared_analysis(spec.original, spec.graph, machine)
        return (
            spec,
            schedule_speculative(
                spec, machine, original_length=original_length, analysis=analysis
            ),
        )

    entry = cached(spec.original, ("sched", id(spec), fp), compute)
    return entry[1]


def baseline_block(spec, machine, original_length):
    """The statically-recovered baseline compilation of a transform."""
    from repro.core.baseline import build_baseline_block

    fp = machine_fingerprint(machine)
    entry = cached(
        spec.original,
        ("base", id(spec), fp),
        lambda: (
            spec,
            build_baseline_block(spec, machine, original_length=original_length),
        ),
    )
    return entry[1]


def schedule_validated(spec_schedule) -> bool:
    """Exhaustive outcome validation of a speculative schedule.

    ``True`` iff every correctness pattern simulates without engine
    deadlock.  The per-pattern runs produced by the validation sweep are
    seeded into the :func:`pattern_run` memo, so the dynamic simulation
    later reads them back instead of re-simulating.
    """
    from repro.core.cc_engine import SimulationDeadlock
    from repro.core.machine_sim import simulate_all_outcomes

    block = spec_schedule.spec.original

    def compute():
        try:
            runs = simulate_all_outcomes(spec_schedule)
        except SimulationDeadlock:
            return (spec_schedule, False)
        for pattern, run in runs.items():
            cached(
                block,
                ("prun", id(spec_schedule), pattern),
                lambda run=run: (spec_schedule, run),
            )
        return (spec_schedule, True)

    return cached(block, ("valid", id(spec_schedule)), compute)[1]


def pattern_run(spec_schedule, pattern: Tuple[bool, ...]):
    """Dual-engine timing of one correctness pattern (shared memo)."""
    from repro.core.machine_sim import simulate_block

    ldpreds = spec_schedule.spec.ldpred_ids
    entry = cached(
        spec_schedule.spec.original,
        ("prun", id(spec_schedule), pattern),
        lambda: (
            spec_schedule,
            simulate_block(spec_schedule, dict(zip(ldpreds, pattern))),
        ),
    )
    return entry[1]


def pattern_metrics(spec_schedule, pattern: Tuple[bool, ...]):
    """(BlockRun, MetricsSnapshot) of one pattern (shared memo)."""
    from repro.core.machine_sim import simulate_block
    from repro.obs.metrics import MetricsRegistry

    ldpreds = spec_schedule.spec.ldpred_ids

    def compute():
        registry = MetricsRegistry()
        run = simulate_block(
            spec_schedule, dict(zip(ldpreds, pattern)), metrics=registry
        )
        return (spec_schedule, run, registry.snapshot())

    entry = cached(
        spec_schedule.spec.original,
        ("pmet", id(spec_schedule), pattern),
        compute,
    )
    return entry[1], entry[2]


def pattern_cycles(spec_schedule, pattern: Tuple[bool, ...]):
    """(BlockRun, cause->cycles stack) of one pattern (shared memo)."""
    from repro.core.machine_sim import simulate_block

    ldpreds = spec_schedule.spec.ldpred_ids

    def compute():
        run = simulate_block(
            spec_schedule, dict(zip(ldpreds, pattern)), collect_cycles=True
        )
        return (spec_schedule, run, dict(run.cycle_stack))

    entry = cached(
        spec_schedule.spec.original,
        ("pcyc", id(spec_schedule), pattern),
        compute,
    )
    return entry[1], entry[2]


def stats() -> Dict[str, int]:
    """Hit/miss counters per product kind (for bench diagnostics)."""
    return dict(_STATS)


def reset() -> None:
    """Drop every memo (bench iterations and test isolation)."""
    _BLOCK_MEMOS.clear()
    _MACHINE_FPS.clear()
    _LATENCY_FPS.clear()
    _STATS.clear()
