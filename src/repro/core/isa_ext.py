"""Instruction-set extension of the paper (section 2.1).

Four operation *forms* extend the base VLIW ISA:

* ``LDPRED`` — loads the value predictor's prediction for a load into the
  load's destination register and sets a Synchronization-register bit.
* ``CHECK`` — the check-prediction form of the original (predicted) load:
  re-executes it on a memory unit, compares the result with the predicted
  value, clears the LdPred bit unconditionally and, on a correct
  prediction, also clears the bits of the operations speculated from it.
* ``SPECULATIVE`` — an op consuming a predicted value directly or
  transitively; it sets its own Synchronization bit and a copy of the
  decoded op is shipped to the Compensation Code Engine.
* ``NONSPEC`` — an op that must see only verified values; the VLIW
  instruction containing it stalls until the encoded wait bits clear.

Plain ops (untouched by prediction) keep the ``PLAIN`` form.

:class:`SpeculativeBlock` is the transformed block: the new operation
list, the per-operation form/bit annotations, and the rewired dependence
graph the list scheduler consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.ddg.graph import DependenceGraph
from repro.ir.block import BasicBlock
from repro.ir.operation import Operation


class OpForm(enum.Enum):
    """The operation forms of the extended ISA."""

    PLAIN = "plain"
    LDPRED = "ldpred"
    CHECK = "check"
    SPECULATIVE = "speculative"
    NONSPEC = "nonspec"


@dataclass(frozen=True)
class SpecOpInfo:
    """Static annotations attached to one operation of a transformed block.

    Attributes:
        form: the operation's form.
        origins: ids of the ``LDPRED`` operations this op's value derives
            from (non-empty for ``SPECULATIVE``; for ``NONSPEC`` these are
            the origins reachable through its *operands*).
        sync_bit: Synchronization-register bit set by this op (``LDPRED``
            and ``SPECULATIVE`` forms), else ``None``.
        wait_bits: bits this op's instruction must see cleared before
            issue (``NONSPEC`` form), per the paper's "most recent
            operations that compute the operands" encoding.
        verifies: for ``CHECK``: the id of the ``LDPRED`` it verifies.
    """

    form: OpForm
    origins: FrozenSet[int] = frozenset()
    sync_bit: Optional[int] = None
    wait_bits: FrozenSet[int] = frozenset()
    verifies: Optional[int] = None


@dataclass
class SpeculativeBlock:
    """A basic block after the value-speculation transformation.

    Attributes:
        label: the original block's label.
        original: the untransformed block.
        operations: transformed operation list in program order (LdPred
            ops first, then the original body with predicted loads
            replaced by their check forms).
        info: per-``op_id`` static annotations.
        graph: the rewired dependence graph used for scheduling.
        ldpred_ids: ids of the ``LDPRED`` operations, in insertion order.
        check_of: maps a ``LDPRED`` id to its ``CHECK`` op id.
        predicted_load_of: maps a ``LDPRED`` id to the *original* load's
            op id (the key under which the load was value-profiled and
            under which the run-time predictor is trained).
    """

    label: str
    original: BasicBlock
    operations: List[Operation]
    info: Dict[int, SpecOpInfo]
    graph: DependenceGraph
    ldpred_ids: List[int]
    check_of: Dict[int, int]
    predicted_load_of: Dict[int, int]

    @property
    def num_predictions(self) -> int:
        return len(self.ldpred_ids)

    @property
    def speculated_ops(self) -> List[Operation]:
        """Operations shipped to the Compensation Code Engine, program order."""
        return [
            op for op in self.operations
            if self.info[op.op_id].form is OpForm.SPECULATIVE
        ]

    @property
    def sync_bits_used(self) -> int:
        return sum(
            1 for i in self.info.values() if i.sync_bit is not None
        )

    def form(self, op_id: int) -> OpForm:
        return self.info[op_id].form

    def origins(self, op_id: int) -> FrozenSet[int]:
        return self.info[op_id].origins

    def __repr__(self) -> str:
        return (
            f"<SpeculativeBlock {self.label}: {len(self.operations)} ops, "
            f"{self.num_predictions} predictions, "
            f"{len(self.speculated_ops)} speculated>"
        )
