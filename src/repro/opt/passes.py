"""Block-local optimisation passes: constant folding, copy propagation,
dead-code elimination.

Trimaran runs classical optimisations before scheduling; these passes
fill that role for the front end here.  All three are *block-local* and
intentionally conservative:

* :func:`constant_folding` — evaluates ALU operations whose operands are
  all compile-time constants (tracked from ``mov rX, #imm`` chains) and
  rewrites them as constant moves; a conditional branch whose condition
  folded becomes an unconditional one.
* :func:`copy_propagation` — forwards ``mov a, b`` so later uses of
  ``a`` read ``b`` directly, until either side is redefined.
* :func:`dead_code_elimination` — removes side-effect-free operations
  whose results are never used again (needs whole-function liveness for
  the block boundary).

Passes build *new* operations (fresh ids); run them before profiling so
profiles and schedules see the final code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.liveness import compute_liveness
from repro.ir.opcodes import Opcode, evaluator, is_alu
from repro.ir.operation import Imm, Operand, Operation, Reg

Number = Union[int, float]


def _rebuild(function: Function, blocks: Dict[str, List[Operation]]) -> Function:
    result = Function(function.name, entry_label=function.entry_label)
    for block in function:
        result.add_block(BasicBlock(block.label, blocks[block.label]))
    return result


# ---------------------------------------------------------------------------
# constant folding


def _fold_block(ops: List[Operation]) -> List[Operation]:
    constants: Dict[Reg, Number] = {}
    out: List[Operation] = []

    def value_of(operand: Operand) -> Optional[Number]:
        if isinstance(operand, Imm):
            return operand.value
        return constants.get(operand)

    for op in ops:
        if is_alu(op.opcode):
            values = [value_of(s) for s in op.srcs]
            if all(v is not None for v in values):
                folded = evaluator(op.opcode)(*values)
                constants[op.dest] = folded
                out.append(
                    Operation(opcode=Opcode.MOV, dest=op.dest, srcs=(Imm(folded),))
                )
                continue
            constants.pop(op.dest, None)
            out.append(op)
            continue
        if op.opcode is Opcode.BRCOND:
            cond = value_of(op.srcs[0])
            if cond is not None:
                target = op.targets[0] if cond != 0 else op.targets[1]
                out.append(Operation(opcode=Opcode.BR, targets=(target,)))
                continue
        for reg in op.defs():
            constants.pop(reg, None)
        out.append(op)
    return out


def constant_folding(function: Function) -> Function:
    """Fold constant ALU chains and constant conditional branches."""
    return _rebuild(
        function, {b.label: _fold_block(list(b.operations)) for b in function}
    )


# ---------------------------------------------------------------------------
# copy propagation


def _propagate_block(ops: List[Operation]) -> List[Operation]:
    copies: Dict[Reg, Reg] = {}
    out: List[Operation] = []

    def resolve(operand: Operand) -> Operand:
        if isinstance(operand, Reg):
            return copies.get(operand, operand)
        return operand

    for op in ops:
        new_srcs = tuple(resolve(s) for s in op.srcs)
        new_op = op
        if new_srcs != op.srcs:
            new_op = Operation(
                opcode=op.opcode,
                dest=op.dest,
                srcs=new_srcs,
                offset=op.offset,
                targets=op.targets,
            )
        # Invalidate copies killed by this definition.
        for reg in new_op.defs():
            copies.pop(reg, None)
            for key in [k for k, v in copies.items() if v == reg]:
                copies.pop(key)
        # Record a fresh register copy.
        if (
            new_op.opcode is Opcode.MOV
            and isinstance(new_op.srcs[0], Reg)
            and new_op.dest != new_op.srcs[0]
        ):
            copies[new_op.dest] = new_op.srcs[0]
        out.append(new_op)
    return out


def copy_propagation(function: Function) -> Function:
    """Forward register copies to their uses within each block."""
    return _rebuild(
        function, {b.label: _propagate_block(list(b.operations)) for b in function}
    )


# ---------------------------------------------------------------------------
# dead code elimination


def dead_code_elimination(function: Function) -> Function:
    """Drop side-effect-free ops whose results are never read.

    A definition is dead when no later operation in the block reads it
    before it is redefined and it is not live out of the block.  Stores,
    branches and halt always survive.
    """
    liveness = compute_liveness(function)
    blocks: Dict[str, List[Operation]] = {}
    for block in function:
        live: set[Reg] = set(liveness.live_out[block.label])
        keep_reversed: List[Operation] = []
        for op in reversed(block.operations):
            defs = set(op.defs())
            needed = (
                op.has_side_effect
                or op.opcode is Opcode.HALT
                or bool(defs & live)
            )
            if needed:
                keep_reversed.append(op)
                live -= defs
                live |= set(op.uses())
        blocks[block.label] = list(reversed(keep_reversed))
    return _rebuild(function, blocks)


# ---------------------------------------------------------------------------
# the pipeline


DEFAULT_PASSES = (constant_folding, copy_propagation, dead_code_elimination)


def optimize_function(
    function: Function,
    passes=DEFAULT_PASSES,
    max_iterations: int = 8,
) -> Function:
    """Run the pass pipeline to a fixpoint (bounded)."""
    current = function
    for _ in range(max_iterations):
        before = _shape(current)
        for pass_fn in passes:
            current = pass_fn(current)
        if _shape(current) == before:
            break
    return current


def optimize_program(program, passes=DEFAULT_PASSES, max_iterations: int = 8):
    """Optimise every function of a program (returns a new program)."""
    from repro.ir.program import Program

    result = Program(program.name, main=program.main_name)
    for function in program:
        result.add_function(optimize_function(function, passes, max_iterations))
    result.initial_memory.update(program.initial_memory)
    result.initial_registers.update(program.initial_registers)
    return result


def function_shape(function: Function) -> tuple:
    """A structural fingerprint of a function, insensitive to operation
    ids — used for fixpoint detection here and change detection in the
    pass manager (:mod:`repro.compiler`)."""
    return tuple(
        (block.label, tuple(str(op).split(": ", 1)[1] for op in block))
        for block in function
    )


_shape = function_shape
