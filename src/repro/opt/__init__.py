"""Classical block-local optimisations run ahead of scheduling."""

from repro.opt.passes import (
    DEFAULT_PASSES,
    constant_folding,
    copy_propagation,
    dead_code_elimination,
    optimize_function,
    optimize_program,
)

__all__ = [
    "DEFAULT_PASSES",
    "constant_folding",
    "copy_propagation",
    "dead_code_elimination",
    "optimize_function",
    "optimize_program",
]
