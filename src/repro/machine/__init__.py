"""Machine descriptions (HPL-PD/Playdoh stand-in): units, widths, latencies."""

from repro.machine.configs import PLAYDOH_4W, PLAYDOH_8W, UNLIMITED, by_name
from repro.machine.description import DEFAULT_LATENCIES, MachineDescription
from repro.machine.resources import FUPool, ReservationTable

__all__ = [
    "DEFAULT_LATENCIES",
    "FUPool",
    "MachineDescription",
    "PLAYDOH_4W",
    "PLAYDOH_8W",
    "ReservationTable",
    "UNLIMITED",
    "by_name",
]
