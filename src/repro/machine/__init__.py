"""Machine descriptions (HPL-PD/Playdoh stand-in): units, widths, latencies.

Machines exist in two forms: the declarative, serialisable
:class:`MachineSpec` (canonical JSON/TOML form, content-hash
``fingerprint()``) and the runtime :class:`MachineDescription` that the
schedulers and engines consume (``spec.build()`` / ``machine.spec()``
convert losslessly).  The registry in :mod:`repro.machine.configs` holds
the predefined configurations; :func:`by_name` resolves registry names
or spec-file paths.
"""

from repro.machine.configs import (
    PLAYDOH_4W,
    PLAYDOH_4W_SPEC,
    PLAYDOH_8W,
    PLAYDOH_8W_SPEC,
    UNLIMITED,
    UNLIMITED_SPEC,
    by_name,
    register_machine,
    registry_names,
    spec_by_name,
)
from repro.machine.description import DEFAULT_LATENCIES, MachineDescription
from repro.machine.predictor import PREDICTOR_KINDS, PredictorSpec
from repro.machine.resources import FUPool, ReservationTable
from repro.machine.spec import (
    MACHINE_SCHEMA_VERSION,
    MachineSpec,
    load_spec,
    machine_fingerprint,
)

__all__ = [
    "DEFAULT_LATENCIES",
    "FUPool",
    "MACHINE_SCHEMA_VERSION",
    "MachineDescription",
    "MachineSpec",
    "PLAYDOH_4W",
    "PLAYDOH_4W_SPEC",
    "PLAYDOH_8W",
    "PLAYDOH_8W_SPEC",
    "PREDICTOR_KINDS",
    "PredictorSpec",
    "ReservationTable",
    "UNLIMITED",
    "UNLIMITED_SPEC",
    "by_name",
    "load_spec",
    "machine_fingerprint",
    "register_machine",
    "registry_names",
    "spec_by_name",
]
