"""Command-line introspection for machine specs.

Usage::

    python -m repro.machine list                # registry contents
    python -m repro.machine show playdoh-4w     # one spec, human form
    python -m repro.machine show machines/x.toml --json
    python -m repro.machine digest playdoh-8w   # content fingerprint
    python -m repro.machine digest              # all registry machines
    python -m repro.machine diff playdoh-4w playdoh-8w

Mirrors ``python -m repro.compiler``: ``show --json`` prints the exact
canonical (cache-key) form, ``digest`` the fingerprints job keys embed,
and ``diff`` the canonical fields where two machines disagree.  Every
spec argument accepts a registry name or a ``.json``/``.toml`` file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.machine.configs import registry_names, spec_by_name
from repro.machine.spec import MachineSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.machine",
        description="Inspect declarative machine configurations.",
    )
    sub = parser.add_subparsers(dest="command")

    list_cmd = sub.add_parser("list", help="print the machine registry")
    list_cmd.add_argument(
        "--json", action="store_true",
        help="emit {name: canonical spec} instead of the summary table",
    )

    show = sub.add_parser(
        "show", help="print one machine spec in full"
    )
    show.add_argument("spec", metavar="NAME|SPEC-FILE")
    show.add_argument(
        "--json", action="store_true",
        help="emit the canonical (cache-key) form instead of text",
    )

    digest = sub.add_parser(
        "digest",
        help="print content fingerprints (what runner job keys embed)",
    )
    digest.add_argument(
        "specs", metavar="NAME|SPEC-FILE", nargs="*",
        help="machines to fingerprint (default: the whole registry)",
    )

    diff = sub.add_parser(
        "diff", help="print canonical fields where two machines disagree"
    )
    diff.add_argument("left", metavar="NAME|SPEC-FILE")
    diff.add_argument("right", metavar="NAME|SPEC-FILE")
    return parser


def _resolve(ref: str) -> MachineSpec:
    return spec_by_name(ref)


def _run_list(as_json: bool) -> int:
    names = registry_names()
    if as_json:
        payload = {name: spec_by_name(name).canonical() for name in names}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for name in names:
        spec = spec_by_name(name)
        units = ", ".join(
            f"{fu.value}:{count}" for fu, count in spec.units.items()
        )
        print(
            f"{name:<12} {spec.issue_width}-wide  [{units}]  "
            f"{spec.fingerprint()[:12]}"
        )
    return 0


def _run_show(ref: str, as_json: bool) -> int:
    spec = _resolve(ref)
    if as_json:
        payload = {
            "fingerprint": spec.fingerprint(),
            "machine": spec.canonical(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(spec)
    return 0


def _run_digest(refs: List[str]) -> int:
    names = refs or list(registry_names())
    for ref in names:
        spec = _resolve(ref)
        print(f"{spec.name} {spec.fingerprint()}")
    return 0


def _flatten(prefix: str, value: Any, out: Dict[str, Any]) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)
    else:
        out[prefix] = value


def _run_diff(left_ref: str, right_ref: str) -> int:
    left, right = _resolve(left_ref), _resolve(right_ref)
    if left.fingerprint() == right.fingerprint():
        print(f"identical: {left.fingerprint()}")
        return 0
    flat: Tuple[Dict[str, Any], Dict[str, Any]] = ({}, {})
    _flatten("", left.canonical(), flat[0])
    _flatten("", right.canonical(), flat[1])
    width = max(len(k) for k in set(flat[0]) | set(flat[1]))
    print(f"--- {left.name} ({left.fingerprint()[:12]})")
    print(f"+++ {right.name} ({right.fingerprint()[:12]})")
    missing = object()
    for key in sorted(set(flat[0]) | set(flat[1])):
        a, b = flat[0].get(key, missing), flat[1].get(key, missing)
        if a == b:
            continue
        a_text = "<absent>" if a is missing else json.dumps(a)
        b_text = "<absent>" if b is missing else json.dumps(b)
        print(f"  {key:<{width}}  {a_text} -> {b_text}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command in (None, "list"):
            return _run_list(getattr(args, "json", False))
        if args.command == "show":
            return _run_show(args.spec, args.json)
        if args.command == "digest":
            return _run_digest(args.specs)
        if args.command == "diff":
            return _run_diff(args.left, args.right)
    except (KeyError, ValueError) as exc:
        message = str(exc)
        # KeyError reprs its argument; unwrap for readability.
        if isinstance(exc, KeyError) and exc.args:
            message = str(exc.args[0])
        print(message, file=sys.stderr)
        return 2
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
