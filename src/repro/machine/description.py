"""Machine descriptions: issue width, functional units and latencies.

This module stands in for the HPL-PD machine-description (MDES) files of
Trimaran.  A description answers two questions for the schedulers and the
execution engines: *where* can an opcode execute (``fu_class``) and *how
long* does it take (``latency``).

The paper modifies the machine description rather than adding functional
units (section 3): the check-prediction form runs on a memory unit with
the latency of the original load plus compare semantics, and ``LdPred``
runs on an integer unit like a move whose source is the value predictor.
Those choices are encoded in :meth:`MachineDescription.latency`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.ir.opcodes import FUClass, Opcode, fu_class
from repro.machine.predictor import PredictorSpec
from repro.machine.resources import FUPool

#: Default operation latencies, in cycles.  Unit-latency integer ALU ops
#: and 3-cycle loads match the worked example of the paper (Figure 2);
#: the remaining entries follow common HPL-PD settings.
DEFAULT_LATENCIES: Mapping[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.DIV: 8,
    Opcode.MOD: 8,
    Opcode.FADD: 2,
    Opcode.FSUB: 2,
    Opcode.FMUL: 3,
    Opcode.FDIV: 8,
    Opcode.FSQRT: 12,
    Opcode.LOAD: 3,
    Opcode.STORE: 1,
    Opcode.BR: 1,
    Opcode.BRCOND: 1,
    Opcode.HALT: 1,
    Opcode.LDPRED: 1,
    # CHKPRED latency is derived from LOAD (plus optional compare cost)
    # inside MachineDescription.latency.
}


@dataclass(frozen=True)
class MachineDescription:
    """A VLIW machine configuration.

    Attributes:
        name: human-readable configuration name (e.g. ``playdoh-4w``).
        issue_width: operations per VLIW instruction.
        pool: functional-unit pool.
        latencies: per-opcode latency overrides; opcodes absent from the
            mapping default to 1 cycle.
        branch_penalty: cycles lost on a taken branch redirect; only the
            statically-scheduled recovery baseline (reference [4] of the
            paper) pays this, since the proposed architecture adds no
            recovery branches.
        check_compare_cost: extra cycles the check-prediction form spends
            comparing the loaded value against the prediction (0 keeps the
            paper's worked-example timing, where the check completes with
            the load's own latency).
        ccb_capacity: Compensation Code Buffer entries; ``None`` models the
            paper's unbounded buffer.
        ovb_capacity: Operand Value Buffer entries; ``None`` is unbounded.
        sync_width: Synchronization-register width in bits.
        predictor: the hardware value predictor this machine ships.
    """

    name: str
    issue_width: int
    pool: FUPool
    latencies: Mapping[Opcode, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    branch_penalty: int = 2
    check_compare_cost: int = 0
    ccb_capacity: Optional[int] = None
    ovb_capacity: Optional[int] = None
    sync_width: int = 64
    predictor: PredictorSpec = field(default_factory=PredictorSpec)

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        if self.pool.total < 1:
            raise ValueError("machine needs at least one functional unit")
        for opcode, lat in self.latencies.items():
            if lat < 1:
                raise ValueError(f"latency of {opcode.value} must be >= 1")
        for label, capacity in (
            ("ccb_capacity", self.ccb_capacity),
            ("ovb_capacity", self.ovb_capacity),
        ):
            if capacity is not None and capacity < 1:
                raise ValueError(f"{label} must be positive or None")
        if self.sync_width < 1:
            raise ValueError("sync_width must be positive")
        # Canonical latency order: a machine rebuilt from its spec's
        # canonical JSON must be byte-identical (pickle included) to the
        # original, whatever order the caller's mapping carried.
        object.__setattr__(
            self,
            "latencies",
            dict(sorted(self.latencies.items(), key=lambda kv: kv[0].value)),
        )

    # -- queries -----------------------------------------------------------

    def latency(self, opcode: Opcode) -> int:
        """Cycles from issue to result availability for ``opcode``."""
        if opcode is Opcode.CHKPRED:
            return self.latencies.get(Opcode.LOAD, 1) + self.check_compare_cost
        return self.latencies.get(opcode, 1)

    def fu_class(self, opcode: Opcode) -> FUClass:
        return fu_class(opcode)

    def units(self, fu: FUClass) -> int:
        return self.pool.count(fu)

    def spec(self):
        """The declarative :class:`repro.machine.spec.MachineSpec` form of
        this description (lossless; ``spec().build()`` round-trips)."""
        from repro.machine.spec import MachineSpec

        return MachineSpec.from_description(self)

    def fingerprint(self) -> str:
        """Stable content hash of the canonical spec form.  Runner job
        keys and the service wire format address machines by this."""
        return self.spec().fingerprint()

    # -- derivation ----------------------------------------------------------

    def widened(self, factor: int, name: Optional[str] = None) -> "MachineDescription":
        """A machine with ``factor``-times the issue width and units.

        This is how the Table 4 experiment derives the 8-wide machine from
        the 4-wide one.
        """
        return replace(
            self,
            name=name or f"{self.name}-x{factor}",
            issue_width=self.issue_width * factor,
            pool=self.pool.scaled(factor),
        )

    def with_latency(self, opcode: Opcode, cycles: int) -> "MachineDescription":
        new = dict(self.latencies)
        new[opcode] = cycles
        return replace(self, latencies=new)

    def __str__(self) -> str:
        return f"{self.name}: {self.issue_width}-wide, units {self.pool}"
