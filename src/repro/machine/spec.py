"""Declarative, serialisable machine specifications.

A :class:`MachineSpec` is the *data* form of a VLIW machine
configuration: issue width, functional-unit pool, per-opcode latencies,
branch penalty, Compensation-Code-Buffer and Operand-Value-Buffer
capacities, Synchronization-register width, the value-predictor choice
plus table geometry, and (optionally) non-default speculation-pass
defaults.  It mirrors :class:`repro.compiler.PipelineConfig`: specs are
frozen dataclasses with a canonical JSON-primitive form
(:meth:`canonical`) and a stable content hash (:meth:`fingerprint`) that
addresses runner cache entries and service wire payloads.

The runtime object the schedulers and engines consume remains
:class:`repro.machine.description.MachineDescription`; :meth:`build`
materialises one and :meth:`from_description` recovers the spec, and the
two round-trip losslessly.  Specs load from JSON or TOML files
(:func:`load_spec`), so machine configurations can live beside the code
as reviewable data and be swept by :mod:`repro.explore`.

The spec *name* is part of the canonical form: simulation results embed
the machine name (``ProgramSimResult.machine_name``), so two otherwise
identical machines with different names must not share cache entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.ir.opcodes import FUClass, Opcode
from repro.machine.description import DEFAULT_LATENCIES, MachineDescription
from repro.machine.predictor import PredictorSpec
from repro.machine.resources import FUPool

#: Bump when the canonical serialisation changes shape.  Part of every
#: fingerprint, hence of every runner cache key and wire payload.
MACHINE_SCHEMA_VERSION = 1

#: Canonical-form fields a spec file may set (everything else is rejected
#: loudly rather than silently ignored).
_FIELDS = (
    "name",
    "issue_width",
    "units",
    "latencies",
    "branch_penalty",
    "check_compare_cost",
    "ccb_capacity",
    "ovb_capacity",
    "sync_width",
    "predictor",
    "speculation",
)

#: Speculation defaults a spec may carry (mirrors
#: :class:`repro.core.speculation.SpeculationConfig`).
_SPECULATION_FIELDS = (
    "threshold",
    "max_predictions",
    "sync_width",
    "min_profile_executions",
    "speculate_liveout",
    "predict_alu",
)


def _default_latencies() -> Dict[Opcode, int]:
    return dict(DEFAULT_LATENCIES)


@dataclass(frozen=True)
class MachineSpec:
    """One machine configuration as canonical, serialisable data.

    Attributes:
        name: configuration name; embedded in simulation results, so it
            is part of the fingerprint.
        issue_width: operations per VLIW instruction.
        units: functional-unit counts per :class:`FUClass`.
        latencies: per-opcode latencies; absent opcodes default to 1.
        branch_penalty: taken-branch redirect cost (baseline machine).
        check_compare_cost: extra cycles of the check-prediction form.
        ccb_capacity: Compensation Code Buffer entries (None = unbounded,
            the paper's simulation).
        ovb_capacity: Operand Value Buffer entries (None = unbounded).
        sync_width: Synchronization-register width in bits; caps how many
            values a block may have in flight speculatively.
        predictor: hardware value-predictor choice + table geometry.
        speculation: non-default speculation-pass knobs, as a plain
            mapping over :data:`_SPECULATION_FIELDS` (None = the pass
            defaults).  Experiments may still override per run; this is
            the machine's *default* configuration, which the explore
            driver sweeps.
    """

    name: str
    issue_width: int
    units: Mapping[FUClass, int]
    latencies: Mapping[Opcode, int] = field(default_factory=_default_latencies)
    branch_penalty: int = 2
    check_compare_cost: int = 0
    ccb_capacity: Optional[int] = None
    ovb_capacity: Optional[int] = None
    sync_width: int = 64
    predictor: PredictorSpec = field(default_factory=PredictorSpec)
    speculation: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        self.validate()

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` on any inconsistent field combination."""
        if not self.name:
            raise ValueError("machine spec needs a non-empty name")
        if self.issue_width < 1:
            raise ValueError("issue width must be positive")
        for fu, count in self.units.items():
            if not isinstance(fu, FUClass):
                raise ValueError(f"unit key {fu!r} is not a FUClass")
            if count < 0:
                raise ValueError(f"negative unit count for {fu.value}")
        if sum(self.units.values()) < 1:
            raise ValueError("machine needs at least one functional unit")
        for opcode, lat in self.latencies.items():
            if not isinstance(opcode, Opcode):
                raise ValueError(f"latency key {opcode!r} is not an Opcode")
            if lat < 1:
                raise ValueError(f"latency of {opcode.value} must be >= 1")
        if self.branch_penalty < 0:
            raise ValueError("branch penalty cannot be negative")
        if self.check_compare_cost < 0:
            raise ValueError("check compare cost cannot be negative")
        for label, capacity in (
            ("ccb_capacity", self.ccb_capacity),
            ("ovb_capacity", self.ovb_capacity),
        ):
            if capacity is not None and capacity < 1:
                raise ValueError(f"{label} must be positive or None")
        if self.sync_width < 1:
            raise ValueError("sync_width must be positive")
        if self.speculation is not None:
            unknown = set(self.speculation) - set(_SPECULATION_FIELDS)
            if unknown:
                raise ValueError(
                    "unknown speculation field(s): "
                    + ", ".join(sorted(str(u) for u in unknown))
                )

    # -- canonical form / fingerprint -------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """JSON-primitive form: enum keys become their string values,
        floats go through ``repr`` so the hash sees full precision."""
        speculation: Optional[Dict[str, Any]] = None
        if self.speculation is not None:
            speculation = {}
            for key in sorted(self.speculation):
                value = self.speculation[key]
                speculation[key] = repr(value) if isinstance(value, float) else value
        return {
            "schema": MACHINE_SCHEMA_VERSION,
            "name": self.name,
            "issue_width": self.issue_width,
            "units": {
                fu.value: count
                for fu, count in sorted(self.units.items(), key=lambda kv: kv[0].value)
                if count
            },
            "latencies": {
                op.value: lat
                for op, lat in sorted(self.latencies.items(), key=lambda kv: kv[0].value)
            },
            "branch_penalty": self.branch_penalty,
            "check_compare_cost": self.check_compare_cost,
            "ccb_capacity": self.ccb_capacity,
            "ovb_capacity": self.ovb_capacity,
            "sync_width": self.sync_width,
            "predictor": self.predictor.canonical(),
            "speculation": speculation,
        }

    def fingerprint(self) -> str:
        """Stable content hash of the canonical form."""
        text = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.canonical(), indent=indent, sort_keys=True) + "\n"

    # -- parsing -----------------------------------------------------------

    @classmethod
    def from_canonical(cls, payload: Mapping[str, Any]) -> "MachineSpec":
        """Parse the canonical (or a hand-written spec-file) mapping.

        Unknown fields raise; a ``schema`` newer than this code refuses
        loudly rather than guessing.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"machine spec must be a mapping, got {payload!r}")
        data = dict(payload)
        schema = data.pop("schema", MACHINE_SCHEMA_VERSION)
        if schema != MACHINE_SCHEMA_VERSION:
            raise ValueError(
                f"machine spec schema v{schema} is not supported "
                f"(this code reads v{MACHINE_SCHEMA_VERSION})"
            )
        unknown = set(data) - set(_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown machine spec field(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(_FIELDS)}"
            )
        if "name" not in data or "issue_width" not in data or "units" not in data:
            raise ValueError("machine spec needs at least name, issue_width, units")
        try:
            units = {FUClass(k): int(v) for k, v in dict(data["units"]).items()}
        except ValueError as exc:
            raise ValueError(
                f"bad unit class in spec: {exc}; "
                f"known: {', '.join(f.value for f in FUClass)}"
            ) from None
        kwargs: Dict[str, Any] = {
            "name": data["name"],
            "issue_width": int(data["issue_width"]),
            "units": units,
        }
        if "latencies" in data:
            try:
                kwargs["latencies"] = {
                    Opcode(k): int(v) for k, v in dict(data["latencies"]).items()
                }
            except ValueError as exc:
                raise ValueError(f"bad opcode in spec latencies: {exc}") from None
        for name in (
            "branch_penalty",
            "check_compare_cost",
            "ccb_capacity",
            "ovb_capacity",
            "sync_width",
        ):
            if name in data and data[name] is not None:
                kwargs[name] = int(data[name])
            elif name in data:
                kwargs[name] = None
        if data.get("predictor") is not None:
            kwargs["predictor"] = PredictorSpec.from_canonical(dict(data["predictor"]))
        if data.get("speculation") is not None:
            speculation = dict(data["speculation"])
            for key, value in speculation.items():
                # Canonical floats travel as repr() strings.
                if isinstance(value, str) and key == "threshold":
                    speculation[key] = float(value)
            kwargs["speculation"] = speculation
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "MachineSpec":
        return cls.from_canonical(json.loads(text))

    @classmethod
    def from_description(cls, machine: MachineDescription) -> "MachineSpec":
        """The spec form of a runtime description (lossless round-trip)."""
        return cls(
            name=machine.name,
            issue_width=machine.issue_width,
            units=dict(machine.pool.counts),
            latencies=dict(machine.latencies),
            branch_penalty=machine.branch_penalty,
            check_compare_cost=machine.check_compare_cost,
            ccb_capacity=machine.ccb_capacity,
            ovb_capacity=machine.ovb_capacity,
            sync_width=machine.sync_width,
            predictor=machine.predictor,
        )

    # -- materialisation ---------------------------------------------------

    def build(self) -> MachineDescription:
        """The runtime :class:`MachineDescription` this spec describes."""
        return MachineDescription(
            name=self.name,
            issue_width=self.issue_width,
            pool=FUPool(dict(self.units)),
            latencies=dict(self.latencies),
            branch_penalty=self.branch_penalty,
            check_compare_cost=self.check_compare_cost,
            ccb_capacity=self.ccb_capacity,
            ovb_capacity=self.ovb_capacity,
            sync_width=self.sync_width,
            predictor=self.predictor,
        )

    def spec_config(self):
        """The :class:`~repro.core.speculation.SpeculationConfig` this
        machine defaults to: the pass defaults overlaid with the spec's
        ``speculation`` mapping, with the allocator width capped by the
        hardware ``sync_width``."""
        from repro.core.speculation import SpeculationConfig

        overrides = dict(self.speculation or {})
        config = SpeculationConfig(**overrides)
        if config.sync_width > self.sync_width:
            config = dataclasses.replace(config, sync_width=self.sync_width)
        return config

    # -- derivation --------------------------------------------------------

    def widened(self, factor: int, name: Optional[str] = None) -> "MachineSpec":
        """``factor``-times the issue width and every unit count (how the
        paper derives the 8-wide machine for Table 4)."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return dataclasses.replace(
            self,
            name=name or f"{self.name}-x{factor}",
            issue_width=self.issue_width * factor,
            units={fu: n * factor for fu, n in self.units.items()},
        )

    def with_latency(self, opcode: Opcode, cycles: int) -> "MachineSpec":
        new = dict(self.latencies)
        new[opcode] = cycles
        return dataclasses.replace(self, latencies=new)

    def with_units(self, **counts: int) -> "MachineSpec":
        """Override unit counts by class name, e.g. ``with_units(mem=2)``."""
        units = dict(self.units)
        for key, count in counts.items():
            units[FUClass(key)] = count
        return dataclasses.replace(self, units=units)

    def override(self, **fields: Any) -> "MachineSpec":
        """``dataclasses.replace`` with speculation-mapping merge semantics:
        ``speculation`` overrides merge into (rather than replace) the
        current mapping, and any field change re-validates."""
        if "speculation" in fields and fields["speculation"] is not None:
            merged = dict(self.speculation or {})
            merged.update(fields["speculation"])
            fields["speculation"] = merged
        return dataclasses.replace(self, **fields)

    def __str__(self) -> str:
        units = "+".join(
            f"{fu.value}x{n}"
            for fu, n in sorted(self.units.items(), key=lambda kv: kv[0].value)
            if n
        )
        return (
            f"{self.name}: {self.issue_width}-wide, units {units or '(empty)'}, "
            f"predictor {self.predictor}, fingerprint {self.fingerprint()[:12]}"
        )


# -- spec files ---------------------------------------------------------------


def load_spec(path: Union[str, Path]) -> MachineSpec:
    """Load a machine spec from a ``.json`` or ``.toml`` file.

    TOML needs ``tomllib`` (Python 3.11+); on older interpreters a TOML
    spec raises a clear error instead of an obscure import failure.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 fallback path
            raise ValueError(
                f"{path}: TOML machine specs need Python 3.11+ (tomllib); "
                "convert the spec to JSON for older interpreters"
            ) from None
        payload = tomllib.loads(text)
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from None
    try:
        return MachineSpec.from_canonical(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def machine_fingerprint(machine: Union[MachineSpec, MachineDescription]) -> str:
    """The content-hash fingerprint of a spec *or* a runtime description.

    This is what runner job keys and the service wire format address
    machines by.
    """
    if isinstance(machine, MachineSpec):
        return machine.fingerprint()
    return MachineSpec.from_description(machine).fingerprint()
