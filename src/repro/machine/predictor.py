"""Declarative value-predictor configuration.

A :class:`PredictorSpec` names the hardware value predictor a machine
ships (paper Figure 5) plus its table geometry — as *data*, so a whole
machine configuration (see :mod:`repro.machine.spec`) can be serialised,
fingerprinted and swept.  :meth:`PredictorSpec.build` materialises the
live :class:`repro.predict.base.ValuePredictor`; the default spec builds
exactly the paper's profile configuration (stride + order-2 FCM behind a
tournament chooser, unbounded table), so simulations that never mention
a predictor spec behave identically to the historical default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Predictor kinds a spec may name, in registry order.
PREDICTOR_KINDS = ("hybrid", "stride", "fcm", "dfcm", "last-value")


@dataclass(frozen=True)
class PredictorSpec:
    """Hardware value-predictor choice plus table geometry.

    Attributes:
        kind: one of :data:`PREDICTOR_KINDS`.
        table_entries: Value Prediction Table capacity (direct-mapped
            entries); ``None`` models the paper's unbounded table.
        fcm_order: history order of the (D)FCM component.
        table_bits: hash-table bits of the (D)FCM component.
        counter_max: saturation bound of the hybrid chooser counters.
    """

    kind: str = "hybrid"
    table_entries: Optional[int] = None
    fcm_order: int = 2
    table_bits: int = 16
    counter_max: int = 8

    def __post_init__(self) -> None:
        if self.kind not in PREDICTOR_KINDS:
            raise ValueError(
                f"unknown predictor kind {self.kind!r}; "
                f"available: {', '.join(PREDICTOR_KINDS)}"
            )
        if self.table_entries is not None and self.table_entries < 1:
            raise ValueError("predictor table_entries must be positive or None")
        if self.fcm_order < 1:
            raise ValueError("fcm_order must be >= 1")
        if self.table_bits < 1:
            raise ValueError("table_bits must be >= 1")
        if self.counter_max < 1:
            raise ValueError("counter_max must be >= 1")

    # -- canonical form ----------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """JSON-primitive form (stable key order is applied by the dump)."""
        return {
            "kind": self.kind,
            "table_entries": self.table_entries,
            "fcm_order": self.fcm_order,
            "table_bits": self.table_bits,
            "counter_max": self.counter_max,
        }

    @classmethod
    def from_canonical(cls, payload: Dict[str, Any]) -> "PredictorSpec":
        if not isinstance(payload, dict):
            raise ValueError(f"predictor spec must be a mapping, got {payload!r}")
        known = {f: payload[f] for f in payload}
        unknown = set(known) - {
            "kind", "table_entries", "fcm_order", "table_bits", "counter_max"
        }
        if unknown:
            raise ValueError(
                f"unknown predictor field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**known)

    # -- materialisation ---------------------------------------------------

    def build(self):
        """The live :class:`~repro.predict.base.ValuePredictor` this spec
        describes.  The default spec is byte-for-byte the historical
        :func:`repro.predict.hybrid.default_hybrid` configuration."""
        from repro.predict.dfcm import DFCMPredictor
        from repro.predict.fcm import FCMPredictor
        from repro.predict.hybrid import HybridPredictor
        from repro.predict.last_value import LastValuePredictor
        from repro.predict.stride import StridePredictor

        if self.kind == "stride":
            return StridePredictor()
        if self.kind == "fcm":
            return FCMPredictor(order=self.fcm_order, table_bits=self.table_bits)
        if self.kind == "dfcm":
            return DFCMPredictor(order=self.fcm_order, table_bits=self.table_bits)
        if self.kind == "last-value":
            return LastValuePredictor()
        return HybridPredictor(
            [
                StridePredictor(),
                FCMPredictor(order=self.fcm_order, table_bits=self.table_bits),
            ],
            counter_max=self.counter_max,
        )

    def __str__(self) -> str:
        table = "inf" if self.table_entries is None else str(self.table_entries)
        return f"{self.kind}(entries={table})"
