"""Functional-unit resources of a VLIW machine.

A machine owns a pool of functional units grouped by :class:`FUClass`.
The scheduler reserves one unit of the right class per operation per issue
cycle; the paper's key scaling experiment (Table 4) simply doubles this
pool (and the issue width) from the 4-wide to the 8-wide configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.ir.opcodes import FUClass


@dataclass(frozen=True)
class FUPool:
    """Counts of functional units per class.

    The mapping is normalised to a canonical (class-value-sorted) order
    at construction, so two pools with the same counts are identical
    objects down to their serialised bytes — the service wire format
    relies on rebuilt machines being indistinguishable from originals.
    """

    counts: Mapping[FUClass, int]

    def __post_init__(self) -> None:
        for fu, count in self.counts.items():
            if count < 0:
                raise ValueError(f"negative unit count for {fu}")
        object.__setattr__(
            self,
            "counts",
            dict(sorted(self.counts.items(), key=lambda kv: kv[0].value)),
        )

    def count(self, fu: FUClass) -> int:
        return self.counts.get(fu, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def scaled(self, factor: int) -> "FUPool":
        """A pool with every unit count multiplied by ``factor``."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return FUPool({fu: n * factor for fu, n in self.counts.items()})

    def __str__(self) -> str:
        parts = [f"{fu.value}x{n}" for fu, n in sorted(self.counts.items(), key=lambda kv: kv[0].value) if n]
        return "+".join(parts) or "(empty)"


class ReservationTable:
    """Per-cycle functional-unit reservations used during list scheduling.

    Cycle indices are dense small integers; a row is created lazily when a
    cycle is first touched.  ``issue_width`` bounds the number of
    operations started in one cycle regardless of unit availability
    (a VLIW instruction has a fixed number of slots).
    """

    def __init__(self, pool: FUPool, issue_width: int):
        if issue_width < 1:
            raise ValueError("issue width must be positive")
        self._pool = pool
        self._issue_width = issue_width
        self._limits: Dict[FUClass, int] = dict(pool.counts)
        self._used: Dict[int, Dict[FUClass, int]] = {}
        self._issued: Dict[int, int] = {}

    def can_issue(self, cycle: int, fu: FUClass) -> bool:
        if self._issued.get(cycle, 0) >= self._issue_width:
            return False
        used = self._used.get(cycle, {}).get(fu, 0)
        return used < self._limits.get(fu, 0)

    def try_issue(self, cycle: int, fu: FUClass) -> bool:
        """Reserve one ``fu`` unit in ``cycle`` if both an instruction
        slot and a unit are free; returns whether the reservation was
        made.  One dict walk instead of the ``can_issue`` + ``issue``
        pair — the list scheduler calls this once per heap pop."""
        issued = self._issued.get(cycle, 0)
        if issued >= self._issue_width:
            return False
        row = self._used.get(cycle)
        if row is None:
            row = self._used[cycle] = {}
        used = row.get(fu, 0)
        if used >= self._limits.get(fu, 0):
            return False
        row[fu] = used + 1
        self._issued[cycle] = issued + 1
        return True

    def issue(self, cycle: int, fu: FUClass) -> None:
        if not self.can_issue(cycle, fu):
            raise RuntimeError(f"no free {fu.value} unit in cycle {cycle}")
        self._used.setdefault(cycle, {}).setdefault(fu, 0)
        self._used[cycle][fu] += 1
        self._issued[cycle] = self._issued.get(cycle, 0) + 1

    def slots_used(self, cycle: int) -> int:
        return self._issued.get(cycle, 0)
