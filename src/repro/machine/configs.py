"""Predefined machine configurations used throughout the evaluation.

``PLAYDOH_4W`` is the paper's primary machine: a 4-issue VLIW with two
integer units, one floating-point unit, one memory unit and one branch
unit (the standard Trimaran/HPL-PD default configuration).  ``PLAYDOH_8W``
doubles everything, which is how the paper builds the wider machine for
the Table 4 scaling study.
"""

from __future__ import annotations

from repro.ir.opcodes import FUClass
from repro.machine.description import MachineDescription
from repro.machine.resources import FUPool

PLAYDOH_4W = MachineDescription(
    name="playdoh-4w",
    issue_width=4,
    pool=FUPool(
        {
            FUClass.IALU: 2,
            FUClass.FALU: 1,
            FUClass.MEM: 1,
            FUClass.BRANCH: 1,
        }
    ),
)

PLAYDOH_8W = MachineDescription(
    name="playdoh-8w",
    issue_width=8,
    pool=FUPool(
        {
            FUClass.IALU: 4,
            FUClass.FALU: 2,
            FUClass.MEM: 2,
            FUClass.BRANCH: 2,
        }
    ),
)

#: A machine wide enough to never bind on resources; used by unit tests to
#: isolate dependence-driven behaviour from resource contention.
UNLIMITED = MachineDescription(
    name="unlimited",
    issue_width=64,
    pool=FUPool(
        {
            FUClass.IALU: 64,
            FUClass.FALU: 64,
            FUClass.MEM: 64,
            FUClass.BRANCH: 64,
        }
    ),
)


def by_name(name: str) -> MachineDescription:
    """Look up a predefined configuration by name."""
    table = {m.name: m for m in (PLAYDOH_4W, PLAYDOH_8W, UNLIMITED)}
    try:
        return table[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(table)}"
        ) from None
