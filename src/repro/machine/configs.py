"""Predefined machine configurations used throughout the evaluation.

``PLAYDOH_4W`` is the paper's primary machine: a 4-issue VLIW with two
integer units, one floating-point unit, one memory unit and one branch
unit (the standard Trimaran/HPL-PD default configuration).  ``PLAYDOH_8W``
doubles everything, which is how the paper builds the wider machine for
the Table 4 scaling study.

Every constant is materialised from a declarative
:class:`~repro.machine.spec.MachineSpec` (the ``*_SPEC`` twins), and all
of them live in a registry built once at import time.  :func:`by_name`
resolves registry names *or* spec files — ``by_name("playdoh-4w")`` and
``by_name("machines/wide.toml")`` both work — so experiments and the
:mod:`repro.explore` driver never need to hard-code Python constants.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple, Union

from repro.ir.opcodes import FUClass
from repro.machine.description import MachineDescription
from repro.machine.spec import MachineSpec, load_spec

PLAYDOH_4W_SPEC = MachineSpec(
    name="playdoh-4w",
    issue_width=4,
    units={
        FUClass.IALU: 2,
        FUClass.FALU: 1,
        FUClass.MEM: 1,
        FUClass.BRANCH: 1,
    },
)

#: The Table 4 wide machine: the 4-wide spec, doubled.
PLAYDOH_8W_SPEC = PLAYDOH_4W_SPEC.widened(2, name="playdoh-8w")

#: A machine wide enough to never bind on resources; used by unit tests to
#: isolate dependence-driven behaviour from resource contention.
UNLIMITED_SPEC = MachineSpec(
    name="unlimited",
    issue_width=64,
    units={
        FUClass.IALU: 64,
        FUClass.FALU: 64,
        FUClass.MEM: 64,
        FUClass.BRANCH: 64,
    },
)

PLAYDOH_4W = PLAYDOH_4W_SPEC.build()
PLAYDOH_8W = PLAYDOH_8W_SPEC.build()
UNLIMITED = UNLIMITED_SPEC.build()

#: name -> (spec, built description).  Built once at import; the built
#: descriptions are the module constants themselves, so
#: ``by_name("playdoh-4w") is PLAYDOH_4W`` holds.
_REGISTRY: Dict[str, Tuple[MachineSpec, MachineDescription]] = {
    spec.name: (spec, machine)
    for spec, machine in (
        (PLAYDOH_4W_SPEC, PLAYDOH_4W),
        (PLAYDOH_8W_SPEC, PLAYDOH_8W),
        (UNLIMITED_SPEC, UNLIMITED),
    )
}


def registry_names() -> Tuple[str, ...]:
    """Registered machine names, in sorted order."""
    return tuple(sorted(_REGISTRY))


def register_machine(spec: MachineSpec, replace: bool = False) -> MachineDescription:
    """Add ``spec`` to the registry and return its built description.

    Registration makes the machine resolvable through :func:`by_name` and
    :func:`spec_by_name` for the rest of the process (tests and the
    explore driver use this for ad-hoc machines).
    """
    if spec.name in _REGISTRY and not replace:
        existing, machine = _REGISTRY[spec.name]
        if existing.fingerprint() == spec.fingerprint():
            return machine
        raise ValueError(
            f"machine {spec.name!r} is already registered with a different "
            f"configuration; pass replace=True to override"
        )
    machine = spec.build()
    _REGISTRY[spec.name] = (spec, machine)
    return machine


def _looks_like_path(name: str) -> bool:
    return (
        name.endswith(".json")
        or name.endswith(".toml")
        or "/" in name
        or "\\" in name
    )


def spec_by_name(name: Union[str, Path]) -> MachineSpec:
    """Resolve a registry name or a ``.json``/``.toml`` spec-file path to
    a :class:`MachineSpec`."""
    key = str(name)
    if key in _REGISTRY:
        return _REGISTRY[key][0]
    if _looks_like_path(key) or Path(key).exists():
        return load_spec(key)
    raise KeyError(
        f"unknown machine {key!r}; registered: {sorted(_REGISTRY)}; "
        f"or pass a path to a .json/.toml machine spec file"
    )


def by_name(name: Union[str, Path]) -> MachineDescription:
    """Resolve a registry name or spec-file path to a built description.

    Registry names return the shared module constants (identity is
    preserved: ``by_name('playdoh-4w') is PLAYDOH_4W``); spec files are
    loaded, validated and built on each call.
    """
    key = str(name)
    if key in _REGISTRY:
        return _REGISTRY[key][1]
    return spec_by_name(key).build()
