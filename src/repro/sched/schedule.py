"""Schedule data structures: scheduled operations and VLIW instructions.

A :class:`Schedule` is the output of the list scheduler for one basic
block: each operation is assigned an issue cycle, and operations sharing a
cycle form one VLIW instruction (a *MultiOp* in Trimaran terms).  The
schedule length — the paper's central block metric — is the cycle in which
the last result becomes available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.ir.operation import Operation
from repro.machine.description import MachineDescription


@dataclass(frozen=True, slots=True)
class ScheduledOp:
    """One operation placed at an issue cycle."""

    operation: Operation
    cycle: int
    latency: int

    @property
    def completion(self) -> int:
        """First cycle at which the result is available to consumers."""
        return self.cycle + self.latency

    def __str__(self) -> str:
        return f"@{self.cycle}(+{self.latency}) {self.operation}"


@dataclass(frozen=True, slots=True)
class VLIWInstruction:
    """All operations issued in one cycle (one long instruction word)."""

    cycle: int
    slots: tuple[ScheduledOp, ...]

    def __iter__(self) -> Iterator[ScheduledOp]:
        return iter(self.slots)

    def __len__(self) -> int:
        return len(self.slots)

    def __str__(self) -> str:
        ops = "; ".join(str(s.operation) for s in self.slots)
        return f"cycle {self.cycle}: [{ops}]"


class Schedule:
    """The static schedule of one basic block."""

    def __init__(self, label: str, machine: MachineDescription):
        self.label = label
        self.machine = machine
        self._by_op: Dict[int, ScheduledOp] = {}

    def place(self, operation: Operation, cycle: int, latency: Optional[int] = None) -> ScheduledOp:
        if operation.op_id in self._by_op:
            raise ValueError(f"operation {operation.op_id} scheduled twice")
        if cycle < 0:
            raise ValueError("issue cycle must be non-negative")
        lat = self.machine.latency(operation.opcode) if latency is None else latency
        placed = ScheduledOp(operation, cycle, lat)
        self._by_op[operation.op_id] = placed
        return placed

    # -- queries ------------------------------------------------------------

    def issue_cycle(self, op_id: int) -> int:
        return self._by_op[op_id].cycle

    def completion_cycle(self, op_id: int) -> int:
        return self._by_op[op_id].completion

    def scheduled(self, op_id: int) -> ScheduledOp:
        return self._by_op[op_id]

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._by_op

    def __len__(self) -> int:
        return len(self._by_op)

    @property
    def operations(self) -> List[ScheduledOp]:
        return sorted(self._by_op.values(), key=lambda s: (s.cycle, s.operation.op_id))

    @property
    def length(self) -> int:
        """Schedule length in cycles: when the last result is available.

        An empty schedule has length zero.
        """
        if not self._by_op:
            return 0
        return max(s.completion for s in self._by_op.values())

    @property
    def issue_cycles_used(self) -> int:
        """Number of distinct cycles in which at least one op issues."""
        return len({s.cycle for s in self._by_op.values()})

    def instructions(self) -> List[VLIWInstruction]:
        """Group scheduled ops into VLIW instructions by issue cycle."""
        by_cycle: Dict[int, List[ScheduledOp]] = {}
        for placed in self._by_op.values():
            by_cycle.setdefault(placed.cycle, []).append(placed)
        return [
            VLIWInstruction(cycle, tuple(sorted(ops, key=lambda s: s.operation.op_id)))
            for cycle, ops in sorted(by_cycle.items())
        ]

    def __str__(self) -> str:
        lines = [f"schedule {self.label} (length {self.length})"]
        lines.extend(f"  {instr}" for instr in self.instructions())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Schedule {self.label}: {len(self)} ops, length {self.length}>"
