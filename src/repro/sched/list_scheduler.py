"""Resource-constrained list scheduling of basic blocks.

The scheduler is the cycle-driven list scheduler of VLIW compilers: keep a
ready list ordered by priority (dependence height by default); each cycle,
issue ready operations into free functional units up to the issue width;
an operation becomes ready when every dependence predecessor has issued
and its edge distance has elapsed.

This single scheduler serves both the original code (paper Figure 2) and
the speculation-transformed code (Figure 3) — the transformation changes
the dependence graph, not the scheduling algorithm.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import PathAnalysis, analyze
from repro.ddg.graph import DependenceGraph
from repro.ir.block import BasicBlock
from repro.machine.description import MachineDescription
from repro.machine.resources import ReservationTable
from repro.sched.priorities import PRIORITY_FACTORIES, PriorityFn
from repro.sched.schedule import Schedule


class ListScheduler:
    """Schedules one dependence graph onto one machine."""

    def __init__(self, machine: MachineDescription, priority: str = "height"):
        if priority not in PRIORITY_FACTORIES:
            raise ValueError(
                f"unknown priority {priority!r}; available: {sorted(PRIORITY_FACTORIES)}"
            )
        self.machine = machine
        self.priority_name = priority

    def schedule_graph(
        self,
        label: str,
        graph: DependenceGraph,
        analysis: Optional["PathAnalysis"] = None,
    ) -> Schedule:
        """Produce a schedule for a pre-built dependence graph.

        ``analysis`` lets callers pass a precomputed (possibly shared)
        critical-path analysis of ``graph`` on this machine's latencies;
        when omitted it is computed here.
        """
        machine = self.machine
        if analysis is None:
            analysis = analyze(graph, machine)
        priority: PriorityFn = PRIORITY_FACTORIES[self.priority_name](analysis)

        schedule = Schedule(label, machine)
        if not len(graph):
            return schedule

        # Per-op facts hoisted out of the issue loop (the loop body runs
        # once per heap pop, which is the hottest path of a sweep).
        operation_of: dict[int, object] = {}
        remaining_preds: dict[int, int] = {}
        # earliest data-ready cycle given already-issued predecessors
        ready_at: dict[int, int] = {}
        fu_of: dict[int, object] = {}
        latency_of: dict[int, int] = {}

        # Max-heap of (negated priority, op_id) for ops whose preds have
        # all issued; an entry may still have ready_at in the future.
        # Keys are unique (the priority tie-breaks on op_id), so the pop
        # order is a pure function of the key set and heapify yields the
        # same schedule heappush-by-push would.
        heap: list[tuple[tuple, int]] = []
        for op in graph.operations:
            op_id = op.op_id
            operation_of[op_id] = op
            preds = len(graph.pred_edges(op_id))
            remaining_preds[op_id] = preds
            ready_at[op_id] = 0
            fu_of[op_id] = machine.fu_class(op.opcode)
            latency_of[op_id] = machine.latency(op.opcode)
            if preds == 0:
                heap.append((_neg(priority(op_id)), op_id))
        heapq.heapify(heap)

        table = ReservationTable(machine.pool, machine.issue_width)
        try_issue = table.try_issue
        successors = graph.succ_edges
        place = schedule.place
        heappush, heappop = heapq.heappush, heapq.heappop
        unscheduled = len(graph)
        cycle = 0
        guard = 0
        while unscheduled:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError(f"scheduler failed to converge on block {label!r}")

            # Issue passes repeat within the cycle because a zero-weight
            # (anti/control) edge can make an operation ready in the very
            # cycle its predecessor issues.
            while True:
                deferred: list[tuple[tuple, int]] = []
                issued_this_pass = False
                while heap:
                    key, op_id = heappop(heap)
                    if ready_at[op_id] > cycle or not try_issue(cycle, fu_of[op_id]):
                        deferred.append((key, op_id))
                        continue
                    place(operation_of[op_id], cycle, latency_of[op_id])
                    issued_this_pass = True
                    unscheduled -= 1
                    for edge in successors(op_id):
                        dst = edge.dst
                        ready = cycle + edge.weight
                        if ready > ready_at[dst]:
                            ready_at[dst] = ready
                        left = remaining_preds[dst] - 1
                        remaining_preds[dst] = left
                        if left == 0:
                            deferred.append((_neg(priority(dst)), dst))
                for item in deferred:
                    heappush(heap, item)
                if not issued_this_pass:
                    break
            cycle += 1

        return schedule

    def schedule_block(self, block: BasicBlock) -> Schedule:
        """Build the block's dependence graph and schedule it."""
        graph = build_ddg(block, self.machine)
        return self.schedule_graph(block.label, graph)


def _neg(key: tuple) -> tuple:
    """Negate a priority key so a min-heap yields the max first."""
    return tuple(-k for k in key)


def schedule_block(
    block: BasicBlock,
    machine: MachineDescription,
    priority: str = "height",
) -> Schedule:
    """Convenience wrapper: schedule one block on one machine."""
    return ListScheduler(machine, priority=priority).schedule_block(block)
