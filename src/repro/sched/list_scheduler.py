"""Resource-constrained list scheduling of basic blocks.

The scheduler is the cycle-driven list scheduler of VLIW compilers: keep a
ready list ordered by priority (dependence height by default); each cycle,
issue ready operations into free functional units up to the issue width;
an operation becomes ready when every dependence predecessor has issued
and its edge distance has elapsed.

This single scheduler serves both the original code (paper Figure 2) and
the speculation-transformed code (Figure 3) — the transformation changes
the dependence graph, not the scheduling algorithm.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.ddg.builder import build_ddg
from repro.ddg.critical_path import analyze
from repro.ddg.graph import DependenceGraph
from repro.ir.block import BasicBlock
from repro.machine.description import MachineDescription
from repro.machine.resources import ReservationTable
from repro.sched.priorities import PRIORITY_FACTORIES, PriorityFn
from repro.sched.schedule import Schedule


class ListScheduler:
    """Schedules one dependence graph onto one machine."""

    def __init__(self, machine: MachineDescription, priority: str = "height"):
        if priority not in PRIORITY_FACTORIES:
            raise ValueError(
                f"unknown priority {priority!r}; available: {sorted(PRIORITY_FACTORIES)}"
            )
        self.machine = machine
        self.priority_name = priority

    def schedule_graph(self, label: str, graph: DependenceGraph) -> Schedule:
        """Produce a schedule for a pre-built dependence graph."""
        machine = self.machine
        analysis = analyze(graph, machine)
        priority: PriorityFn = PRIORITY_FACTORIES[self.priority_name](analysis)

        schedule = Schedule(label, machine)
        if not len(graph):
            return schedule

        remaining_preds = {
            op.op_id: len(graph.predecessors(op.op_id)) for op in graph.operations
        }
        # earliest data-ready cycle given already-issued predecessors
        ready_at = {op.op_id: 0 for op in graph.operations}

        # Max-heap of (negated priority, op_id) for ops whose preds have
        # all issued; an entry may still have ready_at in the future.
        heap: list[tuple[tuple, int]] = []
        for op in graph.operations:
            if remaining_preds[op.op_id] == 0:
                heapq.heappush(heap, (_neg(priority(op.op_id)), op.op_id))

        table = ReservationTable(machine.pool, machine.issue_width)
        unscheduled = len(graph)
        cycle = 0
        guard = 0
        while unscheduled:
            guard += 1
            if guard > 1_000_000:
                raise RuntimeError(f"scheduler failed to converge on block {label!r}")

            # Issue passes repeat within the cycle because a zero-weight
            # (anti/control) edge can make an operation ready in the very
            # cycle its predecessor issues.
            while True:
                deferred: list[tuple[tuple, int]] = []
                issued_this_pass = False
                while heap:
                    key, op_id = heapq.heappop(heap)
                    op = graph.operation(op_id)
                    fu = machine.fu_class(op.opcode)
                    if ready_at[op_id] > cycle or not table.can_issue(cycle, fu):
                        deferred.append((key, op_id))
                        continue
                    table.issue(cycle, fu)
                    schedule.place(op, cycle)
                    issued_this_pass = True
                    unscheduled -= 1
                    for edge in graph.successors(op_id):
                        ready_at[edge.dst] = max(ready_at[edge.dst], cycle + edge.weight)
                        remaining_preds[edge.dst] -= 1
                        if remaining_preds[edge.dst] == 0:
                            deferred.append((_neg(priority(edge.dst)), edge.dst))
                for item in deferred:
                    heapq.heappush(heap, item)
                if not issued_this_pass:
                    break
            cycle += 1

        return schedule

    def schedule_block(self, block: BasicBlock) -> Schedule:
        """Build the block's dependence graph and schedule it."""
        graph = build_ddg(block, self.machine)
        return self.schedule_graph(block.label, graph)


def _neg(key: tuple) -> tuple:
    """Negate a priority key so a min-heap yields the max first."""
    return tuple(-k for k in key)


def schedule_block(
    block: BasicBlock,
    machine: MachineDescription,
    priority: str = "height",
) -> Schedule:
    """Convenience wrapper: schedule one block on one machine."""
    return ListScheduler(machine, priority=priority).schedule_block(block)
