"""List-scheduling priority functions.

A priority function maps an operation id to a sortable key; *larger* keys
schedule first.  The default — dependence height with source order as the
tie-break — is the classic choice and the one a Trimaran-style list
scheduler uses.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.ddg.critical_path import PathAnalysis

PriorityFn = Callable[[int], tuple]


def height_priority(analysis: PathAnalysis) -> PriorityFn:
    """Prefer operations with the greatest remaining dependence height."""

    def priority(op_id: int) -> tuple:
        return (analysis.height[op_id], -op_id)

    return priority


def slack_priority(analysis: PathAnalysis) -> PriorityFn:
    """Prefer operations with the least slack (most critical first)."""

    def priority(op_id: int) -> tuple:
        return (-analysis.slack(op_id), analysis.height[op_id], -op_id)

    return priority


def source_order_priority() -> PriorityFn:
    """Schedule in program order (a deliberately weak baseline)."""

    def priority(op_id: int) -> tuple:
        return (-op_id,)

    return priority


PRIORITY_FACTORIES: Dict[str, Callable[[PathAnalysis], PriorityFn]] = {
    "height": height_priority,
    "slack": slack_priority,
    "source": lambda analysis: source_order_priority(),
}
