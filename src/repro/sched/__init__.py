"""Resource-constrained list scheduling for VLIW blocks."""

from repro.sched.list_scheduler import ListScheduler, schedule_block
from repro.sched.priorities import (
    PRIORITY_FACTORIES,
    height_priority,
    slack_priority,
    source_order_priority,
)
from repro.sched.schedule import Schedule, ScheduledOp, VLIWInstruction

__all__ = [
    "ListScheduler",
    "PRIORITY_FACTORIES",
    "Schedule",
    "ScheduledOp",
    "VLIWInstruction",
    "height_priority",
    "schedule_block",
    "slack_priority",
    "source_order_priority",
]
