"""repro.bench — performance observability for the repro pipeline.

The subsystem that watches the repo's *own* speed, the way the paper
watched its machines': deterministic benchmark scenarios
(:mod:`repro.bench.scenarios`) timed by a warmup+repeats harness with
robust statistics (:mod:`repro.bench.harness`,
:mod:`repro.bench.stats`), schema-versioned ``BENCH_*.json`` artifacts,
threshold-gated artifact diffing (:mod:`repro.bench.compare`), and
cProfile hot-function attribution grouped by subsystem
(:mod:`repro.bench.profiler`).  The ``repro-bench`` CLI
(:mod:`repro.bench.cli`) fronts all of it.
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    CompareResult,
    ScenarioComparison,
    compare_artifacts,
    render_report,
)
from repro.bench.harness import (
    ARTIFACT_PREFIX,
    PRESETS,
    SCHEMA,
    BenchConfig,
    Measurement,
    code_fingerprint,
    host_fingerprint,
    load_artifact,
    make_artifact,
    measure,
    run_bench,
    run_scenario,
    scenario_entry,
    write_artifact,
)
from repro.bench.profiler import (
    HotFunction,
    ProfileReport,
    profile_scenario,
    render_profile,
    subsystem_of,
)
from repro.bench.scenarios import (
    SCENARIOS,
    BenchContext,
    BenchScenario,
    ScenarioRun,
    register_scenario,
    resolve_scenarios,
)
from repro.bench.stats import SampleStats, median, quantile, robust_stats

__all__ = [
    "ARTIFACT_PREFIX",
    "BenchConfig",
    "BenchContext",
    "BenchScenario",
    "CompareResult",
    "DEFAULT_THRESHOLD",
    "HotFunction",
    "Measurement",
    "PRESETS",
    "ProfileReport",
    "SCENARIOS",
    "SCHEMA",
    "SampleStats",
    "ScenarioComparison",
    "ScenarioRun",
    "code_fingerprint",
    "compare_artifacts",
    "host_fingerprint",
    "load_artifact",
    "make_artifact",
    "measure",
    "median",
    "profile_scenario",
    "quantile",
    "register_scenario",
    "render_profile",
    "render_report",
    "resolve_scenarios",
    "robust_stats",
    "run_bench",
    "run_scenario",
    "scenario_entry",
    "subsystem_of",
    "write_artifact",
]
