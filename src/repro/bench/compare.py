"""Artifact diffing and regression gating.

``repro-bench compare OLD NEW`` checks, per scenario present in the old
artifact, two signals against a ratio threshold ``R`` (default
:data:`DEFAULT_THRESHOLD`):

* **median wall time** — regressed when ``new > R * old``;
* **simulated cycles/sec** (when both artifacts carry the rate) —
  regressed when ``new < old / R``.

The command exits nonzero iff at least one scenario regressed (or a
scenario the baseline covers disappeared — an unverifiable perf claim
counts as a failure).  Scenarios only present in the new artifact are
reported as informational.  Improvements never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Allowed degradation ratio: 1.25 = up to 25% slower passes.
DEFAULT_THRESHOLD = 1.25

#: The throughput rate the gate watches (ISSUE: "cycles/sec").
RATE_KEY = "sim_cycles_per_s"


@dataclass
class ScenarioComparison:
    """Old-vs-new verdict for one scenario."""

    name: str
    status: str  # "ok" | "regressed" | "missing" | "new"
    wall_old: Optional[float] = None
    wall_new: Optional[float] = None
    wall_ratio: Optional[float] = None
    wall_regressed: bool = False
    rate_old: Optional[float] = None
    rate_new: Optional[float] = None
    rate_ratio: Optional[float] = None
    rate_regressed: bool = False
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "wall_old": self.wall_old,
            "wall_new": self.wall_new,
            "wall_ratio": self.wall_ratio,
            "wall_regressed": self.wall_regressed,
            "rate_old": self.rate_old,
            "rate_new": self.rate_new,
            "rate_ratio": self.rate_ratio,
            "rate_regressed": self.rate_regressed,
            "notes": list(self.notes),
        }


@dataclass
class CompareResult:
    """Whole-artifact comparison."""

    threshold: float
    scenarios: List[ScenarioComparison] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(
            s.status in ("regressed", "missing") for s in self.scenarios
        )

    @property
    def exit_code(self) -> int:
        return 1 if self.regressed else 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "regressed": self.regressed,
            "scenarios": [s.as_dict() for s in self.scenarios],
            "notes": list(self.notes),
        }


def _wall_median(entry: Mapping[str, Any]) -> Optional[float]:
    wall = entry.get("wall_s")
    if isinstance(wall, Mapping) and isinstance(
        wall.get("median"), (int, float)
    ):
        return float(wall["median"])
    return None


def _rate(entry: Mapping[str, Any]) -> Optional[float]:
    rates = entry.get("rates")
    if isinstance(rates, Mapping) and isinstance(
        rates.get(RATE_KEY), (int, float)
    ):
        return float(rates[RATE_KEY])
    return None


def compare_artifacts(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> CompareResult:
    if threshold < 1.0:
        raise ValueError("threshold is a degradation ratio and must be >= 1.0")
    result = CompareResult(threshold=threshold)
    for fingerprint in ("code_version", "pipeline_fingerprint"):
        if old.get(fingerprint) != new.get(fingerprint):
            result.notes.append(
                f"{fingerprint} differs: {old.get(fingerprint)!r} -> "
                f"{new.get(fingerprint)!r}"
            )
    if old.get("host") != new.get("host"):
        result.notes.append(
            "host fingerprints differ; absolute timings are not directly "
            "comparable"
        )

    old_scenarios: Mapping[str, Any] = old.get("scenarios", {})
    new_scenarios: Mapping[str, Any] = new.get("scenarios", {})
    for name, old_entry in old_scenarios.items():
        comparison = ScenarioComparison(name=name, status="ok")
        new_entry = new_scenarios.get(name)
        if new_entry is None:
            comparison.status = "missing"
            comparison.notes.append("scenario absent from the new artifact")
            result.scenarios.append(comparison)
            continue

        comparison.wall_old = _wall_median(old_entry)
        comparison.wall_new = _wall_median(new_entry)
        if comparison.wall_old and comparison.wall_new is not None:
            comparison.wall_ratio = comparison.wall_new / comparison.wall_old
            comparison.wall_regressed = comparison.wall_ratio > threshold

        comparison.rate_old = _rate(old_entry)
        comparison.rate_new = _rate(new_entry)
        if comparison.rate_old and comparison.rate_new is not None:
            comparison.rate_ratio = comparison.rate_new / comparison.rate_old
            comparison.rate_regressed = (
                comparison.rate_ratio < 1.0 / threshold
            )

        if comparison.wall_regressed or comparison.rate_regressed:
            comparison.status = "regressed"
        result.scenarios.append(comparison)

    for name in new_scenarios:
        if name not in old_scenarios:
            result.scenarios.append(
                ScenarioComparison(
                    name=name,
                    status="new",
                    notes=["scenario absent from the old artifact"],
                )
            )
    return result


def render_report(result: CompareResult) -> str:
    """Human-readable comparison table."""
    lines = [
        f"repro-bench compare (threshold {result.threshold:.2f}x)",
    ]
    lines.extend(f"note: {note}" for note in result.notes)
    header = (
        f"{'scenario':<20} {'wall old':>10} {'wall new':>10} {'ratio':>7} "
        f"{'cyc/s old':>12} {'cyc/s new':>12} {'ratio':>7}  verdict"
    )
    lines.append(header)
    lines.append("-" * len(header))

    def fmt(value: Optional[float], pattern: str) -> str:
        return pattern.format(value) if value is not None else "-"

    for s in result.scenarios:
        verdict = {
            "ok": "ok",
            "regressed": "REGRESSED",
            "missing": "MISSING",
            "new": "new",
        }[s.status]
        flags = []
        if s.wall_regressed:
            flags.append("wall")
        if s.rate_regressed:
            flags.append("cycles/s")
        if flags:
            verdict += f" ({', '.join(flags)})"
        lines.append(
            f"{s.name:<20} "
            f"{fmt(s.wall_old, '{:>10.4f}'):>10} "
            f"{fmt(s.wall_new, '{:>10.4f}'):>10} "
            f"{fmt(s.wall_ratio, '{:>7.3f}'):>7} "
            f"{fmt(s.rate_old, '{:>12,.0f}'):>12} "
            f"{fmt(s.rate_new, '{:>12,.0f}'):>12} "
            f"{fmt(s.rate_ratio, '{:>7.3f}'):>7}  {verdict}"
        )
    lines.append(
        "result: "
        + ("REGRESSION detected" if result.regressed else "no regression")
    )
    return "\n".join(lines)
