"""cProfile-based wall-time attribution for benchmark scenarios.

``repro-bench profile <scenario>`` runs one scenario iteration under
:mod:`cProfile` and renders two views of where the time went:

* the **top-N hot functions** (by cumulative or internal time), each
  tagged with the repro subsystem its file belongs to;
* a **per-subsystem rollup** of internal (self) time — how much of the
  run was spent inside ``core`` vs ``compiler`` vs ``runner`` vs
  ``obs`` vs everything else — which is the number the ROADMAP's
  "fast as the hardware allows" goal needs watched.

Attribution is by filename: a frame from ``src/repro/<pkg>/...`` maps
to its top-level package, collapsed through :data:`SUBSYSTEM_OF` into
the coarse groups used in reports; frames outside ``repro`` count as
``other`` (stdlib, site-packages).
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.scenarios import BenchContext, resolve_scenarios

#: Fine package -> coarse reporting subsystem.
SUBSYSTEM_OF: Dict[str, str] = {
    "core": "core",
    "compiler": "compiler",
    "opt": "compiler",
    "sched": "compiler",
    "regions": "compiler",
    "ir": "compiler",
    "ddg": "compiler",
    "runner": "runner",
    "obs": "obs",
    "bench": "obs",
    "profiling": "profiling",
    "trace": "trace",
    "predict": "core",
    "machine": "core",
    "workloads": "workloads",
    "evaluation": "evaluation",
}


def subsystem_of(filename: str) -> str:
    """Coarse subsystem for one profiled frame's source file."""
    marker = "repro/"
    index = filename.replace("\\", "/").rfind(marker)
    if index < 0:
        return "other"
    rest = filename.replace("\\", "/")[index + len(marker):]
    package = rest.split("/", 1)[0]
    if package.endswith(".py"):
        package = package[:-3]
    return SUBSYSTEM_OF.get(package, "other")


@dataclass
class HotFunction:
    """One row of the top-N report."""

    function: str
    file: str
    line: int
    subsystem: str
    calls: int
    tottime: float
    cumtime: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "file": self.file,
            "line": self.line,
            "subsystem": self.subsystem,
            "calls": self.calls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }


@dataclass
class ProfileReport:
    """Structured result of one profiled scenario run."""

    scenario: str
    sort: str
    total_time: float
    hot: List[HotFunction] = field(default_factory=list)
    by_subsystem: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "sort": self.sort,
            "total_time": self.total_time,
            "hot": [h.as_dict() for h in self.hot],
            "by_subsystem": dict(self.by_subsystem),
        }


def _rows_from_stats(stats: pstats.Stats) -> List[HotFunction]:
    rows: List[HotFunction] = []
    for (filename, line, func), (
        _primitive,
        calls,
        tottime,
        cumtime,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            HotFunction(
                function=func,
                file=filename,
                line=line,
                subsystem=subsystem_of(filename),
                calls=calls,
                tottime=tottime,
                cumtime=cumtime,
            )
        )
    return rows


def profile_scenario(
    name: str,
    ctx: BenchContext,
    *,
    top: int = 10,
    sort: str = "cumulative",
) -> ProfileReport:
    """Run one iteration of scenario ``name`` under cProfile."""
    if sort not in ("cumulative", "tottime"):
        raise ValueError("sort must be 'cumulative' or 'tottime'")
    (scenario,) = resolve_scenarios([name])
    state = scenario.prepare(ctx) if scenario.prepare is not None else None

    profile = cProfile.Profile()
    profile.enable()
    try:
        scenario.run(ctx, state)
    finally:
        profile.disable()

    stats = pstats.Stats(profile)
    rows = _rows_from_stats(stats)
    key = (lambda r: r.cumtime) if sort == "cumulative" else (lambda r: r.tottime)
    rows.sort(key=key, reverse=True)

    by_subsystem: Dict[str, float] = {}
    for row in rows:
        by_subsystem[row.subsystem] = (
            by_subsystem.get(row.subsystem, 0.0) + row.tottime
        )
    return ProfileReport(
        scenario=name,
        sort=sort,
        total_time=getattr(stats, "total_tt", sum(r.tottime for r in rows)),
        hot=rows[:top],
        by_subsystem=dict(
            sorted(by_subsystem.items(), key=lambda kv: kv[1], reverse=True)
        ),
    )


def _short_path(filename: str) -> str:
    marker = "repro/"
    index = filename.replace("\\", "/").rfind(marker)
    if index >= 0:
        return filename.replace("\\", "/")[index:]
    return filename.rsplit("/", 1)[-1]


def render_profile(report: ProfileReport) -> str:
    lines = [
        f"profile: scenario {report.scenario!r}, sorted by {report.sort}, "
        f"total {report.total_time:.3f}s",
        "",
        f"top {len(report.hot)} hot functions:",
        f"{'#':>3} {'subsystem':<10} {'calls':>9} {'tottime':>9} "
        f"{'cumtime':>9}  function",
    ]
    for index, row in enumerate(report.hot, 1):
        lines.append(
            f"{index:>3} {row.subsystem:<10} {row.calls:>9} "
            f"{row.tottime:>9.4f} {row.cumtime:>9.4f}  "
            f"{row.function} ({_short_path(row.file)}:{row.line})"
        )
    lines.append("")
    lines.append("self time by subsystem:")
    total = sum(report.by_subsystem.values()) or 1.0
    for subsystem, tottime in report.by_subsystem.items():
        share = 100.0 * tottime / total
        lines.append(f"  {subsystem:<10} {tottime:>9.4f}s  {share:5.1f}%")
    return "\n".join(lines)
