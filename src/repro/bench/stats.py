"""Robust statistics for benchmark timing samples.

Wall-clock samples from a shared host are contaminated by scheduler
noise, so everything downstream of the harness works from the median
and the interquartile range, with Tukey-fence outlier rejection
(1.5 x IQR beyond the quartiles) applied before the summary stats are
computed.  The raw samples always travel with the summary so a later
reader can re-derive anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence

#: Tukey fence multiplier used by :func:`robust_stats`.
TUKEY_K = 1.5


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of ``samples``; ``q`` in [0, 1]."""
    if not samples:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile fraction must be in [0, 1]")
    ordered = sorted(samples)
    rank = q * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def median(samples: Sequence[float]) -> float:
    return quantile(samples, 0.5)


@dataclass(frozen=True)
class SampleStats:
    """Summary of one timed series after outlier rejection."""

    n: int
    median: float
    mean: float
    iqr: float
    min: float
    max: float
    outliers_rejected: int
    samples: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "median": self.median,
            "mean": self.mean,
            "iqr": self.iqr,
            "min": self.min,
            "max": self.max,
            "outliers_rejected": self.outliers_rejected,
            "samples": list(self.samples),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SampleStats":
        return cls(
            n=int(data["n"]),
            median=float(data["median"]),
            mean=float(data["mean"]),
            iqr=float(data["iqr"]),
            min=float(data["min"]),
            max=float(data["max"]),
            outliers_rejected=int(data.get("outliers_rejected", 0)),
            samples=[float(v) for v in data.get("samples", [])],
        )


def reject_outliers(samples: Sequence[float], k: float = TUKEY_K) -> List[float]:
    """Samples inside the Tukey fences ``[q1 - k*iqr, q3 + k*iqr]``.

    With fewer than four samples the quartiles are too unstable to
    trust, so nothing is rejected.
    """
    if len(samples) < 4:
        return list(samples)
    q1 = quantile(samples, 0.25)
    q3 = quantile(samples, 0.75)
    spread = q3 - q1
    low = q1 - k * spread
    high = q3 + k * spread
    kept = [s for s in samples if low <= s <= high]
    # Degenerate spread (all-equal samples) must keep everything.
    return kept if kept else list(samples)


def robust_stats(samples: Sequence[float]) -> SampleStats:
    """Median/IQR summary of ``samples`` after Tukey outlier rejection.

    The returned ``samples`` field holds the *raw* series (pre-
    rejection); ``n`` and the summary numbers describe the kept subset.
    """
    if not samples:
        raise ValueError("robust_stats of an empty sequence")
    kept = reject_outliers(samples)
    return SampleStats(
        n=len(kept),
        median=median(kept),
        mean=sum(kept) / len(kept),
        iqr=quantile(kept, 0.75) - quantile(kept, 0.25),
        min=min(kept),
        max=max(kept),
        outliers_rejected=len(samples) - len(kept),
        samples=list(samples),
    )
