"""``repro-bench``: run, compare, and profile performance benchmarks.

Usage::

    repro-bench run                          # small preset, all scenarios
    repro-bench run --scale medium --scenarios table2,runner_scaling
    repro-bench run --repeats 5 --out-dir perf/
    repro-bench compare BENCH_old.json BENCH_new.json --threshold 1.25
    repro-bench compare old.json new.json --json     # machine-readable diff
    repro-bench profile table2 --top 10 --sort cumulative
    repro-bench list                         # registered scenarios

``run`` writes a schema-versioned ``BENCH_<stamp>.json`` artifact (host
and code fingerprints, per-scenario robust wall stats and throughput
rates) to ``--out-dir`` (default: the current directory).  ``compare``
exits nonzero iff a scenario's median wall time or simulated cycles/sec
regresses beyond the threshold ratio.  ``profile`` attributes one
scenario's wall time to hot functions, grouped by subsystem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench import compare as compare_mod
from repro.bench import harness, profiler
from repro.bench.scenarios import SCENARIOS, BenchContext


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Performance observability for the repro pipeline: timed "
            "benchmark scenarios, BENCH_*.json artifacts, regression "
            "gating, and profile attribution."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="time every scenario and write a BENCH_*.json artifact"
    )
    run.add_argument(
        "--scale",
        choices=sorted(harness.PRESETS),
        default="small",
        help="preset: workload scale + repeats + warmup (default: small)",
    )
    run.add_argument(
        "--scenarios",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict to these scenarios (repeatable, comma-separable)",
    )
    run.add_argument(
        "--repeats", type=int, default=None, help="override preset repeats"
    )
    run.add_argument(
        "--warmup", type=int, default=None, help="override preset warmup runs"
    )
    run.add_argument(
        "--benchmarks",
        action="append",
        metavar="NAME[,NAME...]",
        help="restrict the workload suite (repeatable, comma-separable)",
    )
    run.add_argument(
        "--out-dir",
        metavar="PATH",
        default=None,
        help="artifact directory (default: current directory)",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="also print the artifact payload to stdout",
    )

    cmp_parser = sub.add_parser(
        "compare",
        help="diff two artifacts; nonzero exit on regression",
    )
    cmp_parser.add_argument("old", help="baseline BENCH_*.json")
    cmp_parser.add_argument("new", help="candidate BENCH_*.json")
    cmp_parser.add_argument(
        "--threshold",
        type=float,
        default=compare_mod.DEFAULT_THRESHOLD,
        help=(
            "allowed degradation ratio (>= 1.0); e.g. 1.25 tolerates 25%% "
            f"slower (default: {compare_mod.DEFAULT_THRESHOLD})"
        ),
    )
    cmp_parser.add_argument(
        "--json", action="store_true", help="emit the diff as JSON"
    )

    prof = sub.add_parser(
        "profile", help="attribute one scenario's wall time to hot functions"
    )
    prof.add_argument("scenario", help="scenario name (see 'repro-bench list')")
    prof.add_argument(
        "--scale",
        choices=sorted(harness.PRESETS),
        default="small",
        help="workload scale preset (default: small)",
    )
    prof.add_argument(
        "--top", type=int, default=10, help="hot functions to report"
    )
    prof.add_argument(
        "--sort",
        choices=("cumulative", "tottime"),
        default="cumulative",
        help="ranking key (default: cumulative)",
    )
    prof.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    sub.add_parser("list", help="list registered scenarios")
    return parser


def _split(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    names: List[str] = []
    for chunk in values:
        names.extend(name for name in chunk.split(",") if name)
    return names or None


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        config = harness.BenchConfig.from_preset(
            args.scale,
            scenarios=_split(args.scenarios),
            repeats=args.repeats,
            warmup=args.warmup,
            benchmarks=_split(args.benchmarks),
        )
        artifact = harness.run_bench(
            config, progress=lambda line: print(line, file=sys.stderr)
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    path = harness.write_artifact(
        artifact, Path(args.out_dir) if args.out_dir else None
    )
    print(harness.main_banner(artifact))
    print(f"wrote {path}")
    if args.json:
        print(json.dumps(artifact, indent=2, sort_keys=True))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    try:
        old = harness.load_artifact(Path(args.old))
        new = harness.load_artifact(Path(args.new))
        result = compare_mod.compare_artifacts(
            old, new, threshold=args.threshold
        )
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(compare_mod.render_report(result))
    return result.exit_code


def _cmd_profile(args: argparse.Namespace) -> int:
    scale, _repeats, _warmup = harness.PRESETS[args.scale]
    ctx = BenchContext(workload_scale=scale)
    try:
        report = profiler.profile_scenario(
            args.scenario, ctx, top=args.top, sort=args.sort
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(profiler.render_profile(report))
    return 0


def _cmd_list() -> int:
    width = max(len(name) for name in SCENARIOS)
    for name, scenario in SCENARIOS.items():
        subsystems = ",".join(scenario.subsystems)
        print(f"{name:<{width}}  [{subsystems}]  {scenario.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "profile":
        return _cmd_profile(args)
    return _cmd_list()


if __name__ == "__main__":
    raise SystemExit(main())
