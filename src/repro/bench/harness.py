"""The benchmark harness: warmup, repeats, artifacts.

:func:`run_bench` times each registered scenario (warmup iterations
first, then ``repeats`` measured ones with a ``gc.collect()`` between
runs), summarises wall time with :func:`repro.bench.stats.robust_stats`,
derives per-run throughput rates from the scenario's work-unit counters
(``sim_cycles`` / wall -> ``sim_cycles_per_s``), and assembles a
schema-versioned artifact::

    BENCH_<UTC stamp>.json
      schema              "repro.bench/v1"
      created_utc         ISO-8601 stamp
      host                python/platform/machine/cpu_count fingerprint
      code_version        repro.runner CODE_VERSION
      pipeline_fingerprint  content hash of the standard compiler pipeline
      config              preset, workload scale, repeats, warmup, suite
      scenarios           per-scenario wall stats, counters, rates, extra

``repro-bench compare`` (:mod:`repro.bench.compare`) diffs two such
artifacts; :func:`measure` is the low-level timing primitive tests and
the runner-scaling benchmark reuse directly.
"""

from __future__ import annotations

import gc
import json
import platform
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.scenarios import (
    BenchContext,
    BenchScenario,
    ScenarioRun,
    resolve_scenarios,
)
from repro.bench.stats import SampleStats, robust_stats

#: Artifact schema identifier; bump on any incompatible layout change.
SCHEMA = "repro.bench/v1"

#: Filename prefix of every artifact the harness writes.
ARTIFACT_PREFIX = "BENCH_"

#: Scale presets: (workload scale, repeats, warmup).
PRESETS: Dict[str, Tuple[float, int, int]] = {
    "small": (0.25, 3, 1),
    "medium": (0.4, 5, 1),
    "full": (1.0, 5, 2),
}


@dataclass(frozen=True)
class BenchConfig:
    """Resolved harness configuration for one ``run`` invocation."""

    preset: str = "small"
    workload_scale: float = 0.25
    repeats: int = 3
    warmup: int = 1
    scenario_names: Tuple[str, ...] = ()
    benchmarks: Optional[Tuple[str, ...]] = None
    threshold: float = 0.65

    @classmethod
    def from_preset(
        cls,
        preset: str,
        *,
        scenarios: Optional[Sequence[str]] = None,
        repeats: Optional[int] = None,
        warmup: Optional[int] = None,
        benchmarks: Optional[Sequence[str]] = None,
        threshold: float = 0.65,
    ) -> "BenchConfig":
        if preset not in PRESETS:
            raise ValueError(
                f"unknown scale preset {preset!r}; available: {', '.join(PRESETS)}"
            )
        scale, preset_repeats, preset_warmup = PRESETS[preset]
        return cls(
            preset=preset,
            workload_scale=scale,
            repeats=repeats if repeats is not None else preset_repeats,
            warmup=warmup if warmup is not None else preset_warmup,
            scenario_names=tuple(scenarios or ()),
            benchmarks=tuple(benchmarks) if benchmarks else None,
            threshold=threshold,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "preset": self.preset,
            "workload_scale": self.workload_scale,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "scenarios": list(self.scenario_names),
            "benchmarks": list(self.benchmarks) if self.benchmarks else None,
            "threshold": self.threshold,
        }


def host_fingerprint() -> Dict[str, Any]:
    """Where a timing came from — enough to judge comparability."""
    import os

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def code_fingerprint() -> Dict[str, str]:
    """Code-side identity: runner CODE_VERSION + pipeline content hash."""
    from repro.compiler import standard_pipeline
    from repro.runner import CODE_VERSION

    return {
        "code_version": CODE_VERSION,
        "pipeline_fingerprint": standard_pipeline().fingerprint(),
    }


@dataclass
class Measurement:
    """Low-level result of :func:`measure`."""

    stats: SampleStats
    results: List[Any] = field(default_factory=list)


def measure(
    fn: Callable[[], Any], *, repeats: int = 3, warmup: int = 1
) -> Measurement:
    """Time ``fn`` ``repeats`` times (after ``warmup`` untimed calls).

    Runs ``gc.collect()`` before every timed call so collector debt from
    a previous iteration is not billed to the next one, and resets the
    process-wide sweep-sharing caches (batch context, compile memos,
    shared build/profile products) so every timed iteration pays the
    full cost a fresh process would — without the reset, repeat 2+ of a
    sweep scenario would measure little but memo lookups.  Returns
    robust wall-time stats plus each call's return value.
    """
    from repro.batchsim import reset_shared_state

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        reset_shared_state()
        fn()
    samples: List[float] = []
    results: List[Any] = []
    for _ in range(repeats):
        reset_shared_state()
        gc.collect()
        start = time.perf_counter()
        results.append(fn())
        samples.append(time.perf_counter() - start)
    return Measurement(stats=robust_stats(samples), results=results)


def scenario_entry(
    wall: SampleStats,
    runs: Sequence[ScenarioRun],
    *,
    subsystems: Sequence[str] = (),
    description: str = "",
) -> Dict[str, Any]:
    """Assemble one artifact scenario record from timed runs.

    Counters come from the final run; rates are the median over runs of
    ``counter / wall`` (using the raw per-run samples, not the summary
    median, so each rate pairs a counter with its own run's clock).
    """
    from repro.bench.stats import median

    last = runs[-1] if runs else ScenarioRun()
    counter_sets = {
        tuple(sorted(run.counters.items())) for run in runs if run.counters
    }
    rates: Dict[str, float] = {}
    for key in last.counters:
        per_run = [
            run.counters[key] / sample
            for run, sample in zip(runs, wall.samples)
            if key in run.counters and sample > 0
        ]
        if per_run:
            rates[f"{key}_per_s"] = median(per_run)
    entry: Dict[str, Any] = {
        "description": description,
        "subsystems": list(subsystems),
        "wall_s": wall.as_dict(),
        "counters": dict(sorted(last.counters.items())),
        "rates": dict(sorted(rates.items())),
        "counters_stable": len(counter_sets) <= 1,
    }
    if last.extra:
        entry["extra"] = last.extra
    return entry


def run_scenario(
    scenario: BenchScenario, ctx: BenchContext, *, repeats: int, warmup: int
) -> Dict[str, Any]:
    """Time one scenario end to end and return its artifact record."""
    state = scenario.prepare(ctx) if scenario.prepare is not None else None
    measurement = measure(
        lambda: scenario.run(ctx, state), repeats=repeats, warmup=warmup
    )
    return scenario_entry(
        measurement.stats,
        measurement.results,
        subsystems=scenario.subsystems,
        description=scenario.description,
    )


def run_bench(
    config: BenchConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run every configured scenario and return the artifact payload."""
    scenarios = resolve_scenarios(config.scenario_names or None)
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    ctx = BenchContext(
        workload_scale=config.workload_scale,
        benchmarks=config.benchmarks,
        threshold=config.threshold,
        workdir=workdir,
    )
    results: Dict[str, Any] = {}
    try:
        for scenario in scenarios:
            if progress is not None:
                progress(f"bench: {scenario.name} ...")
            entry = run_scenario(
                scenario, ctx, repeats=config.repeats, warmup=config.warmup
            )
            results[scenario.name] = entry
            if progress is not None:
                wall = entry["wall_s"]
                progress(
                    f"bench: {scenario.name} median {wall['median']:.4f}s "
                    f"(iqr {wall['iqr']:.4f}s, n={wall['n']})"
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return make_artifact(config, results)


def make_artifact(
    config: BenchConfig, scenarios: Mapping[str, Any]
) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_utc": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
        "host": host_fingerprint(),
        "scenarios": dict(scenarios),
        "config": config.as_dict(),
    }
    payload.update(code_fingerprint())
    return payload


def artifact_stamp(artifact: Mapping[str, Any]) -> str:
    """Filesystem-safe stamp derived from the artifact's creation time."""
    created = str(artifact.get("created_utc", ""))
    return created.replace("-", "").replace(":", "").replace("T", "-").rstrip("Z")


def write_artifact(
    artifact: Mapping[str, Any], directory: Optional[Path] = None
) -> Path:
    """Write ``BENCH_<stamp>.json`` under ``directory`` (default: cwd)."""
    root = Path(directory) if directory is not None else Path.cwd()
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{ARTIFACT_PREFIX}{artifact_stamp(artifact)}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: Path) -> Dict[str, Any]:
    """Read and schema-check one artifact."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} artifact "
            f"(schema={payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path}: not a JSON object"
        )
    if not isinstance(payload.get("scenarios"), dict):
        raise ValueError(f"{path}: artifact lacks a 'scenarios' object")
    return payload


def main_banner(artifact: Mapping[str, Any]) -> str:
    """One-paragraph human summary of an artifact (used by the CLI)."""
    host = artifact.get("host", {})
    lines = [
        f"schema {artifact.get('schema')}  created {artifact.get('created_utc')}",
        f"host: python {host.get('python')} on {host.get('platform')} "
        f"({host.get('cpu_count')} cpus)",
        f"code {artifact.get('code_version')}  "
        f"pipeline {str(artifact.get('pipeline_fingerprint'))[:12]}",
    ]
    for name, entry in artifact.get("scenarios", {}).items():
        wall = entry.get("wall_s", {})
        rates = entry.get("rates", {})
        cyc = rates.get("sim_cycles_per_s")
        rate_note = f", {cyc:,.0f} sim cycles/s" if cyc else ""
        lines.append(
            f"  {name:<20} median {wall.get('median', 0.0):.4f}s "
            f"iqr {wall.get('iqr', 0.0):.4f}s n={wall.get('n')}{rate_note}"
        )
    return "\n".join(lines)
