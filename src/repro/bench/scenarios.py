"""The benchmark scenario registry.

A *scenario* is one deterministic unit of work the harness can time:
regenerating a paper table from a cold start, the compile stage alone,
a threshold ablation, or a runner cold+warm cache cycle.  Scenarios
mirror the pytest-benchmark modules under ``benchmarks/`` so the
``BENCH_*.json`` trajectory tracks the same workloads the test suite
exercises.

Each scenario returns a :class:`ScenarioRun` whose ``counters`` are
*work units* derived from :mod:`repro.obs` metrics snapshots and
simulation results — simulated cycles, ops retired on the two engines,
compiler passes executed, runner jobs served — which the harness
divides by wall time into per-run throughput rates (``*_per_s``).
Because every scenario is deterministic, counters must not vary across
repeats; the harness flags it if they do.

Ops retired counts dynamic work on both engines: ``vliw.instructions``
(long instructions issued by the VLIW engine) plus ``cce.reexec``
(compensation ops re-executed by the CCE).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.evaluation import figure8, table2, table4
from repro.evaluation.experiment import Evaluation, EvaluationSettings
from repro.obs.metrics import MetricsSnapshot


@dataclass(frozen=True)
class BenchContext:
    """Knobs shared by every scenario invocation."""

    workload_scale: float = 0.25
    benchmarks: Optional[Tuple[str, ...]] = None
    threshold: float = 0.65
    #: Scratch directory scenarios may allocate per-iteration state in
    #: (runner cache dirs); owned and cleaned by the harness.
    workdir: Optional[Path] = None

    def settings(self) -> EvaluationSettings:
        settings = EvaluationSettings(scale=self.workload_scale)
        settings = settings.with_threshold(self.threshold)
        return settings.with_benchmarks(
            list(self.benchmarks) if self.benchmarks else None
        )


@dataclass
class ScenarioRun:
    """What one timed iteration of a scenario produced."""

    #: Deterministic work-unit counters (divided by wall time into rates).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Non-rate facts worth keeping in the artifact (pass-time
    #: attribution, cache hit rates).
    extra: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[MetricsSnapshot] = None


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark scenario."""

    name: str
    description: str
    #: Subsystems the scenario predominantly exercises (profile grouping).
    subsystems: Tuple[str, ...]
    run: Callable[[BenchContext, Any], ScenarioRun]
    #: Optional untimed setup shared by every iteration (e.g. build +
    #: profile products when only compile time is being measured).
    prepare: Optional[Callable[[BenchContext], Any]] = None


SCENARIOS: Dict[str, BenchScenario] = {}


def register_scenario(scenario: BenchScenario) -> BenchScenario:
    if scenario.name in SCENARIOS:
        raise ValueError(f"duplicate scenario {scenario.name!r}")
    SCENARIOS[scenario.name] = scenario
    return scenario


def resolve_scenarios(names: Optional[Sequence[str]] = None) -> List[BenchScenario]:
    """Scenarios in registration order; unknown names raise with the
    available set in the message."""
    if not names:
        return list(SCENARIOS.values())
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(SCENARIOS)}"
        )
    return [SCENARIOS[n] for n in names]


# -- derived-counter helpers -------------------------------------------------


def engine_counters(evaluation: Evaluation) -> Dict[str, float]:
    """Work units from an evaluation's simulations + metrics snapshot."""
    snapshot = evaluation.metrics_snapshot()
    sim_cycles = sum(
        r.cycles_proposed for r in evaluation.simulation_results
    )
    instructions = snapshot.counter("vliw.instructions")
    reexec = snapshot.counter("cce.reexec")
    return {
        "sim_cycles": float(sim_cycles),
        "ops_retired": float(instructions + reexec),
        "dynamic_blocks": float(snapshot.counter("sim.dynamic_blocks")),
    }


def _pass_totals(snapshot: MetricsSnapshot) -> Dict[str, float]:
    """Total nanoseconds per compiler pass from ``compiler.pass_ns{name}``."""
    out: Dict[str, float] = {}
    prefix = "compiler.pass_ns{"
    for key, summary in snapshot.histograms.items():
        if key.startswith(prefix) and key.endswith("}"):
            out[key[len(prefix):-1]] = summary.total
    return out


# -- scenario bodies ---------------------------------------------------------


def _run_table2(ctx: BenchContext, state: Any) -> ScenarioRun:
    evaluation = Evaluation(ctx.settings(), collect_metrics=True)
    table2.compute(evaluation)
    return ScenarioRun(
        counters=engine_counters(evaluation),
        metrics=evaluation.metrics_snapshot(),
    )


def _run_table4(ctx: BenchContext, state: Any) -> ScenarioRun:
    evaluation = Evaluation(ctx.settings(), collect_metrics=True)
    table4.compute(evaluation)
    return ScenarioRun(
        counters=engine_counters(evaluation),
        metrics=evaluation.metrics_snapshot(),
    )


def _prepare_profiled(ctx: BenchContext) -> Evaluation:
    """Build + profile every benchmark once, untimed, so compile-stage
    scenarios measure the compiler and not the profiling interpreter."""
    base = Evaluation(ctx.settings())
    for name in base.benchmarks:
        base.profile(name)
    return base


def _run_table3(ctx: BenchContext, state: Evaluation) -> ScenarioRun:
    from repro.compiler import PassManager
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    evaluation = Evaluation(ctx.settings()).seed_from(state)
    blocks = 0
    for name in evaluation.benchmarks:
        compilation = PassManager(metrics=registry).compile(
            evaluation.program(name),
            evaluation.machine_4w,
            evaluation.profile(name),
            spec_config=evaluation.settings.spec_config,
        )
        blocks += len(compilation.blocks)
    snapshot = registry.snapshot()
    return ScenarioRun(
        counters={
            "passes_run": float(
                sum(snapshot.counter_family("compiler.pass_runs").values())
            ),
            "blocks_compiled": float(blocks),
        },
        extra={"pass_ns": _pass_totals(snapshot)},
        metrics=snapshot,
    )


def _run_figure8(ctx: BenchContext, state: Evaluation) -> ScenarioRun:
    evaluation = Evaluation(ctx.settings()).seed_from(state)
    rows = figure8.compute(evaluation)
    speculated = sum(
        len(
            evaluation.compilation(name, evaluation.machine_4w).speculated_labels
        )
        for name in evaluation.benchmarks
    )
    return ScenarioRun(
        counters={
            "benchmarks": float(len(rows)),
            "speculated_blocks": float(speculated),
        }
    )


#: Thresholds the ablation scenario sweeps (straddling the paper's 0.65).
ABLATION_THRESHOLDS = (0.5, 0.8)
#: Suite subset the ablation sweeps (one integer, one FP benchmark).
ABLATION_BENCHMARKS = ("compress", "swim")


def _run_ablation(ctx: BenchContext, state: Any) -> ScenarioRun:
    counters: Dict[str, float] = {
        "sim_cycles": 0.0,
        "ops_retired": 0.0,
        "dynamic_blocks": 0.0,
    }
    for threshold in ABLATION_THRESHOLDS:
        settings = EvaluationSettings(scale=ctx.workload_scale)
        settings = settings.with_threshold(threshold)
        settings = settings.with_benchmarks(list(ABLATION_BENCHMARKS))
        evaluation = Evaluation(settings, collect_metrics=True)
        for name in evaluation.benchmarks:
            evaluation.simulation(name, evaluation.machine_4w)
        for key, value in engine_counters(evaluation).items():
            counters[key] += value
    return ScenarioRun(counters=counters)


def _run_cycle_accounting(ctx: BenchContext, state: Any) -> ScenarioRun:
    """The full pipeline with cycle accounting *on*: simulate
    :data:`ABLATION_BENCHMARKS` on the 4-wide machine collecting CPI
    stacks, so the attribution overhead (ledger charges, schedule
    re-attribution, per-pattern compensation simulations) is timed as
    its own scenario and the ``table2``/``perf-smoke`` numbers stay a
    clean disabled-path reference."""
    settings = EvaluationSettings(scale=ctx.workload_scale)
    settings = settings.with_threshold(ctx.threshold)
    settings = settings.with_benchmarks(list(ABLATION_BENCHMARKS))
    evaluation = Evaluation(settings, collect_metrics=True, collect_cycles=True)
    for name in evaluation.benchmarks:
        evaluation.simulation(name, evaluation.machine_4w)
    counters = engine_counters(evaluation)
    attributed = 0
    per_cause: Dict[str, int] = {}
    for result in evaluation.simulation_results:
        for stack in (result.cycle_stacks or {}).values():
            for cause, cycles in stack.items():
                attributed += cycles
                per_cause[cause] = per_cause.get(cause, 0) + cycles
    counters["attributed_cycles"] = float(attributed)
    return ScenarioRun(
        counters=counters,
        extra={"cause_totals": dict(sorted(per_cause.items()))},
        metrics=evaluation.metrics_snapshot(),
    )


def _run_runner_scaling(ctx: BenchContext, state: Any) -> ScenarioRun:
    """One cold + one warm runner pass over the table2 job graph against
    a fresh disk cache; derives the warm-pass cache hit rate."""
    from repro.runner import DiskCache, Runner

    if ctx.workdir is None:
        cache_root = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    else:
        cache_root = Path(tempfile.mkdtemp(dir=ctx.workdir))
    executed = 0
    cache_hits = 0
    warm_hit_rate = 0.0
    for attempt in ("cold", "warm"):
        with Runner(jobs=1, cache=DiskCache(root=cache_root)) as runner:
            Evaluation(ctx.settings(), runner=runner).warm(["table2"])
            summary = runner.events.summary()
        executed += summary["executed"]
        cache_hits += summary["cache_hits"]
        if attempt == "warm":
            served = summary["executed"] + summary["cache_hits"]
            warm_hit_rate = summary["cache_hits"] / served if served else 0.0
    return ScenarioRun(
        counters={
            "jobs_executed": float(executed),
            "jobs_served": float(executed + cache_hits),
        },
        extra={"warm_cache_hit_rate": warm_hit_rate},
    )


#: Workloads the interpreter hot-loop scenario runs end to end.
HOTLOOP_BENCHMARKS = ("compress", "li")
#: Thresholds the replayed sweep visits (the paper's 0.65 plus both
#: ablation points), enough sweep points for replay to amortise capture.
SWEEP_REPLAY_THRESHOLDS = (0.5, 0.65, 0.8)


def _prepare_hotloop(ctx: BenchContext) -> Dict[str, Any]:
    """Build the hot-loop programs untimed so the scenario times the
    interpreter alone, not the front end."""
    from repro.workloads.suite import load_benchmark

    return {
        name: load_benchmark(name, scale=ctx.workload_scale)
        for name in HOTLOOP_BENCHMARKS
    }


def _run_interp_hotloop(ctx: BenchContext, state: Dict[str, Any]) -> ScenarioRun:
    """Observer-less architectural interpretation — the block-specialized
    fast path with the no-notification branch."""
    from repro.profiling.interpreter import Interpreter

    ops = 0
    blocks = 0
    for program in state.values():
        result = Interpreter().run(program)
        ops += result.dynamic_operations
        blocks += result.dynamic_blocks
    return ScenarioRun(
        counters={"interp_ops": float(ops), "interp_blocks": float(blocks)}
    )


def _run_sweep_replay(ctx: BenchContext, state: Any) -> ScenarioRun:
    """A threshold sweep against a fresh trace store: one architectural
    interpretation per benchmark, replayed at every other sweep point."""
    from repro.trace import TraceStore

    store = TraceStore()
    counters: Dict[str, float] = {
        "sim_cycles": 0.0,
        "ops_retired": 0.0,
        "dynamic_blocks": 0.0,
    }
    for threshold in SWEEP_REPLAY_THRESHOLDS:
        settings = EvaluationSettings(scale=ctx.workload_scale)
        settings = settings.with_threshold(threshold)
        settings = settings.with_benchmarks(list(ABLATION_BENCHMARKS))
        evaluation = Evaluation(
            settings, collect_metrics=True, trace_store=store
        )
        for name in evaluation.benchmarks:
            evaluation.simulation(name, evaluation.machine_4w)
        for key, value in engine_counters(evaluation).items():
            counters[key] += value
    return ScenarioRun(
        counters=counters,
        extra={
            "trace_captures": store.captures,
            "trace_hits": store.hits,
        },
    )


#: Axes the explore-grid scenario sweeps (2x2 machine/speculation grid)
#: over :data:`ABLATION_BENCHMARKS`.
EXPLORE_GRID_AXES = ("issue_width=2,4", "threshold=0.5,0.8")


def _run_explore_grid(ctx: BenchContext, state: Any) -> ScenarioRun:
    """A small design-space sweep through the explore driver: point
    derivation, per-point evaluation, cost model, frontier and the
    deterministic report artifact."""
    from repro.explore import (
        Axis,
        DesignSpace,
        dump_report,
        explore_points,
        pareto_frontier,
        report_payload,
    )
    from repro.machine.configs import PLAYDOH_4W_SPEC

    space = DesignSpace(
        base=PLAYDOH_4W_SPEC,
        axes=tuple(Axis.parse(a) for a in EXPLORE_GRID_AXES),
    )
    points = space.grid()
    results = explore_points(
        points,
        scale=ctx.workload_scale,
        benchmarks=list(ABLATION_BENCHMARKS),
    )
    artifact = dump_report(
        report_payload(
            space, results, ctx.workload_scale, list(ABLATION_BENCHMARKS)
        )
    )
    cycles = sum(
        b.cycles_proposed for r in results for b in r.benchmarks
    )
    return ScenarioRun(
        counters={
            "design_points": float(len(results)),
            "point_sims": float(
                sum(len(r.benchmarks) for r in results)
            ),
            "sim_cycles": float(cycles),
        },
        extra={
            "frontier_size": len(pareto_frontier(results)),
            "artifact_bytes": len(artifact),
        },
    )


#: Machines the batched-sweep scenario simulates per benchmark in one
#: ``batch_simulate`` job.
BATCHED_SWEEP_MACHINES = ("playdoh-4w", "playdoh-8w", "unlimited")

#: Axes the surrogate-prune scenario sweeps (6 candidate points).
SURROGATE_PRUNE_AXES = ("issue_width=2,4", "threshold=0.5,0.65,0.8")


def _run_batched_sweep(ctx: BenchContext, state: Any) -> ScenarioRun:
    """A machine sweep through the runner's ``batch_simulate`` stage:
    per benchmark, one job simulates every machine point off one shared
    trace decode (each result byte-identical to a scalar simulate job)."""
    from repro.machine.configs import by_name
    from repro.runner import Runner, batch_simulate_job

    machines = [by_name(name) for name in BATCHED_SWEEP_MACHINES]
    runner = Runner(jobs=1, cache=None)
    cycles = 0
    points = 0
    try:
        for name in ABLATION_BENCHMARKS:
            results = runner.run_job(
                batch_simulate_job(name, machines, scale=ctx.workload_scale)
            )
            points += len(results)
            cycles += sum(r.cycles_proposed for r in results.values())
    finally:
        runner.close()
    return ScenarioRun(
        counters={
            "sim_points": float(points),
            "sim_cycles": float(cycles),
        }
    )


def _run_surrogate_prune(ctx: BenchContext, state: Any) -> ScenarioRun:
    """A surrogate-pruned design-space sweep: every candidate is compiled
    and analytically estimated, only the keep set (estimated frontier +
    top quarter) is exactly simulated, and the survivors' estimates are
    cross-validated against their exact simulations."""
    from repro.explore import Axis, DesignSpace, explore
    from repro.machine.configs import PLAYDOH_4W_SPEC

    space = DesignSpace(
        base=PLAYDOH_4W_SPEC,
        axes=tuple(Axis.parse(a) for a in SURROGATE_PRUNE_AXES),
    )
    points = space.grid()
    outcome = explore(
        points,
        scale=ctx.workload_scale,
        benchmarks=list(ABLATION_BENCHMARKS),
        surrogate=True,
    )
    cycles = sum(
        b.cycles_proposed for r in outcome.results for b in r.benchmarks
    )
    return ScenarioRun(
        counters={
            "candidates": float(len(points)),
            "simulated": float(len(outcome.results)),
            "pruned": float(len(outcome.pruned)),
            "sim_cycles": float(cycles),
        },
        extra={
            "surrogate_max_rel_error": (
                outcome.surrogate.max_rel_error if outcome.surrogate else None
            ),
        },
    )


register_scenario(
    BenchScenario(
        name="table2",
        description="Table 2 from a cold start: profile, compile and "
        "simulate the suite on the 4-wide machine",
        subsystems=("core", "profiling", "evaluation"),
        run=_run_table2,
    )
)
register_scenario(
    BenchScenario(
        name="table3",
        description="Compile stage alone (4-wide), build/profile products "
        "prepared untimed; attributes wall time to compiler passes",
        subsystems=("compiler",),
        run=_run_table3,
        prepare=_prepare_profiled,
    )
)
register_scenario(
    BenchScenario(
        name="table4",
        description="Table 4 from a cold start: the suite simulated on "
        "both the 4-wide and 8-wide machines",
        subsystems=("core", "profiling", "evaluation"),
        run=_run_table4,
    )
)
register_scenario(
    BenchScenario(
        name="figure8",
        description="Figure 8 static distribution: compile and bucket "
        "schedule-length deltas (build/profile prepared untimed)",
        subsystems=("compiler", "evaluation"),
        run=_run_figure8,
        prepare=_prepare_profiled,
    )
)
register_scenario(
    BenchScenario(
        name="ablation_threshold",
        description=f"Threshold ablation {ABLATION_THRESHOLDS} over "
        f"{ABLATION_BENCHMARKS}: full pipeline + simulate per point",
        subsystems=("core", "compiler", "profiling"),
        run=_run_ablation,
    )
)
register_scenario(
    BenchScenario(
        name="cycle_accounting",
        description=f"Full pipeline over {ABLATION_BENCHMARKS} (4-wide) "
        "with CPI-stack collection enabled: times the cycle-attribution "
        "overhead against the disabled-path scenarios",
        subsystems=("obs", "core", "compiler"),
        run=_run_cycle_accounting,
    )
)
register_scenario(
    BenchScenario(
        name="runner_scaling",
        description="Runner cold+warm cache cycle over the table2 job "
        "graph (fresh disk cache per iteration)",
        subsystems=("runner",),
        run=_run_runner_scaling,
    )
)
register_scenario(
    BenchScenario(
        name="interp_hotloop",
        description=f"Observer-less architectural interpretation of "
        f"{HOTLOOP_BENCHMARKS} (programs built untimed): the "
        "block-specialized dispatch fast path alone",
        subsystems=("profiling",),
        run=_run_interp_hotloop,
        prepare=_prepare_hotloop,
    )
)
register_scenario(
    BenchScenario(
        name="explore_grid",
        description=f"Design-space sweep {EXPLORE_GRID_AXES} over "
        f"{ABLATION_BENCHMARKS}: explore driver end to end — points, "
        "evaluations, cost model, Pareto frontier, report artifact",
        subsystems=("explore", "core", "compiler"),
        run=_run_explore_grid,
    )
)
register_scenario(
    BenchScenario(
        name="sweep_replay",
        description=f"Threshold sweep {SWEEP_REPLAY_THRESHOLDS} over "
        f"{ABLATION_BENCHMARKS} against a fresh trace store: capture "
        "once, replay every other sweep point",
        subsystems=("trace", "core", "compiler"),
        run=_run_sweep_replay,
    )
)
register_scenario(
    BenchScenario(
        name="batched_sweep",
        description=f"Machine sweep {BATCHED_SWEEP_MACHINES} over "
        f"{ABLATION_BENCHMARKS} through the runner's batch_simulate "
        "stage: one batched pass per benchmark across all machine points",
        subsystems=("batchsim", "runner", "core"),
        run=_run_batched_sweep,
    )
)
register_scenario(
    BenchScenario(
        name="surrogate_prune",
        description=f"Surrogate-pruned sweep {SURROGATE_PRUNE_AXES} over "
        f"{ABLATION_BENCHMARKS}: analytical estimates rank all candidates, "
        "only the keep set is exactly simulated (with cross-validation)",
        subsystems=("batchsim", "explore", "core"),
        run=_run_surrogate_prune,
    )
)

# Re-export for harness convenience.
__all__ = [
    "ABLATION_BENCHMARKS",
    "ABLATION_THRESHOLDS",
    "BATCHED_SWEEP_MACHINES",
    "EXPLORE_GRID_AXES",
    "HOTLOOP_BENCHMARKS",
    "SURROGATE_PRUNE_AXES",
    "SWEEP_REPLAY_THRESHOLDS",
    "BenchContext",
    "BenchScenario",
    "SCENARIOS",
    "ScenarioRun",
    "register_scenario",
    "resolve_scenarios",
]
