"""repro.compiler — the pass-manager pipeline.

One typed pipeline covers the paper's whole compile-time half: classical
optimisation (:mod:`repro.opt`), optional region enlargement
(:mod:`repro.regions`), liveness, the value-speculation transform,
speculative scheduling and baseline construction — declared as a
serialisable :class:`PipelineConfig` and executed by a
:class:`PassManager` that verifies the IR between passes and reports
per-pass timings through :mod:`repro.obs`.

Every compilation entry point in the repository routes through here:
:func:`repro.core.metrics.compile_program` is a delegating shim, the
experiment runner's ``build``/``compile`` job stages run the config's
two halves (cache entries are keyed by the config's
:meth:`~PipelineConfig.fingerprint`), and the region-size sweeps are
just configs with an ``unroll`` pass in front.

Quickstart::

    from repro.compiler import PassManager, standard_pipeline

    manager = PassManager(standard_pipeline())
    compilation = manager.compile(program, machine, profile)

Inspect a resolved pipeline from the shell::

    python -m repro.compiler list
    repro-eval --list-passes
"""

from repro.compiler.config import (
    PIPELINE_SCHEMA_VERSION,
    PassSpec,
    PipelineConfig,
    STANDARD_CODEGEN,
    canonical_value,
    compilation_fingerprint,
    content_hash,
    standard_pipeline,
)
from repro.compiler.manager import (
    PassManager,
    compilation_digest,
    compile_program,
)
from repro.compiler.passes import (
    REQUIRED,
    CompileState,
    PassInfo,
    PipelineError,
    available_passes,
    pass_info,
    register_pass,
    resolve_options,
)

__all__ = [
    "CompileState",
    "PIPELINE_SCHEMA_VERSION",
    "PassInfo",
    "PassManager",
    "PassSpec",
    "PipelineConfig",
    "PipelineError",
    "REQUIRED",
    "STANDARD_CODEGEN",
    "available_passes",
    "canonical_value",
    "compilation_digest",
    "compilation_fingerprint",
    "compile_program",
    "content_hash",
    "pass_info",
    "register_pass",
    "resolve_options",
    "standard_pipeline",
]
