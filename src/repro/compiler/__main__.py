"""Command-line introspection for the compiler pipeline.

Usage::

    python -m repro.compiler list                     # resolved pipeline
    python -m repro.compiler list --unroll loop:2     # with a front end
    python -m repro.compiler list --json              # canonical form
    python -m repro.compiler passes                   # every registered pass
    python -m repro.compiler digest --scale 0.25      # per-benchmark
                                                      # compilation digests

``list`` prints the resolved pipeline — pass order and effective
per-pass options — for debugging configs; ``digest`` compiles the suite
through the runner and prints one stable content hash per benchmark,
which is what the CI determinism job compares across runs and worker
counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.compiler import (
    PipelineConfig,
    available_passes,
    compilation_digest,
    standard_pipeline,
)
from repro.core.speculation import SpeculationConfig


def _parse_unroll(text: str) -> Tuple[str, int]:
    label, sep, factor = text.rpartition(":")
    if not sep or not label:
        raise argparse.ArgumentTypeError(
            f"--unroll wants LABEL:FACTOR, got {text!r}"
        )
    try:
        return label, int(factor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unroll factor must be an integer, got {factor!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Inspect and exercise the pass-manager pipeline.",
    )
    sub = parser.add_subparsers(dest="command")

    list_cmd = sub.add_parser(
        "list", help="print the resolved pipeline with per-pass options"
    )
    list_cmd.add_argument(
        "--optimize", action="store_true",
        help="include the classical-optimisation front end",
    )
    list_cmd.add_argument(
        "--unroll", type=_parse_unroll, metavar="LABEL:FACTOR", default=None,
        help="include a loop-unrolling front end",
    )
    list_cmd.add_argument(
        "--threshold", type=float, default=0.65,
        help="speculation threshold shown on the speculate pass",
    )
    list_cmd.add_argument(
        "--json", action="store_true",
        help="emit the canonical (cache-key) form instead of text",
    )

    sub.add_parser("passes", help="print every registered pass")

    digest = sub.add_parser(
        "digest",
        help="compile benchmarks through the runner and print one "
        "content digest per benchmark (for determinism checks)",
    )
    digest.add_argument("--scale", type=float, default=1.0)
    digest.add_argument("--threshold", type=float, default=0.65)
    digest.add_argument(
        "--benchmarks", action="append", metavar="NAME[,NAME...]", default=None
    )
    digest.add_argument("--jobs", "-j", type=int, default=1)
    digest.add_argument("--no-cache", action="store_true")
    digest.add_argument("--cache-dir", metavar="PATH", default=None)
    return parser


def _pipeline(args: argparse.Namespace) -> PipelineConfig:
    return standard_pipeline(
        optimize=getattr(args, "optimize", False),
        unroll=getattr(args, "unroll", None),
    )


def _run_list(args: argparse.Namespace) -> int:
    pipeline = _pipeline(args)
    spec_config = SpeculationConfig(threshold=args.threshold)
    if args.json:
        payload = {
            "fingerprint": pipeline.fingerprint(),
            "pipeline": pipeline.canonical(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(pipeline.describe(spec_config=spec_config))
    return 0


def _run_passes() -> int:
    for info in available_passes():
        defaults = ", ".join(
            f"{k}={'<required>' if repr(v).startswith('<object') else repr(v)}"
            for k, v in info.defaults
        )
        suffix = f"  [{defaults}]" if defaults else ""
        print(f"{info.name:<22}{info.kind:<10}{info.summary}{suffix}")
    return 0


def _run_digest(args: argparse.Namespace) -> int:
    from repro.runner import DiskCache, Runner, compile_job
    from repro.workloads.suite import BENCHMARKS, resolve_benchmarks
    from repro.machine.configs import PLAYDOH_4W

    names: List[str] = []
    for chunk in args.benchmarks or []:
        names.extend(n for n in chunk.split(",") if n)
    benchmarks = resolve_benchmarks(names) if names else tuple(BENCHMARKS)

    spec_config = SpeculationConfig(threshold=args.threshold)
    cache = DiskCache(
        root=Path(args.cache_dir) if args.cache_dir else None,
        enabled=not args.no_cache,
    )
    runner = Runner(jobs=args.jobs, cache=cache)
    try:
        jobs = {
            name: compile_job(
                name, PLAYDOH_4W, scale=args.scale, spec_config=spec_config
            )
            for name in benchmarks
        }
        runner.run(list(jobs.values()))
        for name, job in jobs.items():
            compilation = runner.run_job(job)
            print(f"{name} {compilation_digest(compilation)}")
    finally:
        runner.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in (None, "list"):
        if args.command is None:
            args = build_parser().parse_args(["list"])
        return _run_list(args)
    if args.command == "passes":
        return _run_passes()
    if args.command == "digest":
        return _run_digest(args)
    print(f"unknown command {args.command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
