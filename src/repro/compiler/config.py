"""Declarative, serialisable pipeline configurations.

A :class:`PipelineConfig` names the passes the compiler driver
(:class:`repro.compiler.PassManager`) will run, split in two stages:

* ``program_passes`` rewrite the :class:`~repro.ir.program.Program`
  itself (classical optimisations, loop unrolling).  They run *before*
  profiling — profiles and all downstream products reference operations
  of the rewritten program — so the experiment runner applies them in
  its ``build`` stage.
* ``codegen_passes`` lower the (profiled) program to a
  :class:`~repro.core.metrics.ProgramCompilation`: liveness, original
  scheduling, the value-speculation transform, speculative scheduling
  and baseline construction.

Configs are plain frozen dataclasses built from :class:`PassSpec`
entries (a pass name plus a sorted option tuple), so they hash, compare
and pickle; :meth:`PipelineConfig.canonical` reduces one to JSON
primitives and :meth:`PipelineConfig.fingerprint` to a stable content
hash — which is what the runner keys its on-disk cache entries by.  The
``verify`` toggle is deliberately *excluded* from the canonical form:
inter-pass verification can only raise, never change a result, so it
must not split the cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

#: Bump when the canonical serialisation of pipeline configs changes
#: shape (part of every fingerprint, hence of every runner cache key).
PIPELINE_SCHEMA_VERSION = 1


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-serialisable primitives, deterministically.

    Handles the types that appear in pipeline and job specifications:
    dataclasses, enums, mappings (sorted by stringified key), sequences,
    sets (sorted) and primitives.  Floats go through ``repr`` so the
    hash sees full precision.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: canonical_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, Mapping):
        return {str(canonical_value(k)): canonical_value(v) for k, v in sorted(
            value.items(), key=lambda kv: str(canonical_value(kv[0]))
        )}
    if isinstance(value, (set, frozenset)):
        return sorted((canonical_value(v) for v in value), key=str)
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalise {type(value).__name__} for a content hash"
    )


def content_hash(payload: Any) -> str:
    """SHA-256 over the canonical JSON form of ``payload``."""
    text = json.dumps(
        canonical_value(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PassSpec:
    """One pass invocation: a registered pass name plus its options.

    Options are a sorted tuple of ``(name, value)`` pairs so specs are
    hashable, order-insensitive and canonicalise deterministically.
    Build them with :meth:`make` rather than the raw constructor.
    """

    name: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, **options: Any) -> "PassSpec":
        return cls(name, tuple(sorted(options.items())))

    def option(self, key: str, default: Any = None) -> Any:
        for name, value in self.options:
            if name == key:
                return value
        return default

    def canonical(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "options": {k: canonical_value(v) for k, v in self.options},
        }

    def render(self) -> str:
        """Human-readable form, e.g. ``unroll(factor=2, label='loop')``."""
        if not self.options:
            return self.name
        opts = ", ".join(f"{k}={v!r}" for k, v in self.options)
        return f"{self.name}({opts})"


#: The codegen stage mirroring the original ``compile_program`` loop.
STANDARD_CODEGEN: Tuple[PassSpec, ...] = (
    PassSpec("liveness"),
    PassSpec("schedule-original"),
    PassSpec("speculate"),
    PassSpec("schedule-speculative"),
    PassSpec("baseline"),
)


@dataclass(frozen=True)
class PipelineConfig:
    """A declarative compiler pipeline: what runs, in which order.

    Attributes:
        program_passes: program-rewriting passes, applied pre-profiling.
        codegen_passes: state-building passes that produce the
            :class:`~repro.core.metrics.ProgramCompilation`.
        verify: run the IR verifier between program-rewriting passes
            (and once before codegen).  Not part of the canonical form.
    """

    program_passes: Tuple[PassSpec, ...] = ()
    codegen_passes: Tuple[PassSpec, ...] = STANDARD_CODEGEN
    verify: bool = True

    @property
    def passes(self) -> Tuple[PassSpec, ...]:
        return self.program_passes + self.codegen_passes

    def frontend(self) -> "PipelineConfig":
        """The program-rewriting prefix only (what a build stage runs)."""
        return PipelineConfig(
            program_passes=self.program_passes,
            codegen_passes=(),
            verify=self.verify,
        )

    def with_program_pass(self, spec: PassSpec) -> "PipelineConfig":
        return dataclasses.replace(
            self, program_passes=self.program_passes + (spec,)
        )

    def canonical(self) -> Dict[str, Any]:
        """JSON-primitive form; ``verify`` is excluded (cannot change
        results, must not split caches)."""
        return {
            "schema": PIPELINE_SCHEMA_VERSION,
            "program": [p.canonical() for p in self.program_passes],
            "codegen": [p.canonical() for p in self.codegen_passes],
        }

    def fingerprint(self) -> str:
        """Stable content hash of the pipeline specification."""
        return content_hash(self.canonical())

    def is_standard(self) -> bool:
        return self.canonical() == standard_pipeline().canonical()

    def describe(self, spec_config: Optional[Any] = None) -> str:
        """Render the resolved pipeline, one pass per line with options.

        When ``spec_config`` (a
        :class:`~repro.core.speculation.SpeculationConfig`) is given,
        the ``speculate`` pass line shows its effective knobs — those
        live outside the pipeline config because the runner keys them
        separately for threshold/ablation sweeps.
        """
        from repro.compiler.passes import pass_info, resolve_options

        lines = [f"pipeline {self.fingerprint()[:12]}"]
        for stage, specs in (
            ("program passes (pre-profile)", self.program_passes),
            ("codegen passes (profile -> compilation)", self.codegen_passes),
        ):
            lines.append(f"  {stage}:")
            if not specs:
                lines.append("    (none)")
            for spec in specs:
                info = pass_info(spec.name)
                options = resolve_options(info, spec)
                if spec.name == "speculate" and spec_config is not None:
                    options = {
                        **{
                            f.name: getattr(spec_config, f.name)
                            for f in dataclasses.fields(spec_config)
                        },
                        **options,
                    }
                opts = ", ".join(f"{k}={v!r}" for k, v in sorted(options.items()))
                suffix = f"  [{opts}]" if opts else ""
                lines.append(f"    {info.name:<22}{info.summary}{suffix}")
        lines.append("  verify between passes: " + ("on" if self.verify else "off"))
        return "\n".join(lines)


def standard_pipeline(
    *,
    optimize: bool = False,
    unroll: Optional[Tuple[str, int]] = None,
    verify: bool = True,
) -> PipelineConfig:
    """The default pipeline, optionally with a classical-optimisation
    and/or loop-unrolling front end.

    ``unroll`` is a ``(loop_label, factor)`` pair; the resulting config
    is exactly what the region-size experiments feed the runner.
    """
    program: Tuple[PassSpec, ...] = ()
    if optimize:
        program += (PassSpec.make("optimize"),)
    if unroll is not None:
        label, factor = unroll
        program += (PassSpec.make("unroll", label=label, factor=int(factor)),)
    return PipelineConfig(
        program_passes=program, codegen_passes=STANDARD_CODEGEN, verify=verify
    )


def compilation_fingerprint(
    program: Any,
    machine: Any,
    pipeline: Optional[PipelineConfig] = None,
    spec_config: Optional[Any] = None,
) -> str:
    """Stable content hash of (program, machine, pipeline, speculation
    config) — everything that determines a compilation's result.

    The program is hashed through its assembly rendering, which is
    independent of operation-id counter state, so the same source
    program fingerprints identically in any process.
    """
    from repro.ir.asm import format_program_asm

    return content_hash(
        {
            "program": format_program_asm(program),
            "machine": canonical_value(machine),
            "pipeline": (pipeline or standard_pipeline()).canonical(),
            "spec_config": canonical_value(spec_config),
        }
    )
