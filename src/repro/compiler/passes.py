"""The pass registry and the built-in passes.

A *pass* is a named, registered unit of pipeline work.  Three kinds
exist, distinguished by what they transform:

* ``function`` — ``fn(function, **options) -> Function``; the manager
  lifts it over every function of the program (fresh
  :class:`~repro.ir.program.Program`, same memory/register images).
* ``program`` — ``fn(program, **options) -> Program``; whole-program
  rewrites such as loop unrolling.
* ``codegen`` — ``fn(state, **options) -> bool``; reads and extends the
  :class:`CompileState` that accumulates the compilation products.  The
  return value reports whether the pass produced anything (it feeds the
  ``compiler.pass_changed`` metric).

Registration is open: tests and downstream users may
:func:`register_pass` their own (including deliberately broken ones, to
exercise the manager's inter-pass verification).  Options declared at
registration are the only ones a :class:`~repro.compiler.config.PassSpec`
may set; :data:`REQUIRED` marks options without a default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.compiler.config import PassSpec
from repro.ir.function import Function
from repro.ir.liveness import LivenessInfo, compute_liveness
from repro.ir.program import Program
from repro.machine.description import MachineDescription
from repro.profiling.profile_run import ProfileData
from repro.core.speculation import SpeculationConfig


class PipelineError(RuntimeError):
    """A pipeline is malformed: unknown pass, bad options, or a codegen
    pass running before one it depends on."""


#: Sentinel default for options a PassSpec must provide explicitly.
REQUIRED = object()


@dataclass(frozen=True)
class PassInfo:
    """Registry entry for one pass."""

    name: str
    kind: str  # "function" | "program" | "codegen"
    summary: str
    defaults: Tuple[Tuple[str, Any], ...]
    fn: Callable[..., Any]


_REGISTRY: Dict[str, PassInfo] = {}


def register_pass(
    name: str,
    kind: str,
    summary: str,
    fn: Callable[..., Any],
    **defaults: Any,
) -> None:
    """Register (or override) a pass implementation."""
    if kind not in ("function", "program", "codegen"):
        raise ValueError(f"unknown pass kind {kind!r}")
    _REGISTRY[name] = PassInfo(
        name=name,
        kind=kind,
        summary=summary,
        defaults=tuple(sorted(defaults.items())),
        fn=fn,
    )


def pass_info(name: str) -> PassInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PipelineError(
            f"unknown pass {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def available_passes() -> List[PassInfo]:
    """All registered passes, sorted by name."""
    return [info for _, info in sorted(_REGISTRY.items())]


def resolve_options(info: PassInfo, spec: PassSpec) -> Dict[str, Any]:
    """Merge a spec's options over the pass defaults, validating names."""
    allowed = dict(info.defaults)
    options: Dict[str, Any] = {}
    for key, value in spec.options:
        if key not in allowed:
            raise PipelineError(
                f"pass {info.name!r} has no option {key!r}; "
                f"available: {sorted(allowed)}"
            )
        options[key] = value
    for key, default in allowed.items():
        if key in options:
            continue
        if default is REQUIRED:
            raise PipelineError(
                f"pass {info.name!r} requires option {key!r}"
            )
        options[key] = default
    return options


# ---------------------------------------------------------------------------
# compilation state


@dataclass
class CompileState:
    """Mutable state threaded through the codegen passes.

    ``blocks`` is keyed in program block order and holds the
    per-block products the final
    :class:`~repro.core.metrics.ProgramCompilation` is assembled from;
    ``specs`` holds the intermediate speculative transforms between the
    ``speculate`` and scheduling/baseline passes.
    """

    program: Program
    machine: MachineDescription
    spec_config: SpeculationConfig
    profile: Optional[ProfileData]
    liveness: Optional[LivenessInfo] = None
    blocks: Dict[str, Any] = field(default_factory=dict)
    specs: Dict[str, Any] = field(default_factory=dict)

    def require(self, attr: str, needed_by: str, producer: str) -> Any:
        value = getattr(self, attr)
        if not value:
            raise PipelineError(
                f"pass {needed_by!r} needs {attr!r}; "
                f"run {producer!r} earlier in the pipeline"
            )
        return value


# ---------------------------------------------------------------------------
# built-in program-rewriting passes


def _lift_optimize(program: Program, max_iterations: int = 8) -> Program:
    from repro.opt.passes import optimize_program

    return optimize_program(program, max_iterations=max_iterations)


def _lift_unroll(program: Program, label: Any = REQUIRED, factor: int = 2) -> Program:
    from repro.regions.unroll import unroll_program_loop

    return unroll_program_loop(program, label, factor)


def _register_function_pass(name: str, summary: str, importer: Callable[[], Callable]) -> None:
    def run(function: Function) -> Function:
        return importer()(function)

    register_pass(name, "function", summary, run)


def _import_fold():
    from repro.opt.passes import constant_folding

    return constant_folding


def _import_copyprop():
    from repro.opt.passes import copy_propagation

    return copy_propagation


def _import_dce():
    from repro.opt.passes import dead_code_elimination

    return dead_code_elimination


# ---------------------------------------------------------------------------
# built-in codegen passes


def _pass_liveness(state: CompileState) -> bool:
    state.liveness = compute_liveness(state.program.main)
    return True


def _pass_schedule_original(state: CompileState) -> bool:
    from repro.core import compile_cache
    from repro.core.metrics import BlockCompilation

    for block in state.program.main:
        length = compile_cache.original_schedule(block, state.machine).length
        state.blocks[block.label] = BlockCompilation(
            label=block.label, original_length=length
        )
    return bool(state.blocks)


def _pass_speculate(state: CompileState) -> bool:
    from repro.core.speculation import speculate_block

    liveness = state.require("liveness", "speculate", "liveness")
    if state.profile is None:
        raise PipelineError("pass 'speculate' needs a value profile")
    for block in state.program.main:
        spec = speculate_block(
            block,
            state.machine,
            state.profile.values,
            live_out=liveness.live_out[block.label],
            config=state.spec_config,
        )
        if spec is not None:
            state.specs[block.label] = spec
    return bool(state.specs)


def _pass_schedule_speculative(state: CompileState) -> bool:
    from repro.core import compile_cache

    if state.specs:
        state.require("blocks", "schedule-speculative", "schedule-original")
    for label, spec in state.specs.items():
        compilation = state.blocks[label]
        compilation.spec_schedule = compile_cache.speculative_schedule(
            spec, state.machine, compilation.original_length
        )
    return bool(state.specs)


def _pass_baseline(state: CompileState) -> bool:
    from repro.core import compile_cache

    if state.specs:
        state.require("blocks", "baseline", "schedule-original")
    for label, spec in state.specs.items():
        compilation = state.blocks[label]
        compilation.baseline = compile_cache.baseline_block(
            spec, state.machine, compilation.original_length
        )
    return bool(state.specs)


# ---------------------------------------------------------------------------
# registration

_register_function_pass(
    "fold", "evaluate constant ALU chains and constant branches", _import_fold
)
_register_function_pass(
    "copyprop", "forward register copies to their uses", _import_copyprop
)
_register_function_pass(
    "dce", "drop side-effect-free operations never read", _import_dce
)
register_pass(
    "optimize",
    "program",
    "fold + copyprop + dce to a bounded fixpoint",
    _lift_optimize,
    max_iterations=8,
)
register_pass(
    "unroll",
    "program",
    "unroll one counted self-loop with register renaming",
    _lift_unroll,
    label=REQUIRED,
    factor=2,
)
register_pass(
    "liveness",
    "codegen",
    "whole-function liveness (live-out sets per block)",
    _pass_liveness,
)
register_pass(
    "schedule-original",
    "codegen",
    "resource-constrained list schedule of each original block",
    _pass_schedule_original,
)
register_pass(
    "speculate",
    "codegen",
    "value-speculation transform (LdPred/check/Sync assignment)",
    _pass_speculate,
)
register_pass(
    "schedule-speculative",
    "codegen",
    "list-schedule transformed blocks with run-time annotations",
    _pass_schedule_speculative,
)
register_pass(
    "baseline",
    "codegen",
    "statically-recovered baseline (compensation blocks)",
    _pass_baseline,
)
