"""The pass manager: runs a :class:`PipelineConfig` over a program.

:class:`PassManager` is the one compilation driver in the system — the
evaluation experiments, the runner's ``build``/``compile`` job stages,
the region-size sweeps and the quickstart all route through it.  It

* applies the config's program-rewriting passes
  (:meth:`~PassManager.run_program_passes`), verifying the IR between
  passes when ``verify`` is on;
* lowers a profiled program to a
  :class:`~repro.core.metrics.ProgramCompilation`
  (:meth:`~PassManager.compile`) by running the codegen passes over a
  shared :class:`~repro.compiler.passes.CompileState`;
* times and counts every pass through :mod:`repro.obs` metrics
  (``compiler.pass_ns{name}`` histograms, ``compiler.pass_runs`` and
  ``compiler.pass_changed`` counters) — free when metrics are disabled.

The default pipeline reproduces the original ``compile_program``
byte-for-byte: the same per-block products, built in the same operation
-id-minting order (``speculate`` visits blocks in program order, exactly
as the old fused loop did).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.compiler.config import (
    PipelineConfig,
    canonical_value,
    content_hash,
    standard_pipeline,
)
from repro.compiler.passes import (
    CompileState,
    PassInfo,
    PipelineError,
    pass_info,
    resolve_options,
)
from repro.ir.program import Program
from repro.ir.verifier import verify_function
from repro.machine.description import MachineDescription
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.profiling.profile_run import ProfileData
from repro.core.speculation import SpeculationConfig


def _program_shape(program: Program) -> tuple:
    """Structural fingerprint for change detection (id-insensitive)."""
    from repro.opt.passes import function_shape

    return tuple((f.name, function_shape(f)) for f in program)


class PassManager:
    """Executes the passes of one :class:`PipelineConfig`."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        *,
        metrics: MetricsRegistry = NULL_METRICS,
        verify: Optional[bool] = None,
    ):
        self.config = config or standard_pipeline()
        self.verify = self.config.verify if verify is None else verify
        self.metrics = metrics

    # -- program-rewriting stage --------------------------------------------

    def run_program_passes(self, program: Program) -> Program:
        """Apply the config's program passes, in order, returning the
        rewritten program (the input is never mutated)."""
        for spec in self.config.program_passes:
            info = pass_info(spec.name)
            options = resolve_options(info, spec)
            before = _program_shape(program)
            start = time.perf_counter_ns()
            if info.kind == "function":
                program = self._lift_function_pass(program, info, options)
            elif info.kind == "program":
                program = info.fn(program, **options)
            else:
                raise PipelineError(
                    f"codegen pass {info.name!r} cannot appear in "
                    "program_passes"
                )
            self._record(info.name, start, changed=_program_shape(program) != before)
            if self.verify:
                self._verify(program, info.name)
        return program

    # -- codegen stage ------------------------------------------------------

    def compile(
        self,
        program: Program,
        machine: MachineDescription,
        profile: Optional[ProfileData],
        spec_config: Optional[SpeculationConfig] = None,
    ) -> "ProgramCompilation":
        """Lower ``program`` (already rewritten and profiled) to a
        :class:`~repro.core.metrics.ProgramCompilation`.

        ``profile`` must have been gathered on ``program`` as given —
        when the config carries program passes, run them (and re-profile)
        first; the runner's build/profile stages do exactly that.
        """
        from repro.core.metrics import ProgramCompilation

        spec_config = spec_config or SpeculationConfig()
        if self.verify:
            self._verify(program, "codegen input")
        state = CompileState(
            program=program,
            machine=machine,
            spec_config=spec_config,
            profile=profile,
        )
        for spec in self.config.codegen_passes:
            info = pass_info(spec.name)
            if info.kind != "codegen":
                raise PipelineError(
                    f"{info.kind} pass {info.name!r} cannot appear in "
                    "codegen_passes; it belongs in program_passes"
                )
            options = resolve_options(info, spec)
            start = time.perf_counter_ns()
            changed = bool(info.fn(state, **options))
            self._record(info.name, start, changed=changed)
        return ProgramCompilation(
            program=state.program,
            machine=machine,
            config=spec_config,
            profile=profile,
            blocks=dict(state.blocks),
        )

    def run(
        self,
        program: Program,
        machine: MachineDescription,
        profile: Optional[ProfileData],
        spec_config: Optional[SpeculationConfig] = None,
    ) -> "ProgramCompilation":
        """Full pipeline: program passes, then codegen.

        Only valid when the config has no program passes or ``profile``
        is ``None`` — a profile gathered on the un-rewritten program
        would reference operations the rewrite replaced.  With program
        passes and no profile, the rewritten program is profiled here.
        """
        if self.config.program_passes:
            if profile is not None:
                raise PipelineError(
                    "run() cannot apply program passes under a profile "
                    "gathered on the original program; rewrite first "
                    "(run_program_passes), re-profile, then compile()"
                )
            program = self.run_program_passes(program)
        if profile is None:
            from repro.profiling.profile_run import profile_program

            profile = profile_program(program)
        return self.compile(program, machine, profile, spec_config=spec_config)

    # -- internals ----------------------------------------------------------

    def _lift_function_pass(
        self, program: Program, info: PassInfo, options: Dict[str, Any]
    ) -> Program:
        result = Program(program.name, main=program.main_name)
        for function in program:
            result.add_function(info.fn(function, **options))
        result.initial_memory.update(program.initial_memory)
        result.initial_registers.update(program.initial_registers)
        return result

    def _verify(self, program: Program, after: str) -> None:
        for function in program:
            try:
                verify_function(function)
            except Exception as exc:
                raise type(exc)(
                    [f"after pass {after!r}: {problem}" for problem in
                     getattr(exc, "problems", [str(exc)])]
                ) from exc

    def _record(self, name: str, start_ns: int, changed: bool) -> None:
        self.metrics.observe(
            "compiler.pass_ns", time.perf_counter_ns() - start_ns, label=name
        )
        self.metrics.inc("compiler.pass_runs", label=name)
        if changed:
            self.metrics.inc("compiler.pass_changed", label=name)


def compile_program(
    program: Program,
    machine: MachineDescription,
    profile: ProfileData,
    config: Optional[SpeculationConfig] = None,
    pipeline: Optional[PipelineConfig] = None,
    metrics: MetricsRegistry = NULL_METRICS,
) -> "ProgramCompilation":
    """Compile ``program`` through the pass-manager pipeline.

    Drop-in replacement for the historical
    :func:`repro.core.metrics.compile_program` (which now delegates
    here): with the default ``pipeline`` the result is identical.
    """
    return PassManager(pipeline, metrics=metrics).compile(
        program, machine, profile, spec_config=config
    )


# ---------------------------------------------------------------------------
# determinism digest


def compilation_digest(compilation: "ProgramCompilation") -> str:
    """Stable content hash of a compilation's observable products.

    Covers the program text, machine, speculation config, and — per
    block — the original schedule length, the predicted loads, the full
    speculative schedule, its best/worst-case timings, and the baseline
    compensation shapes.  Deliberately *excludes* raw operation ids of
    pass-minted operations (LdPred/check forms), whose absolute values
    depend on which process minted them; everything semantically
    meaningful is id-free, so equal compilations digest equally across
    runs, processes and worker counts.
    """
    from repro.ir.asm import format_operation_asm, format_program_asm

    blocks: Dict[str, Any] = {}
    for label, comp in compilation.blocks.items():
        entry: Dict[str, Any] = {
            "original_length": comp.original_length,
            "speculated": comp.speculated,
        }
        if comp.speculated:
            spec_schedule = comp.spec_schedule
            entry["predicted_load_ids"] = list(comp.predicted_load_ids)
            entry["schedule"] = [
                f"{placed.cycle}: {format_operation_asm(placed.operation)}"
                for placed in spec_schedule.schedule.operations
            ]
            entry["spec_length"] = spec_schedule.length
            entry["wait_cycles"] = sorted(spec_schedule.wait_bits_by_cycle)
            entry["best_effective"] = comp.best_case().effective_length
            entry["worst_effective"] = comp.worst_case().effective_length
            if comp.baseline is not None:
                entry["baseline"] = {
                    "main_length": comp.baseline.main_length,
                    "compensation": sorted(
                        (c.op_count, c.length)
                        for c in comp.baseline.compensation.values()
                    ),
                }
        blocks[label] = entry
    return content_hash(
        {
            "program": format_program_asm(compilation.program),
            "machine": canonical_value(compilation.machine),
            "spec_config": canonical_value(compilation.config),
            "blocks": blocks,
        }
    )
