"""Design-space exploration over declarative machine specs.

The :mod:`repro.explore` subsystem sweeps machine/speculation axes
(issue width, FU counts, latencies, buffer capacities, predictor
geometry, speculation threshold, ...) over the paper's evaluation
pipeline and reduces each point to a (hardware cost, speedup) pair
plus the resulting Pareto frontier.  ``repro-explore`` is the CLI.
"""

from repro.explore.cost import cost_breakdown, machine_cost, predictor_cost
from repro.explore.driver import (
    BenchmarkResult,
    ExploreOutcome,
    PointResult,
    PrunedPoint,
    SurrogateValidation,
    explore,
    explore_points,
    pareto_frontier,
)
from repro.explore.report import (
    REPORT_SCHEMA_VERSION,
    dump_report,
    load_report,
    plot_frontier,
    render_frontier,
    render_table,
    report_payload,
)
from repro.explore.space import Axis, DesignPoint, DesignSpace, parse_axis_value

__all__ = [
    "Axis",
    "BenchmarkResult",
    "DesignPoint",
    "DesignSpace",
    "ExploreOutcome",
    "PointResult",
    "PrunedPoint",
    "REPORT_SCHEMA_VERSION",
    "SurrogateValidation",
    "cost_breakdown",
    "dump_report",
    "explore",
    "explore_points",
    "load_report",
    "machine_cost",
    "pareto_frontier",
    "parse_axis_value",
    "plot_frontier",
    "predictor_cost",
    "render_frontier",
    "render_table",
    "report_payload",
]
