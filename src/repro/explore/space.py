"""Design spaces: declared axes over machine + speculation parameters.

An :class:`Axis` names one swept parameter and its values; a
:class:`DesignSpace` is a base :class:`~repro.machine.MachineSpec` plus a
list of axes, expanded to concrete :class:`DesignPoint` objects by
:meth:`~DesignSpace.grid` (full cross product) or
:meth:`~DesignSpace.sample` (seeded random subset).  Each point owns the
derived machine spec and the speculation config the experiments should
run with, so the driver needs no knowledge of what was swept.

Axis names (``--axis name=v1,v2,...`` on the CLI):

==========================  ================================================
name                        effect on the point
==========================  ================================================
``issue_width``             operations per VLIW instruction
``fu_scale``                multiply every FU count (+ nothing else)
``units.<class>``           one FU class count (``ialu``/``falu``/``mem``/
                            ``branch``)
``latency.<opcode>``        one opcode's latency (e.g. ``latency.load``)
``branch_penalty``          taken-branch redirect cost
``check_compare_cost``      extra cycles of the check-prediction form
``ccb_capacity``            Compensation Code Buffer entries (``none`` =
                            unbounded)
``ovb_capacity``            Operand Value Buffer entries (``none`` =
                            unbounded)
``sync_width``              Synchronization-register bits
``predictor.kind``          ``hybrid``/``stride``/``fcm``/``dfcm``/
                            ``last-value``
``predictor.table_entries`` Value Prediction Table capacity (``none`` =
                            unbounded)
``predictor.fcm_order``     (D)FCM history order
``predictor.table_bits``    (D)FCM hash-table bits
``threshold``               speculation profile threshold
``max_predictions``         predicted loads per block cap
==========================  ================================================
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.speculation import SpeculationConfig
from repro.ir.opcodes import FUClass, Opcode
from repro.machine.spec import MachineSpec

#: Axes that apply to the machine spec directly.
_MACHINE_AXES = (
    "issue_width",
    "fu_scale",
    "branch_penalty",
    "check_compare_cost",
    "ccb_capacity",
    "ovb_capacity",
    "sync_width",
)

#: Axes that apply to the speculation config.
_SPECULATION_AXES = ("threshold", "max_predictions")

_PREDICTOR_AXES = ("kind", "table_entries", "fcm_order", "table_bits")


def parse_axis_value(name: str, text: str) -> Any:
    """One CLI axis value: typed by the axis it belongs to."""
    if text.lower() in ("none", "inf", "unbounded"):
        return None
    if name == "predictor.kind":
        return text
    if name == "threshold":
        return float(text)
    return int(text)


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name from the table above plus its values."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        validate_axis_name(self.name)
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    @classmethod
    def parse(cls, text: str) -> "Axis":
        """``name=v1,v2,...`` (the CLI form)."""
        if "=" not in text:
            raise ValueError(
                f"bad axis {text!r}: expected name=v1,v2,... "
                "(e.g. issue_width=2,4,8)"
            )
        name, _, values = text.partition("=")
        name = name.strip()
        return cls(
            name,
            tuple(
                parse_axis_value(name, v.strip())
                for v in values.split(",")
                if v.strip()
            ),
        )


def validate_axis_name(name: str) -> None:
    if name in _MACHINE_AXES or name in _SPECULATION_AXES:
        return
    if name.startswith("units."):
        FUClass(name.split(".", 1)[1])  # raises ValueError on bad class
        return
    if name.startswith("latency."):
        Opcode(name.split(".", 1)[1])  # raises ValueError on bad opcode
        return
    if name.startswith("predictor."):
        field = name.split(".", 1)[1]
        if field in _PREDICTOR_AXES:
            return
        raise ValueError(
            f"unknown predictor axis {name!r}; "
            f"known: {', '.join('predictor.' + f for f in _PREDICTOR_AXES)}"
        )
    raise ValueError(
        f"unknown axis {name!r}; known: "
        + ", ".join(
            (*_MACHINE_AXES, *_SPECULATION_AXES,
             "units.<class>", "latency.<opcode>", "predictor.<field>")
        )
    )


@dataclass(frozen=True)
class DesignPoint:
    """One concrete configuration of the swept space.

    ``label`` is deterministic over the axis assignment (it doubles as
    the report row key); ``spec`` carries the derived machine and
    ``spec_config`` the speculation knobs the experiments run with.
    """

    label: str
    spec: MachineSpec
    spec_config: SpeculationConfig
    assignment: Tuple[Tuple[str, Any], ...]

    def fingerprint(self) -> str:
        return self.spec.fingerprint()


def _apply(
    base: MachineSpec,
    config: SpeculationConfig,
    name: str,
    value: Any,
) -> Tuple[MachineSpec, SpeculationConfig]:
    if name == "fu_scale":
        units = {fu: n * int(value) for fu, n in base.units.items()}
        return dataclasses.replace(base, units=units), config
    if name in ("issue_width", "branch_penalty", "check_compare_cost",
                "sync_width"):
        return dataclasses.replace(base, **{name: int(value)}), config
    if name in ("ccb_capacity", "ovb_capacity"):
        return (
            dataclasses.replace(
                base, **{name: None if value is None else int(value)}
            ),
            config,
        )
    if name.startswith("units."):
        fu = FUClass(name.split(".", 1)[1])
        units = dict(base.units)
        units[fu] = int(value)
        return dataclasses.replace(base, units=units), config
    if name.startswith("latency."):
        return base.with_latency(Opcode(name.split(".", 1)[1]), int(value)), config
    if name.startswith("predictor."):
        field = name.split(".", 1)[1]
        predictor = dataclasses.replace(base.predictor, **{field: value})
        return dataclasses.replace(base, predictor=predictor), config
    if name == "threshold":
        return base, dataclasses.replace(config, threshold=float(value))
    if name == "max_predictions":
        return base, dataclasses.replace(config, max_predictions=int(value))
    raise ValueError(f"unknown axis {name!r}")  # pragma: no cover - validated


def _format_value(value: Any) -> str:
    if value is None:
        return "inf"
    return str(value)


@dataclass(frozen=True)
class DesignSpace:
    """A base machine spec plus the axes swept around it."""

    base: MachineSpec
    axes: Tuple[Axis, ...]
    base_config: SpeculationConfig = SpeculationConfig()

    def __post_init__(self) -> None:
        seen = set()
        for axis in self.axes:
            if axis.name in seen:
                raise ValueError(f"axis {axis.name!r} declared twice")
            seen.add(axis.name)
        object.__setattr__(self, "axes", tuple(self.axes))

    def point(self, assignment: Sequence[Tuple[str, Any]]) -> DesignPoint:
        """The concrete point for one ``(axis, value)`` assignment."""
        spec = self.base
        config = self.base_config
        for name, value in assignment:
            spec, config = _apply(spec, config, name, value)
        label = (
            "/".join(
                f"{name}={_format_value(value)}" for name, value in assignment
            )
            or "base"
        )
        # The machine is renamed from the *machine* axes only: points
        # differing purely in speculation knobs share one machine
        # fingerprint, so their compile/simulate jobs dedupe on the
        # machine exactly as a threshold ablation does today.
        machine_label = "/".join(
            f"{name}={_format_value(value)}"
            for name, value in assignment
            if name not in _SPECULATION_AXES
        )
        if machine_label:
            spec = dataclasses.replace(
                spec, name=f"{self.base.name}@{machine_label}"
            )
        return DesignPoint(
            label=label,
            spec=spec,
            spec_config=config,
            assignment=tuple(assignment),
        )

    def grid(self) -> List[DesignPoint]:
        """The full cross product of every axis (deterministic order)."""
        if not self.axes:
            return [self.point(())]
        names = [axis.name for axis in self.axes]
        return [
            self.point(tuple(zip(names, combo)))
            for combo in itertools.product(
                *(axis.values for axis in self.axes)
            )
        ]

    def sample(self, count: int, seed: int = 0) -> List[DesignPoint]:
        """``count`` distinct points drawn uniformly from the grid.

        Seeded and stateless — the same (space, count, seed) always
        yields the same points, so sampled sweeps are reproducible and
        cache-stable.
        """
        full = self.grid()
        if count >= len(full):
            return full
        rng = random.Random(seed)
        picked = rng.sample(range(len(full)), count)
        return [full[i] for i in sorted(picked)]

    @property
    def size(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size
