"""Deterministic design-space reports: JSON artifact, text table, plot.

The JSON artifact is schema-versioned and carries *no* timestamps or
host details, so two runs of the same sweep — local or ``--service`` —
produce byte-identical files (the CI ``explore-smoke`` job diffs them).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.explore.driver import (
    PointResult,
    PrunedPoint,
    SurrogateValidation,
    pareto_frontier,
)
from repro.explore.space import DesignSpace
from repro.ir.printer import format_table

#: Bump when the artifact shape changes.  v2 added per-point
#: ``bottleneck`` labels from the cycle-accounting engine; v3 added the
#: ``pruned`` section (why each skipped point was skipped:
#: surrogate-pruned vs duplicate vs error) and the ``surrogate``
#: cross-validation record of ``--surrogate`` sweeps.
REPORT_SCHEMA_VERSION = 3

#: Older schema versions :func:`load_report` still accepts.
_READABLE_SCHEMAS = frozenset({2, REPORT_SCHEMA_VERSION})


def report_payload(
    space: DesignSpace,
    results: Sequence[PointResult],
    scale: float,
    benchmarks: Sequence[str],
    pruned: Sequence[PrunedPoint] = (),
    surrogate: Optional[SurrogateValidation] = None,
) -> Dict[str, Any]:
    """The full sweep artifact as JSON-ready primitives."""
    frontier = pareto_frontier(results)
    frontier_labels = {r.label for r in frontier}
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "base_machine": space.base.canonical(),
        "axes": [
            {"name": axis.name, "values": list(axis.values)}
            for axis in space.axes
        ],
        "scale": repr(scale),
        "benchmarks": list(benchmarks),
        "points": [
            dict(r.to_json(), pareto=r.label in frontier_labels)
            for r in results
        ],
        "frontier": [r.label for r in frontier],
        "pruned": [p.to_json() for p in pruned],
        "surrogate": surrogate.to_json() if surrogate is not None else None,
    }


def dump_report(payload: Dict[str, Any]) -> str:
    """Canonical serialisation (sorted keys, stable float formatting)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_table(results: Sequence[PointResult]) -> str:
    """Human-readable sweep summary, frontier points starred."""
    frontier_labels = {r.label for r in pareto_frontier(results)}
    body = []
    for r in sorted(results, key=lambda r: (-r.speedup, r.cost, r.label)):
        body.append(
            (
                ("*" if r.label in frontier_labels else " ") + r.label,
                f"{r.speedup:.3f}",
                f"{r.cost:.2f}",
                f"{r.accuracy:.3f}",
                getattr(r, "bottleneck", "unknown"),
                r.fingerprint[:12],
            )
        )
    table = format_table(
        [
            "Point (* = Pareto)",
            "Speedup",
            "Cost",
            "Accuracy",
            "Bottleneck",
            "Machine",
        ],
        body,
    )
    return "Design-space exploration (speedup vs hardware cost)\n" + table


def render_frontier(results: Sequence[PointResult]) -> str:
    frontier = pareto_frontier(results)
    lines = ["Pareto frontier (cheapest first):"]
    for r in frontier:
        lines.append(
            f"  cost {r.cost:8.2f}  speedup {r.speedup:.3f}  "
            f"{r.label}  [{getattr(r, 'bottleneck', 'unknown')}]"
        )
    return "\n".join(lines)


def plot_frontier(
    results: Sequence[PointResult], path: str
) -> Optional[str]:
    """Write a cost-vs-speedup scatter with the frontier highlighted.

    Needs matplotlib; returns ``None`` (and writes nothing) when it is
    not installed — the JSON artifact is the canonical output, the plot
    a convenience.
    """
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return None

    frontier = pareto_frontier(results)
    fig, ax = plt.subplots(figsize=(7, 5))
    ax.scatter(
        [r.cost for r in results],
        [r.speedup for r in results],
        s=18,
        color="#888888",
        label="design points",
    )
    ax.plot(
        [r.cost for r in frontier],
        [r.speedup for r in frontier],
        marker="o",
        color="#d62728",
        label="Pareto frontier",
    )
    for r in frontier:
        ax.annotate(
            r.label, (r.cost, r.speedup), fontsize=6,
            textcoords="offset points", xytext=(4, 4),
        )
    ax.set_xlabel("relative hardware cost")
    ax.set_ylabel("geomean speedup vs no prediction")
    ax.set_title("Value-prediction design space")
    ax.legend(loc="lower right", fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    plt.close(fig)
    return path


def load_report(text: str) -> Dict[str, Any]:
    """Parse + schema-check a report artifact.

    Reads the current schema and (read-only) v2 artifacts from before
    the ``pruned``/``surrogate`` sections existed; missing sections are
    filled with their empty values so readers can index unconditionally.
    """
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema not in _READABLE_SCHEMAS:
        raise ValueError(
            f"explore report schema v{schema} unsupported (this code reads "
            f"v{REPORT_SCHEMA_VERSION} and v2)"
        )
    payload.setdefault("pruned", [])
    payload.setdefault("surrogate", None)
    return payload
